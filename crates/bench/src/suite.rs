//! Suite orchestrator: one-command regeneration of every table and figure.
//!
//! The `suite` binary drives this module. A run proceeds in two phases over
//! the [`crate::artifacts::registry`]:
//!
//! 1. **Prepare** — enumerate every training scenario each selected artifact
//!    will consume, deduplicate them by [`Scenario::cache_key`], and train
//!    each *unique* scenario exactly once (concurrently, on a bounded worker
//!    pool) through the `results/cache/` disk cache.
//! 2. **Generate** — run the artifacts themselves on the same pool. Every
//!    training lookup now hits the cache, which the
//!    `bench/scenario_cache_hits`/`_misses` counter deltas prove; a
//!    generate-phase miss is a gate failure. Artifacts marked
//!    [`crate::artifacts::ArtifactSpec::exclusive`] (the timing-sensitive
//!    `perf` benchmark) run serially after the concurrent batch.
//!
//! Each artifact is isolated: it runs on its own thread, a panic or error
//! marks that artifact failed without aborting the suite, and a per-task
//! timeout marks it timed out (the worker moves on; the detached thread is
//! abandoned). `results/suite.json` is rewritten atomically after every
//! completion, so a killed run leaves a complete record; a re-run resumes
//! from it, re-running only artifacts that did not previously succeed.
//!
//! **Gate mode** (`--gate`) additionally compares the `perf` artifact's
//! fresh `results/BENCH_map.json` against the baseline committed in the
//! repository (read *before* the run overwrites it) with a relative
//! tolerance, and fails on any generate-phase training miss.
//!
//! Every run also writes `results/suite_trace.json`, a Chrome-trace view of
//! the whole run (one lane per pooled task), loadable in `chrome://tracing`
//! or ui.perfetto.dev.

use crate::artifacts::{self, ArtifactCtx, ArtifactOutput, ArtifactSpec};
use crate::report::results_dir;
use crate::scenario::{ExperimentScale, Scenario};
use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};
use xbar_obs::json::Json;
use xbar_obs::metrics::counter_value;
use xbar_obs::names;
use xbar_obs::trace::FieldValue;

/// How a suite run is configured.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Experiment scale preset.
    pub scale: ExperimentScale,
    /// Name of the preset (`smoke`, `quick`, `full`).
    pub scale_name: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Fail the run on perf regressions and generate-phase training misses.
    pub gate: bool,
    /// Ignore a previous `suite.json` instead of resuming from it.
    pub fresh: bool,
    /// Run only these artifacts (empty = all).
    pub only: Vec<String>,
    /// Skip these artifacts.
    pub skip: Vec<String>,
    /// Per-task wall-clock budget.
    pub timeout: Duration,
    /// Relative tolerance for the perf-baseline comparison.
    pub tolerance: f64,
    /// Artifacts whose run is replaced by an injected failure (testing the
    /// isolation and gate paths).
    pub fail: Vec<String>,
    /// Worker-pool size.
    pub workers: usize,
    /// Print progress lines to stderr.
    pub progress: bool,
}

impl SuiteConfig {
    /// The default configuration for a scale preset: every artifact, resume
    /// enabled, no gate, pool sized by `xbar_tensor::threads::max_threads`.
    pub fn new(scale: ExperimentScale, scale_name: &'static str) -> Self {
        SuiteConfig {
            scale,
            scale_name,
            seed: 42,
            gate: false,
            fresh: false,
            only: Vec::new(),
            skip: Vec::new(),
            timeout: default_timeout(scale_name),
            tolerance: 0.5,
            fail: Vec::new(),
            workers: xbar_tensor::threads::max_threads(),
            progress: true,
        }
    }
}

/// The per-task timeout for a scale preset: generous multiples of observed
/// worst-case artifact times, meant to catch hangs rather than slowness.
pub fn default_timeout(scale_name: &str) -> Duration {
    Duration::from_secs(match scale_name {
        "smoke" => 1800,
        "quick" => 3600,
        _ => 14400,
    })
}

/// Terminal state of one artifact in a suite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactStatus {
    /// Regenerated successfully this run.
    Ok,
    /// Succeeded in a previous run; skipped under resume.
    Resumed,
    /// Returned an error or panicked (the message is attached).
    Failed(String),
    /// Exceeded the per-task timeout.
    TimedOut,
}

impl ArtifactStatus {
    /// Machine-readable status string used in `suite.json`.
    pub fn as_str(&self) -> &'static str {
        match self {
            ArtifactStatus::Ok => "ok",
            ArtifactStatus::Resumed => "resumed",
            ArtifactStatus::Failed(_) => "failed",
            ArtifactStatus::TimedOut => "timed_out",
        }
    }

    /// Whether the artifact is in a good state (fresh or resumed).
    pub fn is_ok(&self) -> bool {
        matches!(self, ArtifactStatus::Ok | ArtifactStatus::Resumed)
    }
}

/// One artifact's record in the suite report.
#[derive(Debug, Clone)]
pub struct ArtifactOutcome {
    /// Artifact name (see [`artifacts::registry`]).
    pub name: String,
    /// Paper table/figure the artifact reproduces.
    pub paper_ref: String,
    /// Terminal state.
    pub status: ArtifactStatus,
    /// Wall time spent on it this run (0 for resumed artifacts).
    pub wall_s: f64,
    /// Files the artifact wrote.
    pub outputs: Vec<String>,
    /// Key numbers it reported.
    pub key_numbers: Vec<(String, f64)>,
}

/// Scenario-training statistics proving the train-once property.
#[derive(Debug, Clone, Default)]
pub struct ScenarioStats {
    /// Unique scenarios (by cache key) across the selected artifacts.
    pub unique: usize,
    /// Disk-cache hits during the prepare phase.
    pub prepare_hits: u64,
    /// Disk-cache misses (= actual trainings) during the prepare phase.
    pub prepare_misses: u64,
    /// Disk-cache hits during the generate phase.
    pub generate_hits: u64,
    /// Disk-cache misses during the generate phase — always zero in a
    /// correct run, and a gate failure otherwise.
    pub generate_misses: u64,
}

/// Everything a suite run produced; serialised to `results/suite.json`.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Scale preset name.
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// Whether gate mode was on.
    pub gate: bool,
    /// Worker-pool size.
    pub workers: usize,
    /// Per-artifact outcomes, in registry order.
    pub artifacts: Vec<ArtifactOutcome>,
    /// Scenario-training statistics.
    pub scenarios: ScenarioStats,
    /// Gate failures (artifact failures, perf regressions, generate-phase
    /// misses). Populated even without `--gate` for artifact failures.
    pub gate_failures: Vec<String>,
    /// Total suite wall time.
    pub wall_s: f64,
}

impl SuiteReport {
    /// Whether the run should exit nonzero.
    pub fn failed(&self) -> bool {
        !self.gate_failures.is_empty()
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> Json {
        let artifacts = self
            .artifacts
            .iter()
            .map(|a| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(a.name.clone())),
                    ("paper_ref".to_string(), Json::Str(a.paper_ref.clone())),
                    (
                        "status".to_string(),
                        Json::Str(a.status.as_str().to_string()),
                    ),
                    ("wall_s".to_string(), Json::Num(a.wall_s)),
                ];
                if let ArtifactStatus::Failed(msg) = &a.status {
                    fields.push(("error".to_string(), Json::Str(msg.clone())));
                }
                fields.push((
                    "outputs".to_string(),
                    Json::Arr(a.outputs.iter().cloned().map(Json::Str).collect()),
                ));
                fields.push((
                    "key_numbers".to_string(),
                    Json::Obj(
                        a.key_numbers
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                            .collect(),
                    ),
                ));
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("scale".to_string(), Json::Str(self.scale.clone())),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("gate".to_string(), Json::Bool(self.gate)),
            ("workers".to_string(), Json::Num(self.workers as f64)),
            ("wall_s".to_string(), Json::Num(self.wall_s)),
            (
                "scenarios".to_string(),
                Json::Obj(vec![
                    (
                        "unique".to_string(),
                        Json::Num(self.scenarios.unique as f64),
                    ),
                    (
                        "prepare_hits".to_string(),
                        Json::Num(self.scenarios.prepare_hits as f64),
                    ),
                    (
                        "prepare_misses".to_string(),
                        Json::Num(self.scenarios.prepare_misses as f64),
                    ),
                    (
                        "generate_hits".to_string(),
                        Json::Num(self.scenarios.generate_hits as f64),
                    ),
                    (
                        "generate_misses".to_string(),
                        Json::Num(self.scenarios.generate_misses as f64),
                    ),
                ]),
            ),
            ("artifacts".to_string(), Json::Arr(artifacts)),
            (
                "gate_failures".to_string(),
                Json::Arr(self.gate_failures.iter().cloned().map(Json::Str).collect()),
            ),
            ("passed".to_string(), Json::Bool(!self.failed())),
        ])
    }
}

/// Path of the suite report under the active results directory.
pub fn suite_json_path() -> PathBuf {
    results_dir().join("suite.json")
}

/// Path of the suite's Chrome trace under the active results directory.
pub fn suite_trace_path() -> PathBuf {
    results_dir().join("suite_trace.json")
}

/// Writes the run's span buffer as a Chrome trace (`suite_trace.json`),
/// loadable in `chrome://tracing` or ui.perfetto.dev. Each pooled task ran
/// on its own thread, so lanes are named after the depth-0 span that ran
/// there (the artifact name, `train_scenario`, or `suite` for the
/// orchestrator thread itself).
fn write_suite_trace() -> Option<PathBuf> {
    let mut lanes: BTreeMap<u64, String> = BTreeMap::new();
    let mut spans = xbar_obs::trace::all_spans();
    spans.sort_by_key(|s| s.start_us);
    for span in spans.iter().filter(|s| s.depth == 0) {
        lanes.entry(span.thread).or_insert_with(|| match span.name {
            "suite_prepare" | "suite_generate" => "suite".to_string(),
            name => name.to_string(),
        });
    }
    let path = suite_trace_path();
    xbar_obs::chrome::write_chrome_trace(&path, &lanes).ok()?;
    Some(path)
}

fn write_report(report: &SuiteReport) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let text = report.to_json().to_json_pretty() + "\n";
    // Atomic so a kill mid-write cannot corrupt the resume state.
    let _ = xbar_nn::serialize::write_file_atomic::<std::io::Error, _>(suite_json_path(), |f| {
        f.write_all(text.as_bytes())
    });
}

/// The artifact names that succeeded in a previous run, read from an
/// existing `suite.json` (resume state). Only reports from the same scale
/// and seed are trusted.
fn previously_ok(cfg: &SuiteConfig) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(suite_json_path()) else {
        return Vec::new();
    };
    let Ok(json) = Json::parse(&text) else {
        return Vec::new();
    };
    if json.get("scale").and_then(Json::as_str) != Some(cfg.scale_name)
        || json.get("seed").and_then(Json::as_u64) != Some(cfg.seed)
    {
        return Vec::new();
    }
    let Some(artifacts) = json.get("artifacts").and_then(Json::as_arr) else {
        return Vec::new();
    };
    artifacts
        .iter()
        .filter(|a| {
            matches!(
                a.get("status").and_then(Json::as_str),
                Some("ok") | Some("resumed")
            )
        })
        .filter_map(|a| a.get("name").and_then(Json::as_str).map(str::to_string))
        .collect()
}

/// Compares a fresh `BENCH_map.json` against the committed baseline.
/// Returns one message per violated check: relative speedup regressions
/// beyond `tolerance` and lost bit-identity.
pub fn perf_gate_failures(baseline: &Json, fresh: &Json, tolerance: f64) -> Vec<String> {
    bench_gate_failures(
        baseline,
        fresh,
        tolerance,
        "perf",
        "BENCH_map.json",
        &["speedup_cached", "speedup_warm"],
        &["bit_identical_cached", "bit_identical_warm"],
    )
}

/// Compares a fresh `BENCH_solve.json` against the committed baseline:
/// cold tile-solve throughput must stay within `tolerance` of the baseline
/// and batched/scalar bit-identity must hold (a hard failure regardless of
/// tolerance).
pub fn solve_gate_failures(baseline: &Json, fresh: &Json, tolerance: f64) -> Vec<String> {
    bench_gate_failures(
        baseline,
        fresh,
        tolerance,
        "solve",
        "BENCH_solve.json",
        &["tile_solves_per_s", "speedup_batch"],
        &["bit_identical_batch"],
    )
}

/// Below this absolute p99 the serve latency gate stays quiet: at a few
/// milliseconds the bucket-to-bucket scheduler noise of the load fleet
/// dwarfs any real regression, so a purely relative ceiling would flag
/// noise. A genuine event-loop regression (a stall, a lost wakeup, a
/// blocked accept path) lands in the hundreds of milliseconds and clears
/// this slack immediately.
pub const SERVE_P99_SLACK_US: f64 = 50_000.0;

/// Compares a fresh `BENCH_serve.json` against the committed baseline:
/// served throughput must stay within `tolerance` below the baseline,
/// p99 latency within `tolerance` *above* it (latency gates invert, and
/// only above [`SERVE_P99_SLACK_US`]), and replica bit-identity must
/// hold (a hard failure regardless of tolerance).
pub fn serve_gate_failures(baseline: &Json, fresh: &Json, tolerance: f64) -> Vec<String> {
    let mut failures = bench_gate_failures(
        baseline,
        fresh,
        tolerance,
        "serve",
        "BENCH_serve.json",
        &["throughput_rps"],
        &["bit_identical_replicas"],
    );
    let key = "p99_us";
    match (
        baseline.get(key).and_then(Json::as_f64),
        fresh.get(key).and_then(Json::as_f64),
    ) {
        (Some(b), Some(n)) => {
            if n > b * (1.0 + tolerance) && n > SERVE_P99_SLACK_US {
                failures.push(format!(
                    "serve regression: {key} {n:.0} above baseline {b:.0} \
                     (tolerance {:.0}%)",
                    100.0 * tolerance
                ));
            }
        }
        (Some(_), None) => failures.push(format!("serve: fresh BENCH_serve.json lacks {key}")),
        (None, _) => {} // baseline predates the field; nothing to compare
    }
    failures
}

fn bench_gate_failures(
    baseline: &Json,
    fresh: &Json,
    tolerance: f64,
    what: &str,
    file: &str,
    rate_keys: &[&str],
    identity_keys: &[&str],
) -> Vec<String> {
    let mut failures = Vec::new();
    for key in rate_keys {
        let base = baseline.get(key).and_then(Json::as_f64);
        let new = fresh.get(key).and_then(Json::as_f64);
        match (base, new) {
            (Some(b), Some(n)) => {
                if n < b * (1.0 - tolerance) {
                    failures.push(format!(
                        "{what} regression: {key} {n:.2} below baseline {b:.2} \
                         (tolerance {:.0}%)",
                        100.0 * tolerance
                    ));
                }
            }
            (Some(_), None) => failures.push(format!("{what}: fresh {file} lacks {key}")),
            (None, _) => {} // baseline predates the field; nothing to compare
        }
    }
    for key in identity_keys {
        if fresh.get(key).and_then(Json::as_bool) == Some(false) {
            failures.push(format!("{what}: {key} is false"));
        }
    }
    failures
}

/// Result of a pooled task: the payload, or why there is none.
enum TaskStatus<R> {
    Done(Result<R, String>),
    Panicked(String),
    TimedOut,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

/// Runs `task` over `items` on `workers` threads. Each task executes on its
/// own short-lived thread so a timeout can abandon it (the thread keeps
/// running detached; its result is discarded); panics are caught and
/// reported as task failures. `on_done` fires (serialised) as each item
/// finishes, in completion order.
fn run_pool<I, R>(
    items: &[I],
    workers: usize,
    timeout: Duration,
    task: fn(I) -> Result<R, String>,
    on_done: &mut (dyn FnMut(usize, &TaskStatus<R>, f64) + Send),
) -> Vec<TaskStatus<R>>
where
    I: Copy + Send + Sync + 'static,
    R: Send + 'static,
{
    type Slot<R> = Option<(TaskStatus<R>, f64)>;
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Slot<R>>> = {
        let mut v = Vec::with_capacity(items.len());
        v.resize_with(items.len(), || None);
        Mutex::new(v)
    };
    let on_done = Mutex::new(on_done);
    let workers = workers.max(1).min(items.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= items.len() {
                    break;
                }
                let item = items[i];
                let start = Instant::now();
                let (tx, rx) = mpsc::channel();
                // A dedicated 'static thread per task so recv_timeout can
                // give up on it without tearing down the pool.
                std::thread::spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| task(item)));
                    let _ = tx.send(outcome);
                });
                let status = match rx.recv_timeout(timeout) {
                    Ok(Ok(result)) => TaskStatus::Done(result),
                    Ok(Err(payload)) => TaskStatus::Panicked(panic_message(payload)),
                    Err(_) => TaskStatus::TimedOut,
                };
                let wall = start.elapsed().as_secs_f64();
                {
                    let mut cb = on_done.lock().unwrap_or_else(|e| e.into_inner());
                    cb(i, &status, wall);
                }
                let mut res = results.lock().unwrap_or_else(|e| e.into_inner());
                res[i] = Some((status, wall));
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .map(|slot| slot.map(|(s, _)| s).unwrap_or(TaskStatus::TimedOut))
        .collect()
}

fn train_task(sc: Scenario) -> Result<(), String> {
    let _span = xbar_obs::trace::SpanGuard::enter(
        "train_scenario",
        vec![("scenario", FieldValue::Str(sc.cache_key()))],
    );
    let data = sc.dataset();
    sc.train_model_cached(&data);
    Ok(())
}

fn artifact_task(
    (spec, ctx, inject_failure): (ArtifactSpec, ArtifactCtx, bool),
) -> Result<ArtifactOutput, String> {
    if inject_failure {
        return Err("injected failure (--fail)".to_string());
    }
    // `spec.name` is 'static, so the artifact itself is the span name: each
    // task runs on its own thread, which becomes one lane of the suite's
    // Chrome trace (see `write_suite_trace`).
    let _span = xbar_obs::trace::SpanGuard::enter(
        spec.name,
        vec![("paper_ref", FieldValue::Str(spec.paper_ref.to_string()))],
    );
    (spec.run)(&ctx)
}

fn progress(cfg: &SuiteConfig, msg: &str) {
    if cfg.progress {
        eprintln!("[suite] {msg}");
    }
}

/// Selects the artifacts a config asks for, in registry order.
///
/// # Errors
///
/// Returns an error naming any unknown `--only`/`--skip`/`--fail` artifact.
pub fn select_artifacts(cfg: &SuiteConfig) -> Result<Vec<ArtifactSpec>, String> {
    let registry = artifacts::registry();
    for name in cfg.only.iter().chain(&cfg.skip).chain(&cfg.fail) {
        if !registry.iter().any(|spec| spec.name == name) {
            let known: Vec<&str> = registry.iter().map(|s| s.name).collect();
            return Err(format!(
                "unknown artifact {name:?}; known: {}",
                known.join(" ")
            ));
        }
    }
    Ok(registry
        .into_iter()
        .filter(|spec| cfg.only.is_empty() || cfg.only.iter().any(|n| n == spec.name))
        .filter(|spec| !cfg.skip.iter().any(|n| n == spec.name))
        .collect())
}

/// Runs the suite: prepare (train unique scenarios once) then generate
/// (run artifacts concurrently, exclusive ones serially), writing
/// `results/suite.json` after every completion.
///
/// # Errors
///
/// Returns an error only for configuration problems (unknown artifact
/// names); artifact failures are recorded in the report instead.
pub fn run_suite(cfg: &SuiteConfig) -> Result<SuiteReport, String> {
    let suite_start = Instant::now();
    let selected = select_artifacts(cfg)?;
    let ctx = ArtifactCtx::new(cfg.scale, cfg.scale_name, cfg.seed).quiet(true);

    let resume_ok = if cfg.fresh {
        Vec::new()
    } else {
        previously_ok(cfg)
    };
    // Read the committed perf/solve baselines before the run overwrites them.
    let perf_baseline = std::fs::read_to_string(results_dir().join("BENCH_map.json"))
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let solve_baseline = std::fs::read_to_string(results_dir().join("BENCH_solve.json"))
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let serve_baseline = std::fs::read_to_string(results_dir().join("BENCH_serve.json"))
        .ok()
        .and_then(|text| Json::parse(&text).ok());

    let mut report = SuiteReport {
        scale: cfg.scale_name.to_string(),
        seed: cfg.seed,
        gate: cfg.gate,
        workers: cfg.workers,
        artifacts: Vec::new(),
        scenarios: ScenarioStats::default(),
        gate_failures: Vec::new(),
        wall_s: 0.0,
    };

    // Partition: resumed / to run (parallel, then exclusive).
    let mut to_run: Vec<(ArtifactSpec, ArtifactCtx, bool)> = Vec::new();
    for spec in &selected {
        let inject = cfg.fail.iter().any(|n| n == spec.name);
        if !inject && resume_ok.iter().any(|n| n == spec.name) {
            report.artifacts.push(ArtifactOutcome {
                name: spec.name.to_string(),
                paper_ref: spec.paper_ref.to_string(),
                status: ArtifactStatus::Resumed,
                wall_s: 0.0,
                outputs: Vec::new(),
                key_numbers: Vec::new(),
            });
        } else {
            to_run.push((*spec, ctx, inject));
        }
    }
    if !report.artifacts.is_empty() {
        progress(
            cfg,
            &format!(
                "resuming: {} artifact(s) already ok in {}",
                report.artifacts.len(),
                suite_json_path().display()
            ),
        );
    }

    // Phase 1: train every unique scenario exactly once.
    let mut unique: BTreeMap<String, Scenario> = BTreeMap::new();
    for (spec, _, inject) in &to_run {
        if *inject {
            continue; // an injected failure never reaches its scenarios
        }
        for sc in (spec.scenarios)(&ctx) {
            unique.entry(sc.cache_key()).or_insert(sc);
        }
    }
    let scenarios: Vec<Scenario> = unique.into_values().collect();
    report.scenarios.unique = scenarios.len();
    let (h0, m0) = (
        counter_value(names::BENCH_SCENARIO_CACHE_HITS),
        counter_value(names::BENCH_SCENARIO_CACHE_MISSES),
    );
    {
        let _span = xbar_obs::span!("suite_prepare");
        progress(
            cfg,
            &format!(
                "prepare: {} unique scenario(s) across {} artifact(s), {} worker(s)",
                scenarios.len(),
                to_run.len(),
                cfg.workers
            ),
        );
        let mut done = 0usize;
        let total = scenarios.len();
        let mut on_done = |i: usize, status: &TaskStatus<()>, wall: f64| {
            done += 1;
            let verdict = match status {
                TaskStatus::Done(Ok(())) => "ready".to_string(),
                TaskStatus::Done(Err(e)) => format!("failed: {e}"),
                TaskStatus::Panicked(p) => format!("failed: {p}"),
                TaskStatus::TimedOut => "timed out".to_string(),
            };
            progress(
                cfg,
                &format!(
                    "prepare [{done}/{total}] {} ({wall:.1}s): {verdict}",
                    scenarios[i].cache_key()
                ),
            );
        };
        run_pool(
            &scenarios,
            cfg.workers,
            cfg.timeout,
            train_task,
            &mut on_done,
        );
        // A failed training is not fatal here: the artifacts that need the
        // scenario will fail (or retrain) individually and be reported.
    }
    let (h1, m1) = (
        counter_value(names::BENCH_SCENARIO_CACHE_HITS),
        counter_value(names::BENCH_SCENARIO_CACHE_MISSES),
    );
    report.scenarios.prepare_hits = h1 - h0;
    report.scenarios.prepare_misses = m1 - m0;
    write_report(&report);

    // Phase 2: generate artifacts — the parallel batch, then exclusives.
    let parallel: Vec<(ArtifactSpec, ArtifactCtx, bool)> = to_run
        .iter()
        .copied()
        .filter(|(spec, _, _)| !spec.exclusive)
        .collect();
    let exclusive: Vec<(ArtifactSpec, ArtifactCtx, bool)> = to_run
        .iter()
        .copied()
        .filter(|(spec, _, _)| spec.exclusive)
        .collect();
    {
        let _span = xbar_obs::span!("suite_generate");
        let mut done = 0usize;
        let total = parallel.len() + exclusive.len();
        for (batch, workers) in [(&parallel, cfg.workers), (&exclusive, 1)] {
            if batch.is_empty() {
                continue;
            }
            // Borrow the report mutably only inside the callback.
            let report_cell = Mutex::new(&mut report);
            let mut on_done = |i: usize, status: &TaskStatus<ArtifactOutput>, wall: f64| {
                let (spec, _, _) = &batch[i];
                let outcome = match status {
                    TaskStatus::Done(Ok(output)) => ArtifactOutcome {
                        name: spec.name.to_string(),
                        paper_ref: spec.paper_ref.to_string(),
                        status: ArtifactStatus::Ok,
                        wall_s: wall,
                        outputs: output
                            .outputs
                            .iter()
                            .map(|p| p.display().to_string())
                            .collect(),
                        key_numbers: output.key_numbers.clone(),
                    },
                    TaskStatus::Done(Err(e)) => ArtifactOutcome {
                        name: spec.name.to_string(),
                        paper_ref: spec.paper_ref.to_string(),
                        status: ArtifactStatus::Failed(e.clone()),
                        wall_s: wall,
                        outputs: Vec::new(),
                        key_numbers: Vec::new(),
                    },
                    TaskStatus::Panicked(p) => ArtifactOutcome {
                        name: spec.name.to_string(),
                        paper_ref: spec.paper_ref.to_string(),
                        status: ArtifactStatus::Failed(p.clone()),
                        wall_s: wall,
                        outputs: Vec::new(),
                        key_numbers: Vec::new(),
                    },
                    TaskStatus::TimedOut => ArtifactOutcome {
                        name: spec.name.to_string(),
                        paper_ref: spec.paper_ref.to_string(),
                        status: ArtifactStatus::TimedOut,
                        wall_s: wall,
                        outputs: Vec::new(),
                        key_numbers: Vec::new(),
                    },
                };
                done += 1;
                progress(
                    cfg,
                    &format!(
                        "generate [{done}/{total}] {}: {} ({wall:.1}s)",
                        outcome.name,
                        outcome.status.as_str()
                    ),
                );
                let mut rep = report_cell.lock().unwrap_or_else(|e| e.into_inner());
                rep.artifacts.push(outcome);
                rep.wall_s = suite_start.elapsed().as_secs_f64();
                write_report(&rep);
            };
            run_pool(batch, workers, cfg.timeout, artifact_task, &mut on_done);
        }
    }
    let (h2, m2) = (
        counter_value(names::BENCH_SCENARIO_CACHE_HITS),
        counter_value(names::BENCH_SCENARIO_CACHE_MISSES),
    );
    report.scenarios.generate_hits = h2 - h1;
    report.scenarios.generate_misses = m2 - m1;

    // Keep the report in registry order regardless of completion order.
    let order: Vec<&'static str> = selected.iter().map(|s| s.name).collect();
    report.artifacts.sort_by_key(|a| {
        order
            .iter()
            .position(|n| *n == a.name)
            .unwrap_or(usize::MAX)
    });

    // Gate evaluation. Artifact failures always count; the perf-baseline and
    // train-once checks are gate-mode extras.
    for a in &report.artifacts {
        match &a.status {
            ArtifactStatus::Failed(e) => report
                .gate_failures
                .push(format!("artifact {} failed: {e}", a.name)),
            ArtifactStatus::TimedOut => report
                .gate_failures
                .push(format!("artifact {} timed out", a.name)),
            _ => {}
        }
    }
    if cfg.gate {
        if report.scenarios.generate_misses > 0 {
            report.gate_failures.push(format!(
                "{} scenario training(s) happened during the generate phase; \
                 every scenario must train exactly once in prepare",
                report.scenarios.generate_misses
            ));
        }
        let perf_ran = report
            .artifacts
            .iter()
            .any(|a| a.name == "perf" && a.status == ArtifactStatus::Ok);
        if perf_ran {
            match (
                &perf_baseline,
                std::fs::read_to_string(results_dir().join("BENCH_map.json"))
                    .ok()
                    .and_then(|text| Json::parse(&text).ok()),
            ) {
                (Some(baseline), Some(fresh)) => {
                    report
                        .gate_failures
                        .extend(perf_gate_failures(baseline, &fresh, cfg.tolerance))
                }
                (None, _) => progress(
                    cfg,
                    "gate: no committed BENCH_map.json baseline; skipping perf comparison",
                ),
                (_, None) => report
                    .gate_failures
                    .push("perf ran but left no readable BENCH_map.json".to_string()),
            }
        }
        let solve_ran = report
            .artifacts
            .iter()
            .any(|a| a.name == "solve" && a.status == ArtifactStatus::Ok);
        if solve_ran {
            match (
                &solve_baseline,
                std::fs::read_to_string(results_dir().join("BENCH_solve.json"))
                    .ok()
                    .and_then(|text| Json::parse(&text).ok()),
            ) {
                (Some(baseline), Some(fresh)) => report.gate_failures.extend(solve_gate_failures(
                    baseline,
                    &fresh,
                    cfg.tolerance,
                )),
                (None, _) => progress(
                    cfg,
                    "gate: no committed BENCH_solve.json baseline; skipping solve comparison",
                ),
                (_, None) => report
                    .gate_failures
                    .push("solve ran but left no readable BENCH_solve.json".to_string()),
            }
        }
        let serve_ran = report
            .artifacts
            .iter()
            .any(|a| a.name == "serve" && a.status == ArtifactStatus::Ok);
        if serve_ran {
            match (
                &serve_baseline,
                std::fs::read_to_string(results_dir().join("BENCH_serve.json"))
                    .ok()
                    .and_then(|text| Json::parse(&text).ok()),
            ) {
                (Some(baseline), Some(fresh)) => report.gate_failures.extend(serve_gate_failures(
                    baseline,
                    &fresh,
                    cfg.tolerance,
                )),
                (None, _) => progress(
                    cfg,
                    "gate: no committed BENCH_serve.json baseline; skipping serve comparison",
                ),
                (_, None) => report
                    .gate_failures
                    .push("serve ran but left no readable BENCH_serve.json".to_string()),
            }
        }
    }
    if let Some(path) = write_suite_trace() {
        progress(
            cfg,
            &format!(
                "trace: {} (load in chrome://tracing or ui.perfetto.dev)",
                path.display()
            ),
        );
    }
    report.wall_s = suite_start.elapsed().as_secs_f64();
    write_report(&report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(speedup_cached: f64, speedup_warm: f64, bit_identical: bool) -> Json {
        Json::Obj(vec![
            ("speedup_cached".to_string(), Json::Num(speedup_cached)),
            ("speedup_warm".to_string(), Json::Num(speedup_warm)),
            (
                "bit_identical_cached".to_string(),
                Json::Bool(bit_identical),
            ),
            ("bit_identical_warm".to_string(), Json::Bool(bit_identical)),
        ])
    }

    #[test]
    fn perf_gate_passes_within_tolerance() {
        let baseline = bench_json(10.0, 20.0, true);
        let fresh = bench_json(6.0, 11.0, true);
        assert!(perf_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    #[test]
    fn perf_gate_flags_regression_and_lost_bit_identity() {
        let baseline = bench_json(10.0, 20.0, true);
        let fresh = bench_json(4.0, 20.0, false);
        let failures = perf_gate_failures(&baseline, &fresh, 0.5);
        assert!(
            failures.iter().any(|f| f.contains("speedup_cached")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("bit_identical")),
            "{failures:?}"
        );
    }

    #[test]
    fn perf_gate_tolerates_missing_baseline_fields() {
        let baseline = Json::Obj(vec![]);
        let fresh = bench_json(1.0, 1.0, true);
        assert!(perf_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    fn solve_json(tile_solves_per_s: f64, speedup_batch: f64, bit_identical: bool) -> Json {
        Json::Obj(vec![
            (
                "tile_solves_per_s".to_string(),
                Json::Num(tile_solves_per_s),
            ),
            ("speedup_batch".to_string(), Json::Num(speedup_batch)),
            ("bit_identical_batch".to_string(), Json::Bool(bit_identical)),
        ])
    }

    #[test]
    fn solve_gate_passes_within_tolerance() {
        let baseline = solve_json(1000.0, 8.0, true);
        let fresh = solve_json(600.0, 5.0, true);
        assert!(solve_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    #[test]
    fn solve_gate_flags_throughput_regression() {
        let baseline = solve_json(1000.0, 8.0, true);
        let fresh = solve_json(400.0, 8.0, true);
        let failures = solve_gate_failures(&baseline, &fresh, 0.5);
        assert!(
            failures.iter().any(|f| f.contains("tile_solves_per_s")),
            "{failures:?}"
        );
    }

    #[test]
    fn solve_gate_lost_bit_identity_is_a_hard_failure() {
        // Bit-identity is checked on the fresh run alone: even a faster run
        // that broke the oracle contract must fail the gate.
        let baseline = solve_json(1000.0, 8.0, true);
        let fresh = solve_json(2000.0, 16.0, false);
        let failures = solve_gate_failures(&baseline, &fresh, 0.5);
        assert!(
            failures.iter().any(|f| f.contains("bit_identical_batch")),
            "{failures:?}"
        );
    }

    #[test]
    fn solve_gate_tolerates_missing_baseline_fields() {
        let baseline = Json::Obj(vec![]);
        let fresh = solve_json(1.0, 1.0, true);
        assert!(solve_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    fn serve_json(throughput_rps: f64, p99_us: f64, bit_identical: bool) -> Json {
        Json::Obj(vec![
            ("throughput_rps".to_string(), Json::Num(throughput_rps)),
            ("p99_us".to_string(), Json::Num(p99_us)),
            (
                "bit_identical_replicas".to_string(),
                Json::Bool(bit_identical),
            ),
        ])
    }

    #[test]
    fn serve_gate_passes_within_tolerance() {
        let baseline = serve_json(2000.0, 10_000.0, true);
        let fresh = serve_json(1100.0, 14_000.0, true);
        assert!(serve_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    #[test]
    fn serve_gate_flags_throughput_regression() {
        let baseline = serve_json(2000.0, 10_000.0, true);
        let fresh = serve_json(900.0, 10_000.0, true);
        let failures = serve_gate_failures(&baseline, &fresh, 0.5);
        assert!(
            failures.iter().any(|f| f.contains("throughput_rps")),
            "{failures:?}"
        );
    }

    #[test]
    fn serve_gate_latency_ceiling_inverts() {
        // Throughput gates below the baseline, latency gates above it: a
        // faster-throughput run with a blown p99 tail must still fail.
        let baseline = serve_json(2000.0, 100_000.0, true);
        let fresh = serve_json(3000.0, 160_000.0, true);
        let failures = serve_gate_failures(&baseline, &fresh, 0.5);
        assert!(
            failures.iter().any(|f| f.contains("p99_us")),
            "{failures:?}"
        );
        // And a *better* p99 never fails, however large the improvement.
        let fresh = serve_json(2000.0, 100.0, true);
        assert!(serve_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    #[test]
    fn serve_gate_p99_noise_below_the_slack_is_not_a_regression() {
        // 4 ms -> 12 ms is a 3x ratio but well under the absolute slack:
        // scheduler noise, not an event-loop regression.
        let baseline = serve_json(2000.0, 4_000.0, true);
        let fresh = serve_json(2000.0, 12_000.0, true);
        assert!(serve_gate_failures(&baseline, &fresh, 0.5).is_empty());
        // The same ratio above the slack is gated.
        let fresh = serve_json(2000.0, 3.0 * SERVE_P99_SLACK_US, true);
        assert!(!serve_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    #[test]
    fn serve_gate_lost_bit_identity_is_a_hard_failure() {
        let baseline = serve_json(2000.0, 10_000.0, true);
        let fresh = serve_json(4000.0, 5_000.0, false);
        let failures = serve_gate_failures(&baseline, &fresh, 0.5);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("bit_identical_replicas")),
            "{failures:?}"
        );
    }

    #[test]
    fn serve_gate_tolerates_missing_baseline_fields() {
        let baseline = Json::Obj(vec![]);
        let fresh = serve_json(1.0, 1.0, true);
        assert!(serve_gate_failures(&baseline, &fresh, 0.5).is_empty());
    }

    #[test]
    fn select_rejects_unknown_names() {
        let mut cfg = SuiteConfig::new(ExperimentScale::smoke(), "smoke");
        cfg.only = vec!["no_such_artifact".to_string()];
        let err = select_artifacts(&cfg).unwrap_err();
        assert!(err.contains("no_such_artifact"), "{err}");
        assert!(err.contains("table1"), "should list known names: {err}");
    }

    #[test]
    fn select_filters_and_keeps_order() {
        let mut cfg = SuiteConfig::new(ExperimentScale::smoke(), "smoke");
        cfg.only = vec!["perf".to_string(), "table1".to_string()];
        let picked = select_artifacts(&cfg).unwrap();
        let names: Vec<&str> = picked.iter().map(|s| s.name).collect();
        assert_eq!(names, ["table1", "perf"], "registry order, not CLI order");
        cfg.only.clear();
        cfg.skip = vec!["perf".to_string()];
        let picked = select_artifacts(&cfg).unwrap();
        assert!(picked.iter().all(|s| s.name != "perf"));
    }

    #[test]
    fn default_timeouts_scale_up() {
        assert!(default_timeout("smoke") < default_timeout("quick"));
        assert!(default_timeout("quick") < default_timeout("full"));
    }

    #[test]
    fn status_strings_and_health() {
        assert_eq!(ArtifactStatus::Ok.as_str(), "ok");
        assert!(ArtifactStatus::Resumed.is_ok());
        assert!(!ArtifactStatus::Failed("x".into()).is_ok());
        assert_eq!(ArtifactStatus::TimedOut.as_str(), "timed_out");
    }
}
