//! Experiment scenarios: dataset + model + pruning + training.

use xbar_data::{CifarLikeConfig, Dataset, Split};
use xbar_nn::train::{evaluate, train, DataRef, TrainConfig, WeightConstraint};
use xbar_nn::vgg::{VggConfig, VggVariant};
use xbar_nn::Sequential;
use xbar_prune::{cf::prune_cf, xcs::prune_xcs, xrs::prune_xrs, MaskSet, PruneMethod};

/// Which synthetic dataset regime to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// 10-class CIFAR10-like task (paper uses s = 0.8 here).
    Cifar10Like,
    /// 100-class CIFAR100-like task (paper uses s = 0.6 here).
    Cifar100Like,
}

impl DatasetKind {
    /// Paper display name of the dataset being mimicked.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Cifar10Like => "CIFAR10-like",
            DatasetKind::Cifar100Like => "CIFAR100-like",
        }
    }

    /// The sparsity ratio the paper pairs with this dataset.
    pub fn paper_sparsity(&self) -> f64 {
        match self {
            DatasetKind::Cifar10Like => 0.8,
            DatasetKind::Cifar100Like => 0.6,
        }
    }
}

/// How large to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// VGG width multiplier.
    pub width: f64,
    /// Training examples.
    pub train_size: usize,
    /// Test examples.
    pub test_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl ExperimentScale {
    /// CPU-minutes scale used by default: width-1/4 VGG, ~1k synthetic
    /// training images, 6 epochs. This is the setting the circuit defaults
    /// were calibrated against; it reproduces the paper's relative effects
    /// with magnitudes close to Table I / Fig. 3.
    pub fn quick() -> Self {
        Self {
            width: 0.25,
            train_size: 1000,
            test_size: 400,
            epochs: 6,
            batch_size: 32,
        }
    }

    /// A larger setting (width-1/2, more data/epochs) for `--full` runs.
    pub fn full() -> Self {
        Self {
            width: 0.5,
            train_size: 4000,
            test_size: 1000,
            epochs: 10,
            batch_size: 32,
        }
    }

    /// Tiny setting for tests and criterion benches.
    pub fn smoke() -> Self {
        Self {
            width: 0.125,
            train_size: 200,
            test_size: 100,
            epochs: 2,
            batch_size: 32,
        }
    }
}

/// A fully specified experiment scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// VGG11 or VGG16.
    pub variant: VggVariant,
    /// Dataset regime.
    pub dataset: DatasetKind,
    /// Structured-pruning method.
    pub method: PruneMethod,
    /// Sparsity ratio `s` (ignored for `PruneMethod::None`).
    pub sparsity: f64,
    /// Crossbar segment size used by XCS/XRS pruning (the paper's canonical
    /// 32).
    pub segment: usize,
    /// Run size.
    pub scale: ExperimentScale,
    /// Master seed.
    pub seed: u64,
    /// Overrides the dataset noise level (task difficulty); `None` keeps the
    /// dataset default.
    pub noise_std: Option<f32>,
}

impl Scenario {
    /// A scenario with the paper's canonical sparsity for the dataset.
    pub fn new(
        variant: VggVariant,
        dataset: DatasetKind,
        method: PruneMethod,
        scale: ExperimentScale,
    ) -> Self {
        Self {
            variant,
            dataset,
            method,
            sparsity: dataset.paper_sparsity(),
            segment: 32,
            scale,
            seed: 42,
            noise_std: None,
        }
    }

    /// Overrides the sparsity ratio.
    pub fn with_sparsity(mut self, s: f64) -> Self {
        self.sparsity = s;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the scenario's dataset (deterministic).
    pub fn dataset(&self) -> Dataset {
        let mut base = match self.dataset {
            DatasetKind::Cifar10Like => CifarLikeConfig::cifar10_like(),
            DatasetKind::Cifar100Like => CifarLikeConfig::cifar100_like(),
        };
        if let Some(noise) = self.noise_std {
            base = base.noise_std(noise);
        }
        // 100-class runs need more examples per class to train at all; scale
        // both splits up rather than starving them (10 images/class at the
        // quick scale would be meaningless).
        let factor = match self.dataset {
            DatasetKind::Cifar10Like => 1,
            DatasetKind::Cifar100Like => 2,
        };
        base.train_size(self.scale.train_size * factor)
            .test_size(self.scale.test_size * factor)
            .generate(self.seed ^ 0xDA7A)
    }

    /// The training recipe for this scenario. VGG16 is deep enough that the
    /// VGG11 recipe diverges early at this batch size; it gets a gentler
    /// learning rate and proportionally more epochs so unpruned and pruned
    /// models reach comparable software accuracy (the paper's iso-accuracy
    /// setup).
    fn train_recipe(&self) -> TrainConfig {
        let (lr, epochs) = match self.variant {
            VggVariant::Vgg11 => (0.05f32, self.scale.epochs),
            VggVariant::Vgg16 => (0.02, self.scale.epochs * 3 / 2),
        };
        let mut cfg = TrainConfig {
            epochs,
            batch_size: self.scale.batch_size,
            lr_decay: 0.4,
            lr_decay_epochs: vec![epochs * 6 / 10, epochs * 8 / 10],
            seed: self.seed,
            ..TrainConfig::default()
        };
        cfg.sgd.lr = lr;
        cfg
    }

    /// Builds, prunes (at initialisation) and trains the model; returns the
    /// trained model, its masks and the software test accuracy.
    ///
    /// # Panics
    ///
    /// Panics if training fails on an internal shape error (a bug, not a
    /// user error).
    pub fn train_model(&self, data: &Dataset) -> TrainedModel {
        let num_classes = data.num_classes();
        let (mut model, masks) = self.build_model(num_classes);
        let train_cfg = self.train_recipe();
        let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train))
            .expect("dataset is well-formed");
        let constraint: Option<&dyn WeightConstraint> =
            masks.as_ref().map(|m| m as &dyn WeightConstraint);
        train(&mut model, train_ref, &train_cfg, constraint).expect("training is shape-safe");
        let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
            .expect("dataset is well-formed");
        let software_accuracy =
            evaluate(&mut model, test_ref, 64).expect("evaluation is shape-safe");
        TrainedModel {
            model,
            masks,
            software_accuracy,
            scenario: *self,
        }
    }
}

/// A trained (possibly pruned) model ready for crossbar mapping.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The trained network (masks already applied).
    pub model: Sequential,
    /// Pruning masks, if any.
    pub masks: Option<MaskSet>,
    /// Software test accuracy.
    pub software_accuracy: f64,
    /// The scenario that produced it.
    pub scenario: Scenario,
}

impl Scenario {
    /// Builds the scenario's untrained (but pruned-at-init) model and its
    /// masks. Deterministic in the seed, which is what lets the disk cache
    /// below store only trained parameter values.
    pub fn build_model(&self, num_classes: usize) -> (Sequential, Option<MaskSet>) {
        let model_cfg =
            VggConfig::new(self.variant, num_classes).width_multiplier(self.scale.width);
        let mut model = model_cfg.build(self.seed);
        let masks = match self.method {
            PruneMethod::None => None,
            PruneMethod::ChannelFilter => Some(prune_cf(&model, self.sparsity)),
            PruneMethod::XbarColumn => Some(prune_xcs(&model, self.sparsity, self.segment)),
            PruneMethod::XbarRow => Some(prune_xrs(&model, self.sparsity, self.segment)),
        };
        if let Some(masks) = &masks {
            masks.apply_to(&mut model);
        }
        (model, masks)
    }

    /// A deterministic cache key covering every field that affects training,
    /// including the recipe (so recipe changes invalidate stale entries).
    ///
    /// Public because the suite orchestrator also uses it as the identity
    /// under which scenarios shared by several artifacts are deduplicated:
    /// two scenarios with equal keys train to bit-identical models.
    pub fn cache_key(&self) -> String {
        let recipe = self.train_recipe();
        // Bumped when a pruning method's semantics change (v2: XCS/XRS
        // exempt the input layer).
        let prune_version = match self.method {
            PruneMethod::XbarColumn | PruneMethod::XbarRow => "v2_",
            _ => "",
        };
        format!(
            "{prune_version}{}_{}_{}_s{:.3}_seg{}_w{:.3}_n{}_e{}_b{}_lr{:.4}_seed{}_noise{:?}",
            self.variant,
            self.dataset.name().replace('-', ""),
            self.method.to_string().replace('/', ""),
            self.sparsity,
            self.segment,
            self.scale.width,
            self.scale.train_size,
            recipe.epochs,
            self.scale.batch_size,
            recipe.sgd.lr,
            self.seed,
            self.noise_std,
        )
    }

    /// Like [`Scenario::train_model`] but backed by a disk cache under
    /// `results/cache/` so the many experiment binaries that share scenarios
    /// (e.g. the unpruned VGG11 baseline) train each model only once.
    ///
    /// Hits and misses are counted in the `bench/scenario_cache_hits` /
    /// `bench/scenario_cache_misses` metrics; the suite orchestrator uses
    /// the deltas to prove each unique scenario trained at most once.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors other than a missing cache entry.
    pub fn train_model_cached(&self, data: &Dataset) -> TrainedModel {
        let dir = crate::report::results_dir().join("cache");
        let path = dir.join(format!("{}.xbarmodel", self.cache_key()));
        if let Some(tm) = self.try_load(&path, data) {
            xbar_obs::metrics::counter_add(xbar_obs::names::BENCH_SCENARIO_CACHE_HITS, 1);
            xbar_obs::event!("cache_loaded", path = path.display().to_string());
            return tm;
        }
        xbar_obs::metrics::counter_add(xbar_obs::names::BENCH_SCENARIO_CACHE_MISSES, 1);
        let tm = self.train_model(data);
        std::fs::create_dir_all(&dir).expect("create cache dir");
        let mut model = tm.model.clone();
        cache_io::save(&path, &mut model, tm.software_accuracy).expect("write model cache");
        tm
    }

    fn try_load(&self, path: &std::path::Path, data: &Dataset) -> Option<TrainedModel> {
        let (mut model, masks) = self.build_model(data.num_classes());
        let (software_accuracy, state) = cache_io::load_into(path, &mut model)?;
        if state == xbar_nn::checkpoint::LoadedState::ParamsOnly {
            // Legacy entry without BatchNorm running statistics: re-estimate
            // them from training data (no weight updates).
            let train_ref =
                xbar_nn::train::DataRef::new(data.images(Split::Train), data.labels(Split::Train))
                    .ok()?;
            xbar_core::recalibrate::recalibrate_batchnorm(
                &mut model,
                train_ref,
                self.scale.batch_size,
                16,
            )
            .ok()?;
        }
        Some(TrainedModel {
            model,
            masks,
            software_accuracy,
            scenario: *self,
        })
    }
}

mod cache_io {
    //! Cached trained models: the parameter checkpoint (via
    //! `xbar_nn::checkpoint`) followed by the software accuracy as
    //! little-endian f64.

    use std::io::{Read, Write};
    use std::path::Path;
    use xbar_nn::checkpoint::{load_params, save_params, LoadedState};
    use xbar_nn::Sequential;

    pub fn save(path: &Path, model: &mut Sequential, acc: f64) -> std::io::Result<()> {
        let mut buf: Vec<u8> = Vec::new();
        save_params(model, &mut buf).map_err(std::io::Error::other)?;
        buf.extend_from_slice(&acc.to_le_bytes());
        // Atomic rename so a killed run cannot leave a truncated cache
        // entry that poisons every later run of the scenario.
        xbar_nn::serialize::write_file_atomic(path, |f| f.write_all(&buf))
    }

    /// Loads the cached state into `model`; returns the cached software
    /// accuracy and what the checkpoint contained, or `None` for a
    /// missing/stale/mismatched entry. Entries written by earlier builds
    /// with the params-only `XBARMDL1` layout (same body as checkpoint v1,
    /// different magic) are still accepted; callers must recalibrate the
    /// BatchNorm statistics for those.
    pub fn load_into(path: &Path, model: &mut Sequential) -> Option<(f64, LoadedState)> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .ok()?
            .read_to_end(&mut bytes)
            .ok()?;
        if bytes.len() < 16 {
            return None;
        }
        if bytes.starts_with(b"XBARMDL1") {
            // Legacy magic; rest of the layout is identical to checkpoint v1.
            bytes[..8].copy_from_slice(b"XBARCKP1");
        }
        let (ckpt, acc_bytes) = bytes.split_at(bytes.len() - 8);
        let state = load_params(model, ckpt).ok()?;
        Some((f64::from_le_bytes(acc_bytes.try_into().ok()?), state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_round_trip_restores_model_and_accuracy() {
        // The dir ends in "results" so a concurrently running report-module
        // test that reads XBAR_RESULTS_DIR still sees a plausible path.
        let dir = std::env::temp_dir()
            .join(format!("xbar_cache_test_{}", std::process::id()))
            .join("results");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("XBAR_RESULTS_DIR", &dir);
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::ChannelFilter,
            ExperimentScale::smoke(),
        );
        let data = sc.dataset();
        let trained = sc.train_model_cached(&data); // miss → train + save
        let loaded = sc.train_model_cached(&data); // hit → load
        assert_eq!(loaded.software_accuracy, trained.software_accuracy);
        let mut a = trained.model.clone();
        let mut b = loaded.model.clone();
        let sa: Vec<xbar_tensor::Tensor> = a
            .state_tensors_mut()
            .into_iter()
            .map(|t| t.clone())
            .collect();
        let sb: Vec<xbar_tensor::Tensor> = b
            .state_tensors_mut()
            .into_iter()
            .map(|t| t.clone())
            .collect();
        assert_eq!(sa, sb, "full state (incl. BN stats) must round-trip");
        std::env::remove_var("XBAR_RESULTS_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_scenario_trains_and_masks() {
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::ChannelFilter,
            ExperimentScale::smoke(),
        );
        let data = sc.dataset();
        let tm = sc.train_model(&data);
        assert!(tm.software_accuracy >= 0.0 && tm.software_accuracy <= 1.0);
        let masks = tm.masks.as_ref().unwrap();
        let mut model = tm.model.clone();
        // Masks held through training.
        assert!(masks.observed_sparsity(&mut model) > 0.4);
    }

    #[test]
    fn unpruned_scenario_has_no_masks() {
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::None,
            ExperimentScale::smoke(),
        );
        let data = sc.dataset();
        let tm = sc.train_model(&data);
        assert!(tm.masks.is_none());
    }

    #[test]
    fn dataset_kind_metadata() {
        assert_eq!(DatasetKind::Cifar10Like.paper_sparsity(), 0.8);
        assert_eq!(DatasetKind::Cifar100Like.paper_sparsity(), 0.6);
        assert!(DatasetKind::Cifar100Like.name().contains("100"));
    }
}
