//! Open-loop intended-send scheduling for load generation.
//!
//! Coordinated-omission-honest load generation measures latency from the
//! *intended* send time of a request, not from whenever the generator got
//! around to sending it. That only works if the intended-time grid is
//! immovable: one anchor fixed before any connection starts, and request
//! `k`'s intended time a pure function `anchor + k·interval` of it. A grid
//! re-anchored per connection thread (or nudged forward when a connection
//! errors and retries) silently forgives the very stalls the open-loop mode
//! exists to charge — the bug [`OpenLoopSchedule`] removes.

use std::time::{Duration, Instant};

/// The immovable intended-send-time grid of one open-loop connection.
///
/// Construct it from an anchor captured **once, before spawning any
/// connection threads**, so every connection shares the same grid and a
/// slow thread spawn, handshake, connection error, or retry storm cannot
/// re-anchor the schedule.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopSchedule {
    anchor: Instant,
    interval: Duration,
}

impl OpenLoopSchedule {
    /// A grid anchored at `anchor` with one intended send per `interval`.
    pub fn new(anchor: Instant, interval: Duration) -> Self {
        Self { anchor, interval }
    }

    /// The offset of request `req` (0-based) from the anchor — exactly
    /// `req · interval`, whatever happened to earlier requests.
    pub fn offset(&self, req: usize) -> Duration {
        Duration::from_nanos(
            u64::try_from(self.interval.as_nanos())
                .unwrap_or(u64::MAX)
                .saturating_mul(req as u64),
        )
    }

    /// The intended send time of request `req` (0-based).
    pub fn intended(&self, req: usize) -> Instant {
        self.anchor + self.offset(req)
    }

    /// Blocks until `intended(req)` if it is still ahead, then returns the
    /// intended time — the timestamp latency must be measured from. When
    /// the generator has fallen behind schedule this returns immediately,
    /// still with the intended time, so the backlog is charged to the
    /// server rather than silently swallowed.
    pub fn wait_until_intended(&self, req: usize) -> Instant {
        let intended = self.intended(req);
        let now = Instant::now();
        if now < intended {
            std::thread::sleep(intended - now);
        }
        intended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use xbar_serve::{RetryPolicy, RetryingClient};

    #[test]
    fn grid_is_a_pure_function_of_the_anchor() {
        let anchor = Instant::now();
        let s = OpenLoopSchedule::new(anchor, Duration::from_millis(7));
        for req in [0usize, 1, 2, 10, 1000] {
            assert_eq!(s.offset(req), Duration::from_millis(7 * req as u64));
            assert_eq!(
                s.intended(req),
                anchor + Duration::from_millis(7 * req as u64)
            );
        }
    }

    #[test]
    fn waiting_behind_schedule_returns_the_past_intended_time() {
        let anchor = Instant::now() - Duration::from_secs(1);
        let s = OpenLoopSchedule::new(anchor, Duration::from_millis(10));
        let begin = Instant::now();
        let intended = s.wait_until_intended(3);
        assert!(
            begin.elapsed() < Duration::from_millis(500),
            "must not sleep"
        );
        assert_eq!(intended, anchor + Duration::from_millis(30));
        assert!(intended < Instant::now());
    }

    /// A listener that accepts each connection and slams it shut without
    /// answering — every request the client sends errors (after its retry
    /// backoff). The intended-time grid must come out of such a run exactly
    /// as it went in: failures advance the request index, never the anchor.
    #[test]
    fn flaky_listener_does_not_move_the_intended_grid() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let server = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                listener.set_nonblocking(true).unwrap();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((mut conn, _)) => {
                            // Read a little so the client commits to the
                            // request, then drop the socket mid-exchange.
                            let mut buf = [0u8; 64];
                            let _ = conn.read(&mut buf);
                            drop(conn);
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            })
        };

        let interval = Duration::from_millis(5);
        // Anchor captured once, before the "connection" does any work —
        // the contract loadgen's threads follow.
        let anchor = Instant::now();
        let schedule = OpenLoopSchedule::new(anchor, interval);
        let mut client = RetryingClient::new(
            &addr,
            Duration::from_secs(2),
            RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        let requests = 4usize;
        let mut failures = 0usize;
        let mut intended_times = Vec::with_capacity(requests);
        for req in 0..requests {
            let begin = schedule.wait_until_intended(req);
            intended_times.push(begin);
            if client.post_json("/v1/classify", "{}").is_err() {
                failures += 1;
            }
        }
        stop.store(true, Ordering::SeqCst);
        server.join().unwrap();

        assert!(failures > 0, "the flaky listener must fail requests");
        // The grid is untouched by those failures: every recorded intended
        // time still sits exactly req·interval past the shared anchor.
        for (req, &t) in intended_times.iter().enumerate() {
            assert_eq!(
                t - anchor,
                Duration::from_millis(5 * req as u64),
                "request {req} re-anchored the schedule"
            );
            assert_eq!(t, schedule.intended(req));
        }
    }
}
