//! The suite time-profile artifact (`results/profile.csv`): where does a
//! pipeline run actually spend its wall time?
//!
//! One instrumented mini-pipeline — cached training, crossbar mapping from
//! a cold solve cache, forward-pass evaluation, artifact save/load I/O, and
//! a cached re-map — each phase timed and annotated with the metric deltas
//! it produced (scenario-cache traffic, tiles mapped, solve-cache hits).
//! Phases are also recorded as spans, so the suite's Chrome trace
//! (`results/suite_trace.json`) shows the same breakdown on a timeline.
//!
//! The artifact is `exclusive`: it clears the process-global solve cache
//! and reads global counters before/after each phase, so concurrent
//! mapping work would corrupt both the timings and the attributions.

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::Table;
use crate::runner::map_config;
use crate::scenario::Scenario;
use crate::DatasetKind;
use std::time::Instant;
use xbar_core::pipeline::map_to_crossbars;
use xbar_core::{load_artifact_from_file, save_artifact_to_file, ArtifactMeta};
use xbar_data::Split;
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::vgg::VggVariant;
use xbar_obs::metrics::counter_value;
use xbar_obs::{names, span};
use xbar_prune::PruneMethod;

/// One timed phase of the profile run.
struct Phase {
    name: &'static str,
    wall_s: f64,
    detail: String,
}

/// The scenario the profile pipeline trains — deliberately the same one the
/// `map` artifact uses, so the suite's prepare phase covers it and the
/// train phase measures a pure cache load.
pub fn profile_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    vec![Scenario::new(
        VggVariant::Vgg11,
        DatasetKind::Cifar10Like,
        PruneMethod::ChannelFilter,
        ctx.scale,
    )
    .with_seed(ctx.seed)]
}

/// Runs the instrumented mini-pipeline and writes the per-phase wall-time
/// breakdown to `results/profile.csv`.
///
/// # Errors
///
/// Fails on any pipeline error (mapping, evaluation, artifact I/O).
pub fn profile(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let mut phases: Vec<Phase> = Vec::new();
    let size = 32usize;

    // Phase 1: training through the disk cache (a hit when the suite's
    // prepare phase ran first; the detail column says which).
    let sc = profile_scenarios(ctx).remove(0);
    let (th0, tm0) = (
        counter_value(names::BENCH_SCENARIO_CACHE_HITS),
        counter_value(names::BENCH_SCENARIO_CACHE_MISSES),
    );
    let start = Instant::now();
    let (data, tm) = {
        let _span = span!("profile_train");
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        (data, tm)
    };
    let hits = counter_value(names::BENCH_SCENARIO_CACHE_HITS) - th0;
    let misses = counter_value(names::BENCH_SCENARIO_CACHE_MISSES) - tm0;
    phases.push(Phase {
        name: "train",
        wall_s: start.elapsed().as_secs_f64(),
        detail: format!("scenario cache: {hits} hit(s), {misses} miss(es)"),
    });

    // Phase 2: mapping onto non-ideal crossbars from a cold solve cache
    // (cleared first — a concurrent artifact may have populated it).
    let cfg = map_config(&tm, size, ctx.seed);
    xbar_sim::clear_solve_cache();
    let (xb0, sw0) = (
        counter_value(names::MAP_CROSSBARS),
        counter_value(names::MAP_SOLVER_ITERATIONS),
    );
    let start = Instant::now();
    let (mut noisy, report) = {
        let _span = span!("profile_map");
        map_to_crossbars(&tm.model, &cfg).map_err(|e| format!("mapping pipeline: {e}"))?
    };
    let map_s = start.elapsed().as_secs_f64();
    phases.push(Phase {
        name: "map",
        wall_s: map_s,
        detail: format!(
            "{} crossbar(s), {} solver sweep(s)",
            counter_value(names::MAP_CROSSBARS) - xb0,
            counter_value(names::MAP_SOLVER_ITERATIONS) - sw0,
        ),
    });

    // Phase 3: forward-pass evaluation of the mapped model on the test set.
    let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
        .map_err(|e| format!("dataset well-formed: {e}"))?;
    let n_test = data.labels(Split::Test).len();
    let start = Instant::now();
    let crossbar_accuracy = {
        let _span = span!("profile_eval");
        evaluate(&mut noisy, test, 64).map_err(|e| format!("evaluation shape-safe: {e}"))?
    };
    phases.push(Phase {
        name: "eval",
        wall_s: start.elapsed().as_secs_f64(),
        detail: format!(
            "{n_test} image(s), {:.2}% crossbar accuracy",
            100.0 * crossbar_accuracy
        ),
    });

    // Phase 4: artifact serialisation round-trip (the `map` artifact's
    // write plus the server's load), against a scratch file.
    let scratch = std::env::temp_dir().join(format!(
        "xbar-profile-{}-{}.xbarmdl",
        std::process::id(),
        ctx.seed
    ));
    let meta = ArtifactMeta::from_mapping("profile".to_string(), &cfg, &report);
    let start = Instant::now();
    {
        let _span = span!("profile_io");
        save_artifact_to_file(&mut noisy, &meta, &scratch)
            .map_err(|e| format!("write artifact: {e}"))?;
        load_artifact_from_file(&scratch).map_err(|e| format!("read artifact back: {e}"))?;
    }
    let io_s = start.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(&scratch).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&scratch).ok();
    phases.push(Phase {
        name: "io",
        wall_s: io_s,
        detail: format!("save + load round-trip, {bytes} byte artifact"),
    });

    // Phase 5: the same mapping replayed through the now-warm solve cache.
    let (ch0, cm0) = (
        counter_value(names::SIM_SOLVE_CACHE_HITS),
        counter_value(names::SIM_SOLVE_CACHE_MISSES),
    );
    let start = Instant::now();
    {
        let _span = span!("profile_cache");
        map_to_crossbars(&tm.model, &cfg).map_err(|e| format!("cached re-map: {e}"))?;
    }
    let cache_s = start.elapsed().as_secs_f64();
    phases.push(Phase {
        name: "cache",
        wall_s: cache_s,
        detail: format!(
            "cached re-map: {} hit(s), {} miss(es), {:.1}x vs cold map",
            counter_value(names::SIM_SOLVE_CACHE_HITS) - ch0,
            counter_value(names::SIM_SOLVE_CACHE_MISSES) - cm0,
            map_s / cache_s.max(1e-12),
        ),
    });

    let total_s: f64 = phases.iter().map(|p| p.wall_s).sum();
    let mut table = Table::new(
        "Suite time profile",
        &["Phase", "Wall (s)", "Share (%)", "Detail"],
    );
    for phase in &phases {
        table.push_row(vec![
            phase.name.to_string(),
            format!("{:.3}", phase.wall_s),
            format!(
                "{:.1}",
                100.0 * phase.wall_s / total_s.max(f64::MIN_POSITIVE)
            ),
            phase.detail.clone(),
        ]);
        out.key(format!("{}_s", phase.name), phase.wall_s);
    }
    table.push_row(vec![
        "total".to_string(),
        format!("{total_s:.3}"),
        "100.0".to_string(),
        format!("scale {}, seed {}", ctx.scale_name, ctx.seed),
    ]);
    ctx.emit(&table, &mut out, "profile")?;
    out.key("total_s", total_s);
    out.key("crossbar_acc", crossbar_accuracy);
    Ok(out)
}
