//! Cold tile-solve throughput benchmark (`results/BENCH_solve.json`).
//!
//! Measures how many cold circuit solves per second the batched,
//! lane-vectorized path ([`NonIdealSolver::solve_nodes_batch`]) sustains on
//! one tile against the scalar oracle
//! ([`NonIdealSolver::solve_nodes_scalar`]) solving the same vectors one at
//! a time — the oracle the batched path is bit-identical to by
//! construction, which this benchmark also re-verifies on the measured
//! currents. The artifact hard-fails if the batch loses bit-identity or
//! the speedup falls under the 5× acceptance floor; `suite --gate`
//! additionally compares the fresh numbers against the committed baseline.

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::results_dir;
use std::time::Instant;
use xbar_obs::json::Json;
use xbar_sim::params::CrossbarParams;
use xbar_sim::{ConductanceMatrix, NonIdealSolver, SolveMethod};

/// Tile edge the acceptance criterion is stated at.
pub const SOLVE_BENCH_SIZE: usize = 64;
/// Batch width the acceptance criterion is stated at.
pub const SOLVE_BENCH_BATCH: usize = 32;
/// Acceptance floor: batched cold throughput over the scalar oracle.
pub const SOLVE_SPEEDUP_FLOOR: f64 = 5.0;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A deterministic conductance matrix spanning the full `[Gmin, Gmax]`
/// device range — a representative programmed tile, not a pathological one.
fn bench_matrix(n: usize, seed: u64, params: &CrossbarParams) -> ConductanceMatrix {
    let mut g = ConductanceMatrix::filled(n, n, 0.0);
    let mut s = seed | 1;
    for i in 0..n {
        for j in 0..n {
            let frac = (xorshift(&mut s) % 1000) as f64 / 1000.0;
            g.set(
                i,
                j,
                params.g_min() + frac * (params.g_max() - params.g_min()),
            );
        }
    }
    g
}

/// Deterministic non-negative read voltages, one vector per batch element.
fn bench_inputs(n: usize, batch: usize, seed: u64, v_read: f64) -> Vec<Vec<f64>> {
    let mut s = seed | 1;
    (0..batch)
        .map(|_| {
            (0..n)
                .map(|_| (xorshift(&mut s) % 1000) as f64 / 999.0 * v_read)
                .collect()
        })
        .collect()
}

fn bits_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// Cold-solve throughput benchmark at `size`×`size` with `batch` input
/// vectors, written to `results/BENCH_solve.json`.
///
/// Timing-sensitive: the registry marks it `exclusive` so it never shares
/// the machine with concurrent artifact workers.
///
/// # Errors
///
/// Fails if the batched currents diverge bitwise from the scalar oracle's
/// or the batched speedup falls below [`SOLVE_SPEEDUP_FLOOR`].
pub fn solve_bench(ctx: &ArtifactCtx, size: usize, batch: usize) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let mut params = CrossbarParams::with_size(size);
    params.sigma_variation = 0.0; // the matrix itself carries the spread
    params
        .validate()
        .map_err(|e| format!("bench params: {e}"))?;
    let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
    let g = bench_matrix(size, ctx.seed ^ 0x0005_014E, &params);
    let vs = bench_inputs(size, batch, ctx.seed ^ 0xBA7C4, params.v_read);

    let currents = |nodes: &xbar_sim::NodeVoltages| -> Result<Vec<f64>, String> {
        if !nodes.stats.converged {
            return Err("bench solve did not converge".to_string());
        }
        solver
            .currents_of(&g, nodes)
            .map_err(|e| format!("current read-out: {e}"))
    };

    // Correctness first, timing second: one un-timed round pins down
    // bit-identity (and warms caches/branch predictors for both paths).
    let scalar_ref: Vec<Vec<f64>> = vs
        .iter()
        .map(|v| {
            solver
                .solve_nodes_scalar(&g, v, None)
                .map_err(|e| format!("scalar oracle: {e}"))
                .and_then(|nodes| currents(&nodes))
        })
        .collect::<Result<_, _>>()?;
    let batch_ref: Vec<Vec<f64>> = solver
        .solve_nodes_batch(&g, &vs)
        .map_err(|e| format!("batched solve: {e}"))?
        .iter()
        .map(currents)
        .collect::<Result<_, _>>()?;
    let bit_identical_batch = bits_equal(&scalar_ref, &batch_ref);
    let sweeps = solver
        .solve_nodes_batch(&g, &vs)
        .map_err(|e| format!("batched solve: {e}"))?
        .iter()
        .map(|n| n.stats.iterations as u64)
        .sum::<u64>();

    // Time both paths over whole batches; every solve is cold (no warm
    // seeds, no cache — the solver-level API never touches the
    // process-global solve cache). One timing window:
    let time_window = |run: &mut dyn FnMut() -> Result<(), String>| -> Result<f64, String> {
        let mut reps = 0u64;
        let start = Instant::now();
        loop {
            run()?;
            reps += 1;
            let elapsed = start.elapsed().as_secs_f64();
            if (elapsed >= 0.3 && reps >= 2) || elapsed >= 2.0 {
                return Ok(reps as f64 * batch as f64 / elapsed);
            }
        }
    };
    let mut scalar_run = || {
        for v in &vs {
            let nodes = solver
                .solve_nodes_scalar(&g, v, None)
                .map_err(|e| format!("scalar oracle: {e}"))?;
            std::hint::black_box(currents(&nodes)?);
        }
        Ok(())
    };
    let mut batch_run = || {
        let solved = solver
            .solve_nodes_batch(&g, &vs)
            .map_err(|e| format!("batched solve: {e}"))?;
        for nodes in &solved {
            std::hint::black_box(currents(nodes)?);
        }
        Ok(())
    };
    // Alternate windows and keep the best rate per path: interference from
    // whatever shares the machine only ever slows a window down, so the max
    // over windows is the least-contended estimate for each path, and the
    // ratio of maxes is stable where a single-window ratio would swing with
    // whichever path drew the noisy window.
    let (mut scalar_solves_per_s, mut batch_solves_per_s) = (0.0f64, 0.0f64);
    for _ in 0..4 {
        scalar_solves_per_s = scalar_solves_per_s.max(time_window(&mut scalar_run)?);
        batch_solves_per_s = batch_solves_per_s.max(time_window(&mut batch_run)?);
    }
    let speedup_batch = batch_solves_per_s / scalar_solves_per_s.max(1e-12);

    let json = Json::Obj(vec![
        ("bin".into(), Json::Str("solve".into())),
        ("scale".into(), Json::Str(ctx.scale_name.into())),
        ("crossbar_size".into(), Json::Num(size as f64)),
        ("batch".into(), Json::Num(batch as f64)),
        ("seed".into(), Json::Num(ctx.seed as f64)),
        ("scalar_solves_per_s".into(), Json::Num(scalar_solves_per_s)),
        ("tile_solves_per_s".into(), Json::Num(batch_solves_per_s)),
        ("speedup_batch".into(), Json::Num(speedup_batch)),
        ("solver_sweeps".into(), Json::Num(sweeps as f64)),
        (
            "bit_identical_batch".into(),
            Json::Bool(bit_identical_batch),
        ),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create results directory: {e}"))?;
    let path = dir.join("BENCH_solve.json");
    std::fs::write(&path, json.to_json() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    if !ctx.quiet {
        println!(
            "scalar {scalar_solves_per_s:.0}/s | batched {batch_solves_per_s:.0}/s \
             ({speedup_batch:.1}x, bit-identical: {bit_identical_batch}) -> {}",
            path.display()
        );
    }
    out.outputs.push(path);
    out.key("scalar_solves_per_s", scalar_solves_per_s);
    out.key("tile_solves_per_s", batch_solves_per_s);
    out.key("speedup_batch", speedup_batch);

    if !bit_identical_batch {
        return Err("batched solve diverged bitwise from the scalar oracle".to_string());
    }
    if speedup_batch < SOLVE_SPEEDUP_FLOOR {
        return Err(format!(
            "batched cold-solve speedup {speedup_batch:.2}x below the \
             {SOLVE_SPEEDUP_FLOOR:.0}x target"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_workload_is_deterministic_and_in_range() {
        let params = CrossbarParams::with_size(SOLVE_BENCH_SIZE);
        let a = bench_matrix(8, 7, &params);
        let b = bench_matrix(8, 7, &params);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(a.at(i, j).to_bits(), b.at(i, j).to_bits());
                assert!(a.at(i, j) >= params.g_min() && a.at(i, j) <= params.g_max());
            }
        }
        let vs = bench_inputs(8, 4, 7, params.v_read);
        assert_eq!(vs, bench_inputs(8, 4, 7, params.v_read));
        assert!(vs
            .iter()
            .flatten()
            .all(|&v| (0.0..=params.v_read).contains(&v)));
    }

    #[test]
    fn bits_equal_is_exact() {
        let a = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(bits_equal(&a, &a.clone()));
        let mut b = a.clone();
        b[1][0] = f64::from_bits(3.0f64.to_bits() + 1); // one ULP off
        assert!(!bits_equal(&a, &b));
        assert!(!bits_equal(&a, &a[..1]));
    }
}
