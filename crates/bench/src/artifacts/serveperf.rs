//! Serving throughput/latency benchmark (`results/BENCH_serve.json`).
//!
//! Boots the real event-loop server (`xbar-serve`) on a tiny mapped-model
//! artifact and drives it with a thousand-connection open-loop fleet
//! through the shared [`crate::loadcore`] machinery — the same code path
//! the external `loadgen` binary uses. Reports served throughput, p50/p99
//! latency measured from intended send times (coordinated-omission
//! honest), and the overload shed rate, plus the per-bucket latency
//! histogram as `results/serve_hist.jsonl`.
//!
//! Correctness rides along: the same probe set is classified on a
//! single-replica server and on the loaded replica pool, and the scores
//! must match bit-for-bit (`bit_identical_replicas`) — replication and
//! micro-batching are throughput tools, never accuracy knobs. The
//! artifact hard-fails on lost bit-identity or a run that served
//! nothing; `suite --gate` additionally compares the fresh numbers
//! against the committed baseline.

use super::{ArtifactCtx, ArtifactOutput};
use crate::loadcore::{self, LoadConfig};
use crate::report::results_dir;
use std::time::Duration;
use xbar_core::pipeline::{map_to_crossbars, MapConfig};
use xbar_core::{save_artifact_to_file, ArtifactMeta};
use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
use xbar_nn::{Layer, Sequential};
use xbar_obs::json::Json;
use xbar_serve::{Client, ServeConfig, Server, TierModels};
use xbar_sim::params::CrossbarParams;

/// Connection-fleet size the acceptance criterion is stated at.
pub const SERVE_BENCH_CONNECTIONS: usize = 1024;
/// Open-loop requests per connection.
pub const SERVE_BENCH_REQUESTS: usize = 8;
/// Intended-send interval per connection (ms).
pub const SERVE_BENCH_INTERVAL_MS: u64 = 500;
/// Replica-pool size of the loaded server.
pub const SERVE_BENCH_REPLICAS: usize = 2;
/// Probe images checked for replica bit-identity.
const PROBES: usize = 8;

const INPUT_SHAPE: [usize; 3] = [1, 8, 8];
const CLASSES: usize = 4;

/// The benchmark model: tiny but structurally real (conv → pool →
/// linear), so a classify request exercises the full mapped pipeline
/// while the cost per request stays small enough that the event loop and
/// batcher — not the matmul — are what the fleet stresses.
fn bench_model() -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, 1)),
        Layer::ReLU(ReLU::new()),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(8 * 4 * 4, CLASSES, 2)),
    ])
}

/// Maps the benchmark model and persists it as a real `XBARMDL1` artifact
/// at `path` — the server loads it back through the production mmap path.
fn save_bench_artifact(path: &std::path::Path) -> Result<(), String> {
    let model = bench_model();
    let mut params = CrossbarParams::with_size(16);
    params.sigma_variation = 0.0;
    let cfg = MapConfig {
        params,
        ..Default::default()
    };
    let (mut noisy, report) =
        map_to_crossbars(&model, &cfg).map_err(|e| format!("mapping the bench model: {e}"))?;
    let mut meta = ArtifactMeta::from_mapping("serve bench tiny model", &cfg, &report);
    meta.input_shape = INPUT_SHAPE.to_vec();
    save_artifact_to_file(&mut noisy, &meta, path).map_err(|e| format!("saving artifact: {e}"))
}

/// Starts a server on the persisted artifact with `replicas` inference
/// replicas, via the same mmap load production serving uses.
fn start_server(path: &std::path::Path, replicas: usize) -> Result<Server, String> {
    let bundle = xbar_core::load_artifact_bundle_mmap(path)
        .map_err(|e| format!("loading bench artifact: {e}"))?;
    let (models, meta) = TierModels::from_bundle(bundle);
    Server::start_tiered(
        models,
        meta,
        ServeConfig {
            replicas,
            max_batch: 64,
            batch_deadline: Duration::from_millis(2),
            queue_cap: 1024,
            request_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| format!("starting bench server: {e}"))
}

fn shutdown(server: Server) {
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

fn probe_body(seed: usize) -> String {
    let len = INPUT_SHAPE.iter().product::<usize>();
    let values: Vec<String> = loadcore::load_image(len, seed as u64)
        .iter()
        .map(|v| format!("{v}"))
        .collect();
    format!("{{\"image\":[{}]}}", values.join(","))
}

/// Classifies the probe set and returns each response's scores as raw
/// bits — the f32 → JSON → f64 round-trip is exact, so bit-equality here
/// is bit-equality of the served softmax.
fn probe_scores(addr: &str) -> Result<Vec<Vec<u64>>, String> {
    let mut client = Client::connect(addr, Duration::from_secs(20))
        .map_err(|e| format!("probe client connect: {e}"))?;
    (0..PROBES)
        .map(|seed| {
            let resp = client
                .post_json("/v1/classify", &probe_body(seed))
                .map_err(|e| format!("probe {seed}: {e}"))?;
            if resp.status != 200 {
                return Err(format!(
                    "probe {seed}: HTTP {} {}",
                    resp.status,
                    resp.text()
                ));
            }
            Json::parse(&resp.text())
                .map_err(|e| format!("probe {seed}: bad JSON: {e}"))?
                .get("scores")
                .and_then(Json::as_arr)
                .map(|scores| {
                    scores
                        .iter()
                        .filter_map(Json::as_f64)
                        .map(f64::to_bits)
                        .collect()
                })
                .ok_or_else(|| format!("probe {seed}: no scores array"))
        })
        .collect()
}

/// Open-loop serving benchmark at `connections` connections ×
/// `requests` requests, written to `results/BENCH_serve.json` (plus the
/// latency histogram as `results/serve_hist.jsonl`).
///
/// Timing-sensitive: the registry marks it `exclusive` so it never
/// shares the machine with concurrent artifact workers.
///
/// # Errors
///
/// Fails if the replica pool loses bit-identity against the single
/// instance, if nothing was served, or if any request was dropped with a
/// real error (429/503 overload is shed, not dropped).
pub fn serve_bench(
    ctx: &ArtifactCtx,
    connections: usize,
    requests: usize,
) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let dir = std::env::temp_dir().join(format!("xbar_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create temp dir: {e}"))?;
    let artifact = dir.join("model.xbarmdl");
    save_bench_artifact(&artifact)?;

    // Ground truth: the probe set on a single replica, idle server.
    let single = start_server(&artifact, 1)?;
    let single_addr = single.local_addr().to_string();
    let baseline_scores = probe_scores(&single_addr)?;
    shutdown(single);

    // The measured server: a replica pool under the open-loop fleet.
    let server = start_server(&artifact, SERVE_BENCH_REPLICAS)?;
    let addr = server.local_addr().to_string();
    let stats = loadcore::drive(&LoadConfig {
        addr: addr.clone(),
        connections,
        requests_per_connection: requests,
        input_len: INPUT_SHAPE.iter().product(),
        interval: Duration::from_millis(SERVE_BENCH_INTERVAL_MS),
        as_json_floats: false,
        seed: ctx.seed,
        timeout: Duration::from_secs(30),
    });
    // Bit-identity is checked on the pool that just took the load: a
    // replica that drifted (stale weights, torn state) would answer the
    // probes differently from the idle single instance.
    let pool_scores = probe_scores(&addr)?;
    shutdown(server);
    std::fs::remove_dir_all(&dir).ok();
    let bit_identical_replicas = baseline_scores == pool_scores;

    let throughput_rps = stats.throughput_rps();
    let p50_us = stats.quantile_us(0.50) as f64;
    let p99_us = stats.quantile_us(0.99) as f64;
    let shed_rate = stats.shed_rate();

    let results = results_dir();
    std::fs::create_dir_all(&results).map_err(|e| format!("create results directory: {e}"))?;
    let hist_path = results.join("serve_hist.jsonl");
    loadcore::write_histogram_jsonl(&hist_path, &stats.latency)?;
    let json = Json::Obj(vec![
        ("bin".into(), Json::Str("serve".into())),
        ("scale".into(), Json::Str(ctx.scale_name.into())),
        ("connections".into(), Json::Num(connections as f64)),
        ("requests_per_connection".into(), Json::Num(requests as f64)),
        (
            "interval_ms".into(),
            Json::Num(SERVE_BENCH_INTERVAL_MS as f64),
        ),
        ("replicas".into(), Json::Num(SERVE_BENCH_REPLICAS as f64)),
        ("seed".into(), Json::Num(ctx.seed as f64)),
        ("ok".into(), Json::Num(stats.ok as f64)),
        ("shed".into(), Json::Num(stats.shed as f64)),
        ("backpressure".into(), Json::Num(stats.backpressure as f64)),
        ("dropped".into(), Json::Num(stats.dropped() as f64)),
        ("retries".into(), Json::Num(stats.retries as f64)),
        ("wall_s".into(), Json::Num(stats.wall_s)),
        ("throughput_rps".into(), Json::Num(throughput_rps)),
        ("p50_us".into(), Json::Num(p50_us)),
        ("p99_us".into(), Json::Num(p99_us)),
        ("shed_rate".into(), Json::Num(shed_rate)),
        (
            "bit_identical_replicas".into(),
            Json::Bool(bit_identical_replicas),
        ),
    ]);
    let path = results.join("BENCH_serve.json");
    std::fs::write(&path, json.to_json() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    if !ctx.quiet {
        println!(
            "{connections} conns x {requests} reqs: {throughput_rps:.0} req/s served, \
             p50 {:.2} ms, p99 {:.2} ms, shed {:.1}% \
             (bit-identical replicas: {bit_identical_replicas}) -> {}",
            p50_us / 1e3,
            p99_us / 1e3,
            100.0 * shed_rate,
            path.display()
        );
    }
    out.outputs.push(path);
    out.outputs.push(hist_path);
    out.key("throughput_rps", throughput_rps);
    out.key("p50_us", p50_us);
    out.key("p99_us", p99_us);
    out.key("shed_rate", shed_rate);

    if !bit_identical_replicas {
        return Err(
            "replica pool diverged bitwise from the single-instance probe scores".to_string(),
        );
    }
    if stats.ok == 0 {
        return Err("the load run served nothing".to_string());
    }
    if stats.dropped() > 0 {
        return Err(format!(
            "{} request(s) dropped with real errors ({} timeouts, {} bad statuses, {} IO)",
            stats.dropped(),
            stats.timeouts,
            stats.other_status,
            stats.io_errors
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_bodies_are_deterministic_and_sized_for_the_model() {
        assert_eq!(probe_body(3), probe_body(3));
        assert_ne!(probe_body(3), probe_body(4));
        let json = Json::parse(&probe_body(0)).unwrap();
        let img = json.get("image").and_then(Json::as_arr).unwrap();
        assert_eq!(img.len(), INPUT_SHAPE.iter().product::<usize>());
    }

    #[test]
    fn bench_model_matches_the_declared_input_shape() {
        use xbar_nn::Mode;
        use xbar_tensor::Tensor;
        let mut model = bench_model();
        let len = INPUT_SHAPE.iter().product::<usize>();
        let x = Tensor::from_vec(vec![0.1; len], &[1, 1, 8, 8]).unwrap();
        let logits = model.forward(&x, Mode::Eval).unwrap();
        assert_eq!(logits.as_slice().len(), CLASSES);
    }
}
