//! Every table/figure/ablation of the reproduction as a library function.
//!
//! Historically each artifact lived in its own binary under `src/bin/`,
//! invoked by hand; the artifact-generation logic now lives here so that
//! (a) the thin binaries keep working for one-off regeneration and
//! (b) the [`crate::suite`] orchestrator can enumerate, deduplicate and run
//! all of them behind one entry point.
//!
//! Each artifact is described by an [`ArtifactSpec`]:
//!
//! * `run` regenerates the artifact (tables/CSVs/JSON under `results/`) and
//!   reports which files it wrote plus a few key numbers;
//! * `scenarios` enumerates every train-and-cache scenario the artifact
//!   will consume, letting the orchestrator train each *unique* scenario
//!   exactly once before any artifact runs;
//! * `exclusive` marks timing-sensitive artifacts (the `perf` benchmark)
//!   that must not share the machine with concurrent workers.
//!
//! [`registry`] is the single source of truth for what "every table and
//! figure" means.

pub mod ablations;
pub mod drift;
pub mod figures;
pub mod perfmap;
pub mod profile;
pub mod serveperf;
pub mod solveperf;
pub mod surrogate;
pub mod tables;

use crate::report::Table;
use crate::scenario::{ExperimentScale, Scenario};
use std::path::PathBuf;

/// Everything an artifact generator needs to know about the run: the scale
/// preset, the master seed, and whether to keep stdout quiet (the suite
/// runs artifacts concurrently, where interleaved markdown is noise).
#[derive(Debug, Clone, Copy)]
pub struct ArtifactCtx {
    /// Experiment scale preset.
    pub scale: ExperimentScale,
    /// Name of the preset (`smoke`, `quick`, `full`).
    pub scale_name: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Suppress per-table stdout printing (CSV files are always written).
    pub quiet: bool,
}

impl ArtifactCtx {
    /// A context printing tables to stdout — the standalone-binary default.
    pub fn new(scale: ExperimentScale, scale_name: &'static str, seed: u64) -> Self {
        ArtifactCtx {
            scale,
            scale_name,
            seed,
            quiet: false,
        }
    }

    /// Returns the context with stdout printing suppressed.
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Prints the table (unless quiet), writes its CSV under `results/`,
    /// and records the written path in `out`.
    pub(crate) fn emit(
        &self,
        table: &Table,
        out: &mut ArtifactOutput,
        file_stem: &str,
    ) -> Result<(), String> {
        if !self.quiet {
            println!("{}", table.to_markdown());
        }
        let path = table
            .write_csv(file_stem)
            .map_err(|e| format!("writing {file_stem}.csv: {e}"))?;
        if !self.quiet {
            println!("[csv written to {}]", path.display());
        }
        out.outputs.push(path);
        Ok(())
    }
}

/// What an artifact produced: the files it wrote and the key numbers worth
/// surfacing in `results/suite.json` (accuracies, speedups).
#[derive(Debug, Clone, Default)]
pub struct ArtifactOutput {
    /// Files written under `results/`.
    pub outputs: Vec<PathBuf>,
    /// Named scalar results, in insertion order.
    pub key_numbers: Vec<(String, f64)>,
}

impl ArtifactOutput {
    /// Records a key number.
    pub fn key(&mut self, name: impl Into<String>, value: f64) {
        self.key_numbers.push((name.into(), value));
    }
}

/// How an artifact is generated and what it needs.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactSpec {
    /// Stable artifact name; also the stem of its primary output file.
    pub name: &'static str,
    /// The paper table/figure (or extension) the artifact reproduces.
    pub paper_ref: &'static str,
    /// Timing-sensitive artifacts run alone, after the concurrent batch.
    pub exclusive: bool,
    /// Regenerates the artifact.
    pub run: fn(&ArtifactCtx) -> Result<ArtifactOutput, String>,
    /// Enumerates every cached-training scenario `run` will consume.
    pub scenarios: fn(&ArtifactCtx) -> Vec<Scenario>,
}

fn no_scenarios(_: &ArtifactCtx) -> Vec<Scenario> {
    Vec::new()
}

macro_rules! fig_panel {
    ($fn_name:ident, $scen_name:ident, $module:ident :: $runner:ident / $scens:ident, $panel:literal) => {
        fn $fn_name(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
            $module::$runner(ctx, $panel)
        }
        fn $scen_name(ctx: &ArtifactCtx) -> Vec<Scenario> {
            $module::$scens(ctx, $panel)
        }
    };
}

fig_panel!(
    run_fig3a,
    scen_fig3a,
    figures::fig3_panel / fig3_scenarios,
    "a"
);
fig_panel!(
    run_fig3b,
    scen_fig3b,
    figures::fig3_panel / fig3_scenarios,
    "b"
);
fig_panel!(
    run_fig3c,
    scen_fig3c,
    figures::fig3_panel / fig3_scenarios,
    "c"
);
fig_panel!(
    run_fig3d,
    scen_fig3d,
    figures::fig3_panel / fig3_scenarios,
    "d"
);
fig_panel!(
    run_fig4a,
    scen_fig4a,
    figures::fig4_panel / fig4_scenarios,
    "a"
);
fig_panel!(
    run_fig4b,
    scen_fig4b,
    figures::fig4_panel / fig4_scenarios,
    "b"
);
fig_panel!(
    run_fig4c,
    scen_fig4c,
    figures::fig4_panel / fig4_scenarios,
    "c"
);
fig_panel!(
    run_fig4d,
    scen_fig4d,
    figures::fig4_panel / fig4_scenarios,
    "d"
);
fig_panel!(
    run_fig4e,
    scen_fig4e,
    figures::fig4_panel / fig4_scenarios,
    "e"
);
fig_panel!(
    run_fig4f,
    scen_fig4f,
    figures::fig4_panel / fig4_scenarios,
    "f"
);

fn run_fault_sweep(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    tables::fault_sweep(ctx, tables::FAULT_SWEEP_SIZE)
}

fn run_inventory(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    tables::inventory(ctx, 32, xbar_prune::PruneMethod::ChannelFilter)
}

fn run_map(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    perfmap::map_artifact(ctx, &perfmap::MapArtifactOptions::default())
}

fn scen_map(ctx: &ArtifactCtx) -> Vec<Scenario> {
    perfmap::map_artifact_scenarios(ctx, &perfmap::MapArtifactOptions::default())
}

fn run_perf(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    perfmap::perf(ctx, 32)
}

fn run_solve(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    solveperf::solve_bench(
        ctx,
        solveperf::SOLVE_BENCH_SIZE,
        solveperf::SOLVE_BENCH_BATCH,
    )
}

fn run_serve(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    serveperf::serve_bench(
        ctx,
        serveperf::SERVE_BENCH_CONNECTIONS,
        serveperf::SERVE_BENCH_REQUESTS,
    )
}

fn run_surrogate(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    surrogate::surrogate_accuracy(ctx, surrogate::SURROGATE_SIZE)
}

/// Every artifact the suite regenerates, in a stable order: the paper's
/// tables and figures first, then the ablations and the extensions.
pub fn registry() -> Vec<ArtifactSpec> {
    vec![
        ArtifactSpec {
            name: "table1",
            paper_ref: "Table I",
            exclusive: false,
            run: tables::table1,
            scenarios: tables::table1_scenarios,
        },
        ArtifactSpec {
            name: "fig3a",
            paper_ref: "Fig. 3(a)",
            exclusive: false,
            run: run_fig3a,
            scenarios: scen_fig3a,
        },
        ArtifactSpec {
            name: "fig3b",
            paper_ref: "Fig. 3(b)",
            exclusive: false,
            run: run_fig3b,
            scenarios: scen_fig3b,
        },
        ArtifactSpec {
            name: "fig3c",
            paper_ref: "Fig. 3(c)",
            exclusive: false,
            run: run_fig3c,
            scenarios: scen_fig3c,
        },
        ArtifactSpec {
            name: "fig3d",
            paper_ref: "Fig. 3(d)",
            exclusive: false,
            run: run_fig3d,
            scenarios: scen_fig3d,
        },
        ArtifactSpec {
            name: "fig3f",
            paper_ref: "Fig. 3(f)",
            exclusive: false,
            run: figures::fig3f,
            scenarios: figures::fig3f_scenarios,
        },
        ArtifactSpec {
            name: "fig4a",
            paper_ref: "Fig. 4(a)",
            exclusive: false,
            run: run_fig4a,
            scenarios: scen_fig4a,
        },
        ArtifactSpec {
            name: "fig4b",
            paper_ref: "Fig. 4(b)",
            exclusive: false,
            run: run_fig4b,
            scenarios: scen_fig4b,
        },
        ArtifactSpec {
            name: "fig4c",
            paper_ref: "Fig. 4(c)",
            exclusive: false,
            run: run_fig4c,
            scenarios: scen_fig4c,
        },
        ArtifactSpec {
            name: "fig4d",
            paper_ref: "Fig. 4(d)",
            exclusive: false,
            run: run_fig4d,
            scenarios: scen_fig4d,
        },
        ArtifactSpec {
            name: "fig4e",
            paper_ref: "Fig. 4(e)",
            exclusive: false,
            run: run_fig4e,
            scenarios: scen_fig4e,
        },
        ArtifactSpec {
            name: "fig4f",
            paper_ref: "Fig. 4(f)",
            exclusive: false,
            run: run_fig4f,
            scenarios: scen_fig4f,
        },
        ArtifactSpec {
            name: "tradeoff",
            paper_ref: "trade-off table (ours)",
            exclusive: false,
            run: tables::tradeoff,
            scenarios: tables::tradeoff_scenarios,
        },
        ArtifactSpec {
            name: "inventory",
            paper_ref: "layer inventory (ours)",
            exclusive: false,
            run: run_inventory,
            scenarios: tables::inventory_scenarios,
        },
        ArtifactSpec {
            name: "fault_sweep",
            paper_ref: "fault sweep (ours)",
            exclusive: false,
            run: run_fault_sweep,
            scenarios: tables::fault_sweep_scenarios,
        },
        ArtifactSpec {
            name: "ablation_mapping_scale",
            paper_ref: "ablation A1",
            exclusive: false,
            run: ablations::mapping_scale,
            scenarios: ablations::mapping_scale_scenarios,
        },
        ArtifactSpec {
            name: "ablation_solver",
            paper_ref: "ablation A2",
            exclusive: false,
            run: ablations::solver,
            scenarios: no_scenarios,
        },
        ArtifactSpec {
            name: "ablation_rearrange",
            paper_ref: "ablation A3",
            exclusive: false,
            run: ablations::rearrange,
            scenarios: ablations::rearrange_scenarios,
        },
        ArtifactSpec {
            name: "ablation_bn_recal",
            paper_ref: "ablation A4 (extension)",
            exclusive: false,
            run: ablations::bn_recalibration,
            scenarios: ablations::bn_recalibration_scenarios,
        },
        ArtifactSpec {
            name: "ablation_robustness",
            paper_ref: "ablation A5 (extension)",
            exclusive: false,
            run: ablations::robustness,
            scenarios: ablations::robustness_scenarios,
        },
        ArtifactSpec {
            name: "ablation_approximation",
            paper_ref: "ablation A6 (extension)",
            exclusive: false,
            run: ablations::approximation,
            scenarios: no_scenarios,
        },
        ArtifactSpec {
            name: "map",
            paper_ref: "serving artifact (ours)",
            exclusive: false,
            run: run_map,
            scenarios: scen_map,
        },
        ArtifactSpec {
            name: "perf",
            paper_ref: "solver-performance bench (ours)",
            exclusive: true,
            run: run_perf,
            scenarios: no_scenarios,
        },
        ArtifactSpec {
            name: "solve",
            paper_ref: "batched-solve bench (ours)",
            exclusive: true,
            run: run_solve,
            scenarios: no_scenarios,
        },
        ArtifactSpec {
            name: "serve",
            paper_ref: "serving throughput bench (ours)",
            exclusive: true,
            run: run_serve,
            scenarios: no_scenarios,
        },
        ArtifactSpec {
            name: "surrogate",
            paper_ref: "surrogate fidelity & speedup (ours)",
            exclusive: true,
            run: run_surrogate,
            scenarios: surrogate::surrogate_scenarios,
        },
        ArtifactSpec {
            name: "drift",
            paper_ref: "retention-drift lifecycle (ours)",
            exclusive: true,
            run: drift::drift_sweep,
            scenarios: drift::drift_scenarios,
        },
        ArtifactSpec {
            name: "profile",
            paper_ref: "suite time profile (ours)",
            exclusive: true,
            run: profile::profile,
            scenarios: profile::profile_scenarios,
        },
    ]
}

/// Looks an artifact up by name.
pub fn find(name: &str) -> Option<ArtifactSpec> {
    registry().into_iter().find(|spec| spec.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let specs = registry();
        assert!(specs.len() >= 20, "every table and figure is registered");
        for (i, a) in specs.iter().enumerate() {
            assert!(!a.name.is_empty() && !a.paper_ref.is_empty());
            for b in &specs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate artifact name");
            }
            assert!(find(a.name).is_some());
        }
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn scenario_enumeration_is_deterministic() {
        let ctx = ArtifactCtx::new(ExperimentScale::smoke(), "smoke", 42);
        for spec in registry() {
            let a: Vec<String> = (spec.scenarios)(&ctx)
                .iter()
                .map(Scenario::cache_key)
                .collect();
            let b: Vec<String> = (spec.scenarios)(&ctx)
                .iter()
                .map(Scenario::cache_key)
                .collect();
            assert_eq!(a, b, "{} scenarios unstable", spec.name);
        }
    }
}
