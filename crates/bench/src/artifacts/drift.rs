//! The retention-drift artifact: accuracy-over-time curves under the
//! exponential relaxation model (`results/drift_sweep.csv`) plus the gated
//! mitigation-recovery benchmark (`results/BENCH_drift.json`).
//!
//! The paper's non-ideality analysis is static — device errors are injected
//! once at program time. This artifact extends the low-conductance-states
//! claim along the time axis: every mapped weight is programmed onto a
//! differential conductance pair whose cells relax toward `G_off` with
//! per-cell retention constants ([`xbar_core::ModelDriftState`]), and the
//! sweep advances the retention clock to the horizons where the model-wide
//! mean decay crosses [`DECAY_HORIZONS`], applying one of four maintenance
//! policies at each checkpoint:
//!
//! * `none` — drift accumulates unchecked (the lower bound);
//! * `refresh` — rung 1, program-and-verify rewrite of drifted cells;
//! * `remap` — rung 2, spare-column relocation of the worst columns only;
//! * `ladder` — the serving policy: probe-accuracy drop picks the rung
//!   (refresh → remap+refresh → full re-program), mirroring
//!   `xbar_serve::lifecycle`.
//!
//! Probe accuracy is agreement with the pristine mapped model's predictions
//! over a fixed probe subset of the test split — the same online-detectable
//! signal the serving health sweep uses (no labels needed at runtime). The
//! gate fails the artifact (hence `suite --gate`) when the ladder recovers
//! fewer than [`RECOVERY_FLOOR_PP`] percentage points of probe accuracy
//! over `none` at the [`GATE_DECAY`] equivalent-drift horizon for the
//! channel/filter-pruned model — the sparse network the paper (and this
//! repo's serving default) is about, and the one drift damages most; the
//! unpruned model's recovery is reported informationally (its redundancy
//! caps the unmitigated drop well under the floor).

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::{pct, results_dir, Table};
use crate::runner::map_config;
use crate::scenario::Scenario;
use crate::DatasetKind;
use xbar_core::pipeline::map_to_crossbars;
use xbar_core::{DriftModel, ModelDriftState};
use xbar_data::Split;
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::vgg::VggVariant;
use xbar_nn::{Mode, Sequential};
use xbar_obs::json::Json;
use xbar_prune::PruneMethod;

/// Crossbar size the drift sweep evaluates at (matches the fault sweep).
pub const DRIFT_SIZE: usize = 16;

/// Fastest retention time constant, seconds (minutes-scale tail).
pub const DRIFT_TAU_FAST: f64 = 60.0;

/// Slowest retention time constant, seconds (~1 month).
pub const DRIFT_TAU_SLOW: f64 = 3.0e6;

/// Mean-decay fractions defining the swept time horizons.
pub const DECAY_HORIZONS: [f64; 5] = [0.01, 0.02, 0.05, 0.10, 0.20];

/// The equivalent-drift horizon the recovery gate applies at.
pub const GATE_DECAY: f64 = 0.05;

/// Minimum probe-accuracy recovery (percentage points) of the `ladder`
/// policy over `none` at [`GATE_DECAY`], gated on the channel/filter-pruned
/// model (see the module docs for why the unpruned model is informational).
pub const RECOVERY_FLOOR_PP: f64 = 20.0;

/// The scenario the recovery gate applies to.
pub const GATE_METHOD: PruneMethod = PruneMethod::ChannelFilter;

/// Probe-set size (capped by the test split).
pub const PROBE_COUNT: usize = 256;

/// Rung-1 program-and-verify tolerance: cells past this decay fraction are
/// rewritten.
const REFRESH_TOL: f64 = 0.02;

/// Rung-2 column threshold: columns past this mean decay are relocated.
const REMAP_COL_DECAY: f64 = 0.10;

/// Probe-accuracy drop thresholds of the `ladder` policy, mirroring the
/// serving defaults (`xbar_serve::lifecycle::LifecycleConfig`).
const LADDER_REFRESH_DROP: f64 = 0.02;
const LADDER_REMAP_DROP: f64 = 0.10;
const LADDER_RELOAD_DROP: f64 = 0.30;

/// The pruning pair of the sweep: unpruned vs channel/filter-pruned.
const METHODS: [PruneMethod; 2] = [PruneMethod::None, PruneMethod::ChannelFilter];

/// Maintenance policies applied at every horizon checkpoint.
const POLICIES: [&str; 4] = ["none", "refresh", "remap", "ladder"];

/// The scenarios the drift sweep trains.
pub fn drift_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    METHODS
        .iter()
        .map(|&m| {
            Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, m, ctx.scale)
                .with_seed(ctx.seed)
        })
        .collect()
}

/// Argmax classes of `model` over the first `limit` test images.
fn predict_classes(
    model: &mut Sequential,
    data: DataRef<'_>,
    limit: usize,
) -> Result<Vec<usize>, String> {
    let n = limit.min(data.len());
    let mut classes = Vec::with_capacity(n);
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(64) {
        let (images, _) = data.gather(chunk);
        let logits = model
            .forward(&images, Mode::Eval)
            .map_err(|e| format!("probe forward: {e}"))?;
        let num_classes = logits.shape()[1];
        for row in logits.as_slice().chunks(num_classes) {
            let class = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            classes.push(class);
        }
    }
    Ok(classes)
}

/// Fraction of probes on which `model` agrees with the pristine reference.
fn probe_agreement(
    model: &mut Sequential,
    data: DataRef<'_>,
    reference: &[usize],
) -> Result<f64, String> {
    let classes = predict_classes(model, data, reference.len())?;
    let agree = classes
        .iter()
        .zip(reference)
        .filter(|(a, b)| a == b)
        .count();
    Ok(agree as f64 / reference.len().max(1) as f64)
}

/// One horizon checkpoint of one (method, policy) trajectory.
struct Checkpoint {
    decay_target: f64,
    horizon_s: f64,
    pre_decay: f64,
    probe_acc: f64,
    test_acc: f64,
    refreshed: usize,
    remapped: usize,
}

/// Advances one drift trajectory through every horizon under `policy`,
/// measuring post-maintenance probe agreement and test accuracy at each.
fn run_policy(
    policy: &str,
    pristine: &ModelDriftState,
    horizons: &[(f64, f64)],
    probes: DataRef<'_>,
    reference: &[usize],
    test: DataRef<'_>,
) -> Result<Vec<Checkpoint>, String> {
    let mut state = pristine.clone();
    let mut salt = 0u64;
    let mut points = Vec::with_capacity(horizons.len());
    for &(decay_target, horizon_s) in horizons {
        state.advance_time(horizon_s - state.elapsed());
        let pre_decay = state.mean_decay();
        let (refreshed, remapped) = match policy {
            "none" => (0, 0),
            "refresh" => (state.refresh(REFRESH_TOL), 0),
            "remap" => {
                salt += 1;
                (0, state.remap_worst_columns(REMAP_COL_DECAY, salt))
            }
            "ladder" => {
                let pre_probe = probe_agreement(&mut state.snapshot_model(), probes, reference)?;
                let drop = 1.0 - pre_probe;
                if drop > LADDER_RELOAD_DROP {
                    (state.reprogram_all(), 0)
                } else if drop > LADDER_REMAP_DROP {
                    salt += 1;
                    let cols = state.remap_worst_columns(REMAP_COL_DECAY, salt);
                    (state.refresh(REFRESH_TOL), cols)
                } else if drop > LADDER_REFRESH_DROP {
                    (state.refresh(REFRESH_TOL), 0)
                } else {
                    (0, 0)
                }
            }
            other => return Err(format!("unknown drift policy {other:?}")),
        };
        let mut snapshot = state.snapshot_model();
        let probe_acc = probe_agreement(&mut snapshot, probes, reference)?;
        let test_acc = evaluate(&mut snapshot, test, 64)
            .map_err(|e| format!("drift evaluation ({policy}): {e}"))?;
        points.push(Checkpoint {
            decay_target,
            horizon_s,
            pre_decay,
            probe_acc,
            test_acc,
            refreshed,
            remapped,
        });
    }
    Ok(points)
}

/// The drift sweep: time horizons × maintenance policies for the unpruned
/// and channel/filter-pruned models, plus the gated recovery benchmark.
///
/// # Errors
///
/// Fails on pipeline errors, or when the ladder's probe-accuracy recovery
/// at [`GATE_DECAY`] falls below [`RECOVERY_FLOOR_PP`] (after writing
/// `BENCH_drift.json`, so the numbers are inspectable).
pub fn drift_sweep(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let drift = DriftModel::new(DRIFT_TAU_FAST, DRIFT_TAU_SLOW);
    let horizons: Vec<(f64, f64)> = DECAY_HORIZONS
        .iter()
        .map(|&f| (f, drift.horizon_for_decay(f)))
        .collect();

    let mut table = Table::new(
        format!(
            "Retention-drift sweep ({DRIFT_SIZE}x{DRIFT_SIZE}, tau {DRIFT_TAU_FAST:.0}..{DRIFT_TAU_SLOW:.0}s)"
        ),
        &[
            "Method",
            "Policy",
            "Target decay",
            "Horizon (s)",
            "Mean decay",
            "Probe acc (%)",
            "Test acc (%)",
            "Refreshed cells",
            "Remapped cols",
        ],
    );
    let mut method_entries = Vec::new();
    let mut gate_recovery_pp = f64::NAN;
    for sc in drift_scenarios(ctx) {
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let mut cfg = map_config(&tm, DRIFT_SIZE, ctx.seed);
        cfg.params.drift = drift;
        let (mut mapped, _) =
            map_to_crossbars(&tm.model, &cfg).map_err(|e| format!("drift mapping: {e}"))?;
        let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
            .map_err(|e| format!("dataset well-formed: {e}"))?;
        let baseline_acc =
            evaluate(&mut mapped, test, 64).map_err(|e| format!("baseline evaluation: {e}"))?;
        let reference = predict_classes(&mut mapped, test, PROBE_COUNT)?;
        let pristine = ModelDriftState::new(&mapped, &cfg.params, ctx.seed)?;

        let method = tm.scenario.method.to_string();
        let method_key = method.replace('/', "");
        let mut gate_probe = std::collections::BTreeMap::new();
        let mut policy_entries = Vec::new();
        for policy in POLICIES {
            let points = run_policy(policy, &pristine, &horizons, test, &reference, test)?;
            let mut point_entries = Vec::new();
            for p in &points {
                if (p.decay_target - GATE_DECAY).abs() < 1e-12 {
                    gate_probe.insert(policy, p.probe_acc);
                }
                table.push_row(vec![
                    method.clone(),
                    policy.to_string(),
                    format!("{:.2}", p.decay_target),
                    format!("{:.0}", p.horizon_s),
                    format!("{:.4}", p.pre_decay),
                    pct(p.probe_acc),
                    pct(p.test_acc),
                    p.refreshed.to_string(),
                    p.remapped.to_string(),
                ]);
                point_entries.push(Json::Obj(vec![
                    ("decay_target".into(), Json::Num(p.decay_target)),
                    ("horizon_s".into(), Json::Num(p.horizon_s)),
                    ("mean_decay".into(), Json::Num(p.pre_decay)),
                    ("probe_acc".into(), Json::Num(p.probe_acc)),
                    ("test_acc".into(), Json::Num(p.test_acc)),
                    ("refreshed_cells".into(), Json::Num(p.refreshed as f64)),
                    ("remapped_columns".into(), Json::Num(p.remapped as f64)),
                ]));
            }
            policy_entries.push(Json::Obj(vec![
                ("policy".into(), Json::Str(policy.into())),
                ("points".into(), Json::Arr(point_entries)),
            ]));
        }
        let probe_none = gate_probe.get("none").copied().unwrap_or(f64::NAN);
        let probe_ladder = gate_probe.get("ladder").copied().unwrap_or(f64::NAN);
        let recovery_pp = 100.0 * (probe_ladder - probe_none);
        if tm.scenario.method == GATE_METHOD {
            gate_recovery_pp = recovery_pp;
        }
        eprintln!(
            "[drift] {method}: at {GATE_DECAY:.0e} decay horizon probe acc none {:.3}, \
             ladder {:.3} (+{recovery_pp:.1}pp)",
            probe_none, probe_ladder
        );
        out.key(format!("baseline_acc_{method_key}"), baseline_acc);
        out.key(format!("probe_none_{method_key}"), probe_none);
        out.key(format!("probe_ladder_{method_key}"), probe_ladder);
        out.key(format!("recovery_pp_{method_key}"), recovery_pp);
        method_entries.push(Json::Obj(vec![
            ("method".into(), Json::Str(method.clone())),
            ("baseline_acc".into(), Json::Num(baseline_acc)),
            ("probe_count".into(), Json::Num(reference.len() as f64)),
            ("gate_probe_none".into(), Json::Num(probe_none)),
            ("gate_probe_ladder".into(), Json::Num(probe_ladder)),
            ("gate_recovery_pp".into(), Json::Num(recovery_pp)),
            ("policies".into(), Json::Arr(policy_entries)),
        ]));
    }
    ctx.emit(&table, &mut out, "drift_sweep")?;

    let json = Json::Obj(vec![
        ("bin".into(), Json::Str("drift".into())),
        ("scale".into(), Json::Str(ctx.scale_name.into())),
        ("seed".into(), Json::Num(ctx.seed as f64)),
        ("size".into(), Json::Num(DRIFT_SIZE as f64)),
        ("tau_fast".into(), Json::Num(DRIFT_TAU_FAST)),
        ("tau_slow".into(), Json::Num(DRIFT_TAU_SLOW)),
        ("gate_decay".into(), Json::Num(GATE_DECAY)),
        ("gate_method".into(), Json::Str(GATE_METHOD.to_string())),
        ("recovery_floor_pp".into(), Json::Num(RECOVERY_FLOOR_PP)),
        ("gate_recovery_pp".into(), Json::Num(gate_recovery_pp)),
        ("methods".into(), Json::Arr(method_entries)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create results directory: {e}"))?;
    let path = dir.join("BENCH_drift.json");
    std::fs::write(&path, json.to_json() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    if !ctx.quiet {
        println!(
            "drift mitigation recovery at the {GATE_DECAY:.0e} horizon: {gate_recovery_pp:.1}pp \
             (floor {RECOVERY_FLOOR_PP:.0}pp) -> {}",
            path.display()
        );
    }
    out.outputs.push(path);
    out.key("drift_recovery_pp", gate_recovery_pp);

    if !gate_recovery_pp.is_finite() || gate_recovery_pp < RECOVERY_FLOOR_PP {
        return Err(format!(
            "drift mitigation ladder recovers {gate_recovery_pp:.1}pp of probe accuracy for the \
             {GATE_METHOD} model at the {GATE_DECAY:.0e} equivalent-drift horizon, below the \
             {RECOVERY_FLOOR_PP:.0}pp floor"
        ));
    }
    Ok(out)
}
