//! Figure-shaped artifacts: the paper's **Fig. 3** accuracy/NF panels, the
//! **Fig. 3(f)** weight heatmaps, and the **Fig. 4** mitigation panels
//! (R transformation and WCT). Moved out of the standalone binaries so the
//! suite orchestrator can run them as library calls, one panel per artifact.

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::{pct, results_dir, Table};
use crate::runner::{crossbar_accuracy_avg, map_config, DEFAULT_REPS, SIZES};
use crate::scenario::Scenario;
use crate::{DatasetKind, TrainedModel};
use xbar_core::heatmap::{column_adjacency_score, Heatmap};
use xbar_core::rearrange::{ColumnOrder, Rearrangement};
use xbar_core::wct::{apply_wct, WctConfig};
use xbar_data::{Dataset, Split};
use xbar_nn::train::{evaluate, DataRef, WeightConstraint};
use xbar_nn::vgg::VggVariant;
use xbar_prune::transform::transform;
use xbar_prune::unroll::unrolled_matrices;
use xbar_prune::PruneMethod;

/// The four pruning methods Fig. 3(a)/(c) compare.
const FIG3_METHODS: [PruneMethod; 4] = [
    PruneMethod::None,
    PruneMethod::ChannelFilter,
    PruneMethod::XbarColumn,
    PruneMethod::XbarRow,
];

/// The C/F sparsities Fig. 3(b) sweeps.
const FIG3B_SPARSITIES: [f64; 3] = [0.5, 0.65, 0.8];

/// The scenarios a Fig. 3 panel trains.
pub fn fig3_scenarios(ctx: &ArtifactCtx, panel: &str) -> Vec<Scenario> {
    match panel {
        "a" | "c" => {
            let variant = if panel == "a" {
                VggVariant::Vgg11
            } else {
                VggVariant::Vgg16
            };
            FIG3_METHODS
                .into_iter()
                .map(|method| {
                    Scenario::new(variant, DatasetKind::Cifar10Like, method, ctx.scale)
                        .with_seed(ctx.seed)
                })
                .collect()
        }
        "b" => FIG3B_SPARSITIES
            .into_iter()
            .map(|s| {
                Scenario::new(
                    VggVariant::Vgg11,
                    DatasetKind::Cifar10Like,
                    PruneMethod::ChannelFilter,
                    ctx.scale,
                )
                .with_seed(ctx.seed)
                .with_sparsity(s)
            })
            .collect(),
        "d" => [PruneMethod::None, PruneMethod::ChannelFilter]
            .into_iter()
            .map(|method| {
                Scenario::new(
                    VggVariant::Vgg11,
                    DatasetKind::Cifar10Like,
                    method,
                    ctx.scale,
                )
                .with_seed(ctx.seed)
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Regenerates one panel of the paper's **Fig. 3**:
///
/// * (a) accuracy vs crossbar size, VGG11/CIFAR10-like, four methods;
/// * (b) accuracy vs crossbar size for C/F at s ∈ {0.5, 0.65, 0.8};
/// * (c) as (a) for VGG16;
/// * (d) average NF, unpruned vs C/F, 32×32 → 64×64.
pub fn fig3_panel(ctx: &ArtifactCtx, panel: &str) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    match panel {
        "a" | "c" => {
            let variant = if panel == "a" {
                VggVariant::Vgg11
            } else {
                VggVariant::Vgg16
            };
            let mut table = Table::new(
                format!(
                    "Fig 3({panel}): accuracy vs crossbar size, {variant}/CIFAR10-like (s = 0.8)"
                ),
                &[
                    "Method",
                    "Software (%)",
                    "16x16 (%)",
                    "32x32 (%)",
                    "64x64 (%)",
                ],
            );
            for method in FIG3_METHODS {
                let sc = Scenario::new(variant, DatasetKind::Cifar10Like, method, ctx.scale)
                    .with_seed(ctx.seed);
                let data = sc.dataset();
                let tm = sc.train_model_cached(&data);
                let mut row = vec![method.to_string(), pct(tm.software_accuracy)];
                for size in SIZES {
                    let cfg = map_config(&tm, size, ctx.seed);
                    let (acc, _) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
                    xbar_obs::event!(
                        "progress",
                        panel = format!("fig3{panel}"),
                        method = method.to_string(),
                        size = size,
                        accuracy = acc
                    );
                    out.key(format!("{method}/{size}x{size}"), acc);
                    row.push(pct(acc));
                }
                table.push_row(row);
            }
            ctx.emit(&table, &mut out, &format!("fig3{panel}"))?;
        }
        "b" => {
            let mut table = Table::new(
                "Fig 3(b): accuracy vs crossbar size for C/F sparsities, VGG11/CIFAR10-like",
                &[
                    "Sparsity",
                    "Software (%)",
                    "16x16 (%)",
                    "32x32 (%)",
                    "64x64 (%)",
                ],
            );
            for s in FIG3B_SPARSITIES {
                let sc = Scenario::new(
                    VggVariant::Vgg11,
                    DatasetKind::Cifar10Like,
                    PruneMethod::ChannelFilter,
                    ctx.scale,
                )
                .with_seed(ctx.seed)
                .with_sparsity(s);
                let data = sc.dataset();
                let tm = sc.train_model_cached(&data);
                let mut row = vec![format!("{s:.2}"), pct(tm.software_accuracy)];
                for size in SIZES {
                    let cfg = map_config(&tm, size, ctx.seed);
                    let (acc, _) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
                    xbar_obs::event!(
                        "progress",
                        panel = "fig3b",
                        sparsity = s,
                        size = size,
                        accuracy = acc
                    );
                    out.key(format!("s{s:.2}/{size}x{size}"), acc);
                    row.push(pct(acc));
                }
                table.push_row(row);
            }
            ctx.emit(&table, &mut out, "fig3b")?;
        }
        "d" => {
            let mut table = Table::new(
                "Fig 3(d): average NF, unpruned vs C/F pruned VGG11/CIFAR10-like",
                &["Method", "NF @ 32x32", "NF @ 64x64", "Growth (x)"],
            );
            for method in [PruneMethod::None, PruneMethod::ChannelFilter] {
                let sc = Scenario::new(
                    VggVariant::Vgg11,
                    DatasetKind::Cifar10Like,
                    method,
                    ctx.scale,
                )
                .with_seed(ctx.seed);
                let data = sc.dataset();
                let tm = sc.train_model_cached(&data);
                let mut nfs = Vec::new();
                for size in [32usize, 64] {
                    let cfg = map_config(&tm, size, ctx.seed);
                    let (_, report) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
                    nfs.push(report.mean_nf());
                }
                xbar_obs::event!(
                    "progress",
                    panel = "fig3d",
                    method = method.to_string(),
                    nf_32 = nfs[0],
                    nf_64 = nfs[1]
                );
                out.key(format!("{method}/nf_32"), nfs[0]);
                out.key(format!("{method}/nf_64"), nfs[1]);
                table.push_row(vec![
                    method.to_string(),
                    format!("{:.4}", nfs[0]),
                    format!("{:.4}", nfs[1]),
                    format!("{:.2}", nfs[1] / nfs[0].max(1e-12)),
                ]);
            }
            ctx.emit(&table, &mut out, "fig3d")?;
        }
        other => return Err(format!("unknown fig3 panel {other:?}; supported: a b c d")),
    }
    Ok(out)
}

/// The scenario the Fig. 3(f) heatmaps train.
pub fn fig3f_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    vec![Scenario::new(
        VggVariant::Vgg16,
        DatasetKind::Cifar10Like,
        PruneMethod::ChannelFilter,
        ctx.scale,
    )
    .with_seed(ctx.seed)]
}

/// Regenerates the paper's **Fig. 3(f)**: weight-magnitude heatmaps of the
/// 3rd and 5th conv layers of the C/F-pruned VGG16 model before/after the R
/// transformation, plus the column-adjacency clustering score table.
pub fn fig3f(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let sc = fig3f_scenarios(ctx).remove(0);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let unrolled = unrolled_matrices(&tm.model);
    let mut table = Table::new(
        "Fig 3(f): column clustering score before/after R (lower = more clustered)",
        &[
            "Conv layer",
            "Score before R",
            "Score after R (centre-out)",
            "Score after R (ascending)",
            "Best reduction (%)",
        ],
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create results dir: {e}"))?;
    // The paper shows the 3rd and 5th conv layers (1-indexed).
    for conv_ordinal in [3usize, 5] {
        let ul = &unrolled[conv_ordinal - 1];
        // Compact with T first, as the mapping pipeline does.
        let t = transform(&ul.matrix, PruneMethod::ChannelFilter, 32, 32);
        let panel = &t.panels[0].matrix;
        let r = Rearrangement::compute(panel, ColumnOrder::CenterOut, 32);
        let after = r.apply(panel);
        let before_score = column_adjacency_score(panel);
        let after_score = column_adjacency_score(&after);
        // The adjacency metric is minimised by a monotone ordering, so also
        // report the ascending score — the quantitative optimum.
        let asc = Rearrangement::compute(panel, ColumnOrder::Ascending, 32);
        let asc_score = column_adjacency_score(&asc.apply(panel));
        for (tag, matrix) in [("before", panel), ("after", &after)] {
            let hm = Heatmap::from_matrix(matrix, 128, 128);
            let path = dir.join(format!("fig3f_conv{conv_ordinal}_{tag}_r.csv"));
            std::fs::write(&path, hm.to_csv())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            if !ctx.quiet {
                println!("[heatmap written to {}]", path.display());
            }
            out.outputs.push(path);
        }
        out.key(format!("conv{conv_ordinal}/score_before"), before_score);
        out.key(format!("conv{conv_ordinal}/score_after"), after_score);
        table.push_row(vec![
            format!("conv{conv_ordinal}"),
            format!("{before_score:.5}"),
            format!("{after_score:.5}"),
            format!("{asc_score:.5}"),
            format!(
                "{:.1}",
                100.0 * (1.0 - after_score.min(asc_score) / before_score.max(1e-12))
            ),
        ]);
    }
    ctx.emit(&table, &mut out, "fig3f_scores")?;
    Ok(out)
}

/// The (variant, dataset) behind each Fig. 4 R-transformation panel.
fn fig4_r_case(panel: &str) -> Option<(VggVariant, DatasetKind)> {
    match panel {
        "a" => Some((VggVariant::Vgg11, DatasetKind::Cifar10Like)),
        "b" => Some((VggVariant::Vgg16, DatasetKind::Cifar10Like)),
        "c" => Some((VggVariant::Vgg11, DatasetKind::Cifar100Like)),
        "d" => Some((VggVariant::Vgg16, DatasetKind::Cifar100Like)),
        _ => None,
    }
}

/// The dataset behind each Fig. 4 WCT panel.
fn fig4_wct_case(panel: &str) -> Option<DatasetKind> {
    match panel {
        "e" => Some(DatasetKind::Cifar10Like),
        "f" => Some(DatasetKind::Cifar100Like),
        _ => None,
    }
}

/// The scenarios a Fig. 4 panel trains.
pub fn fig4_scenarios(ctx: &ArtifactCtx, panel: &str) -> Vec<Scenario> {
    let (variant, dataset) = match (fig4_r_case(panel), fig4_wct_case(panel)) {
        (Some((v, d)), _) => (v, d),
        (None, Some(d)) => (VggVariant::Vgg11, d),
        (None, None) => return Vec::new(),
    };
    [PruneMethod::None, PruneMethod::ChannelFilter]
        .into_iter()
        .map(|method| Scenario::new(variant, dataset, method, ctx.scale).with_seed(ctx.seed))
        .collect()
}

fn accuracy_row(
    out: &mut ArtifactOutput,
    label: &str,
    tm: &TrainedModel,
    data: &Dataset,
    seed: u64,
    rearrange: Option<ColumnOrder>,
    scale_override: Option<xbar_sim::MappingScale>,
) -> Vec<String> {
    let mut row = vec![label.to_string(), pct(tm.software_accuracy)];
    for size in SIZES {
        let mut cfg = map_config(tm, size, seed);
        cfg.rearrange = rearrange;
        if let Some(s) = scale_override {
            cfg.scale = s;
        }
        let (acc, _) = crossbar_accuracy_avg(tm, data, &cfg, DEFAULT_REPS);
        xbar_obs::event!("progress", model = label, size = size, accuracy = acc);
        out.key(format!("{label}/{size}x{size}"), acc);
        row.push(pct(acc));
    }
    row
}

/// Regenerates one panel of the paper's **Fig. 4**:
///
/// * (a)–(d) unpruned vs C/F vs C/F + R — VGG11/VGG16 on both datasets;
/// * (e)–(f) unpruned vs C/F vs WCT + C/F — VGG11 on both datasets.
pub fn fig4_panel(ctx: &ArtifactCtx, panel: &str) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let seed = ctx.seed;
    if let Some((variant, dataset)) = fig4_r_case(panel) {
        let mut table = Table::new(
            format!(
                "Fig 4({panel}): R transformation, {variant}/{} (s = {})",
                dataset.name(),
                dataset.paper_sparsity()
            ),
            &[
                "Model",
                "Software (%)",
                "16x16 (%)",
                "32x32 (%)",
                "64x64 (%)",
            ],
        );
        let unpruned =
            Scenario::new(variant, dataset, PruneMethod::None, ctx.scale).with_seed(seed);
        let data = unpruned.dataset();
        let tm_unpruned = unpruned.train_model_cached(&data);
        let row = accuracy_row(&mut out, "unpruned", &tm_unpruned, &data, seed, None, None);
        table.push_row(row);
        let cf =
            Scenario::new(variant, dataset, PruneMethod::ChannelFilter, ctx.scale).with_seed(seed);
        let tm_cf = cf.train_model_cached(&data);
        let row = accuracy_row(&mut out, "C/F", &tm_cf, &data, seed, None, None);
        table.push_row(row);
        let row = accuracy_row(
            &mut out,
            "C/F + R",
            &tm_cf,
            &data,
            seed,
            // The paper's R layout (Fig. 3(f)): light columns centre, dark at
            // the peripheries. See ablation A3 for the other orderings.
            Some(ColumnOrder::CenterOut),
            None,
        );
        table.push_row(row);
        ctx.emit(&table, &mut out, &format!("fig4{panel}"))?;
        return Ok(out);
    }
    let Some(dataset) = fig4_wct_case(panel) else {
        return Err(format!(
            "unknown fig4 panel {panel:?}; supported: a b c d e f"
        ));
    };
    let mut table = Table::new(
        format!(
            "Fig 4({panel}): WCT, VGG11/{} (s = {})",
            dataset.name(),
            dataset.paper_sparsity()
        ),
        &[
            "Model",
            "Software (%)",
            "16x16 (%)",
            "32x32 (%)",
            "64x64 (%)",
        ],
    );
    let unpruned =
        Scenario::new(VggVariant::Vgg11, dataset, PruneMethod::None, ctx.scale).with_seed(seed);
    let data = unpruned.dataset();
    let tm_unpruned = unpruned.train_model_cached(&data);
    let row = accuracy_row(&mut out, "unpruned", &tm_unpruned, &data, seed, None, None);
    table.push_row(row);
    let cf = Scenario::new(
        VggVariant::Vgg11,
        dataset,
        PruneMethod::ChannelFilter,
        ctx.scale,
    )
    .with_seed(seed);
    let tm_cf = cf.train_model_cached(&data);
    let row = accuracy_row(&mut out, "C/F", &tm_cf, &data, seed, None, None);
    table.push_row(row);
    // WCT on top of the C/F model: clamp + 2-epoch constrained retrain,
    // then map with the fixed pre-clamp scale.
    let mut tm_wct = tm_cf.clone();
    let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train))
        .map_err(|e| format!("dataset well-formed: {e}"))?;
    let mut wct_cfg = WctConfig::default();
    wct_cfg.train.batch_size = ctx.scale.batch_size;
    if let Ok(q) = std::env::var("XBAR_WCT_Q") {
        wct_cfg.quantile = q
            .parse()
            .map_err(|e| format!("XBAR_WCT_Q must be a float: {e}"))?;
    }
    let constraint: Option<&dyn WeightConstraint> =
        tm_wct.masks.as_ref().map(|m| m as &dyn WeightConstraint);
    let outcome = apply_wct(&mut tm_wct.model, train_ref, &wct_cfg, constraint)
        .map_err(|e| format!("WCT trains: {e}"))?;
    let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
        .map_err(|e| format!("dataset well-formed: {e}"))?;
    tm_wct.software_accuracy = evaluate(&mut tm_wct.model, test_ref, 64)
        .map_err(|e| format!("evaluation shape-safe: {e}"))?;
    xbar_obs::event!(
        "wct_applied",
        w_cut = outcome.w_cut,
        pre_clamp_abs_max = outcome.pre_clamp_abs_max,
        software_acc = tm_wct.software_accuracy
    );
    let row = accuracy_row(
        &mut out,
        "WCT + C/F",
        &tm_wct,
        &data,
        seed,
        None,
        Some(outcome.mapping_scale()),
    );
    table.push_row(row);
    ctx.emit(&table, &mut out, &format!("fig4{panel}"))?;
    Ok(out)
}
