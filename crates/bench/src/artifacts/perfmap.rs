//! The solver-performance benchmark (`results/BENCH_map.json`) and the
//! serving-artifact build (`results/model.xbarmdl`), moved out of the `perf`
//! and `map` binaries so the suite orchestrator can run them as library
//! calls.

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::{pct, results_dir, Table};
use crate::runner::map_config;
use crate::scenario::Scenario;
use crate::DatasetKind;
use std::path::PathBuf;
use std::time::Instant;
use xbar_core::pipeline::{map_to_crossbars, MapConfig, MapReport};
use xbar_core::{save_artifact_to_file, ArtifactMeta};
use xbar_data::Split;
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::vgg::{VggConfig, VggVariant};
use xbar_nn::Sequential;
use xbar_obs::json::Json;
use xbar_obs::metrics::counter_value;
use xbar_obs::names;
use xbar_prune::PruneMethod;
use xbar_sim::params::CrossbarParams;
use xbar_sim::CacheMode;

/// What the serving-artifact build maps and where it writes the artifact.
#[derive(Debug, Clone)]
pub struct MapArtifactOptions {
    /// Network variant.
    pub variant: VggVariant,
    /// Dataset.
    pub dataset: DatasetKind,
    /// Pruning method.
    pub method: PruneMethod,
    /// Crossbar size.
    pub size: usize,
    /// Artifact path (`results/model.xbarmdl` when `None`).
    pub out: Option<PathBuf>,
}

impl Default for MapArtifactOptions {
    fn default() -> Self {
        MapArtifactOptions {
            variant: VggVariant::Vgg11,
            dataset: DatasetKind::Cifar10Like,
            method: PruneMethod::ChannelFilter,
            size: 32,
            out: None,
        }
    }
}

/// The scenario the artifact build trains.
pub fn map_artifact_scenarios(ctx: &ArtifactCtx, opts: &MapArtifactOptions) -> Vec<Scenario> {
    vec![Scenario::new(opts.variant, opts.dataset, opts.method, ctx.scale).with_seed(ctx.seed)]
}

/// Trains (with disk cache) a scenario, maps it onto non-ideal crossbars,
/// and persists the resulting `W'` network as an `XBARMDL1` artifact for
/// `xbar-serve`.
pub fn map_artifact(
    ctx: &ArtifactCtx,
    opts: &MapArtifactOptions,
) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let artifact_path = opts
        .out
        .clone()
        .unwrap_or_else(|| results_dir().join("model.xbarmdl"));
    let sc = map_artifact_scenarios(ctx, opts).remove(0);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let cfg = map_config(&tm, opts.size, ctx.seed);
    let (mut noisy, report) =
        map_to_crossbars(&tm.model, &cfg).map_err(|e| format!("mapping pipeline: {e}"))?;
    let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
        .map_err(|e| format!("dataset well-formed: {e}"))?;
    let crossbar_accuracy =
        evaluate(&mut noisy, test, 64).map_err(|e| format!("evaluation shape-safe: {e}"))?;

    let (variant, dataset, method, size) = (opts.variant, opts.dataset, opts.method, opts.size);
    let label = format!(
        "{variant} {} {method} s={:.1} {size}x{size}",
        dataset.name(),
        sc.sparsity
    );
    let mut meta = ArtifactMeta::from_mapping(label, &cfg, &report);
    meta.software_accuracy = Some(tm.software_accuracy);
    meta.crossbar_accuracy = Some(crossbar_accuracy);
    if let Some(dir) = artifact_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create artifact directory: {e}"))?;
    }
    save_artifact_to_file(&mut noisy, &meta, &artifact_path)
        .map_err(|e| format!("write artifact: {e}"))?;

    let mut table = Table::new(
        "Mapped-model artifact",
        &[
            "Network",
            "Dataset",
            "Method",
            "Crossbar",
            "Software acc (%)",
            "Crossbar acc (%)",
            "Mean NF",
            "Artifact",
        ],
    );
    table.push_row(vec![
        variant.to_string(),
        dataset.name().to_string(),
        method.to_string(),
        format!("{size}x{size}"),
        pct(tm.software_accuracy),
        pct(crossbar_accuracy),
        format!("{:.4}", report.mean_nf()),
        artifact_path.display().to_string(),
    ]);
    ctx.emit(&table, &mut out, "map")?;
    if !ctx.quiet {
        // Scripts (CI smoke, demos) parse this line for the artifact path.
        println!("artifact written to {}", artifact_path.display());
    }
    out.outputs.push(artifact_path);
    out.key("software_acc", tm.software_accuracy);
    out.key("crossbar_acc", crossbar_accuracy);
    Ok(out)
}

/// Pools every synaptic weight of the mapped model for bitwise comparison.
fn synaptic_weights(model: &Sequential) -> Vec<f32> {
    let mut model = model.clone();
    let mut out = Vec::new();
    for p in model.params_mut() {
        if p.kind.is_synaptic() {
            out.extend_from_slice(p.value.as_slice());
        }
    }
    out
}

fn timed_map(model: &Sequential, cfg: &MapConfig) -> Result<(f64, Sequential, MapReport), String> {
    let start = Instant::now();
    let (mapped, report) =
        map_to_crossbars(model, cfg).map_err(|e| format!("mapping pipeline: {e}"))?;
    Ok((start.elapsed().as_secs_f64(), mapped, report))
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Solver-performance benchmark: cold vs warm-started vs cached mapping of a
/// width-scaled VGG11, written to `results/BENCH_map.json`.
///
/// Toggles the process-global solve-cache mode, so it must not share the
/// process with concurrent mapping work — the registry marks it `exclusive`.
///
/// # Errors
///
/// Fails if cached/warm mapping diverges bitwise from the cold mapping or if
/// the cached re-map speedup falls below the 1.05× target. (The target was
/// 1.5× until cold mapping itself was pipelined over the work-stealing
/// thread pool and the solver vectorized — the cache's job is to never lose
/// to a from-scratch solve, and its relative margin legitimately shrank as
/// the from-scratch path got faster; at smoke scale fixed mapping overhead
/// dominates and the margin is thinnest.)
pub fn perf(ctx: &ArtifactCtx, size: usize) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let width = ctx.scale.width;
    let seed = ctx.seed;

    let model = VggConfig::new(VggVariant::Vgg11, 10)
        .width_multiplier(width)
        .build(seed);
    let mut params = CrossbarParams::with_size(size);
    params.sigma_variation = 0.05;
    let cfg = MapConfig {
        params,
        seed,
        ..Default::default()
    };

    // Cold: no caching, every tile solved from the cold initial guess.
    xbar_sim::set_solve_cache_mode(CacheMode::Off);
    let cold = timed_map(&model, &cfg);
    // Restore the default mode before propagating any error.
    let (cold_s, cold_model, cold_report) = match cold {
        Ok(v) => v,
        Err(e) => {
            xbar_sim::set_solve_cache_mode(CacheMode::Full);
            return Err(e);
        }
    };
    let cold_weights = synaptic_weights(&cold_model);
    eprintln!(
        "[perf] cold map: {cold_s:.3}s, {} solver sweeps",
        cold_report.solver_iterations()
    );

    // Populate, then replay from cache: the repeated-sweep workload.
    xbar_sim::set_solve_cache_mode(CacheMode::Full);
    xbar_sim::clear_solve_cache();
    let (h0, m0) = (
        counter_value(names::SIM_SOLVE_CACHE_HITS),
        counter_value(names::SIM_SOLVE_CACHE_MISSES),
    );
    let (populate_s, _, _) = timed_map(&model, &cfg)?;
    let (cached_s, cached_model, cached_report) = timed_map(&model, &cfg)?;
    let hits = counter_value(names::SIM_SOLVE_CACHE_HITS) - h0;
    let misses = counter_value(names::SIM_SOLVE_CACHE_MISSES) - m0;
    eprintln!("[perf] cached re-map: {cached_s:.3}s ({hits} hits / {misses} misses)");

    // Warm-started: each solve verifies the cached voltages in ~1 sweep.
    xbar_sim::set_solve_cache_mode(CacheMode::Seed);
    let warm = timed_map(&model, &cfg);
    xbar_sim::set_solve_cache_mode(CacheMode::Full);
    let (warm_s, warm_model, warm_report) = warm?;
    eprintln!(
        "[perf] warm re-map: {warm_s:.3}s, {} solver sweeps",
        warm_report.solver_iterations()
    );

    let bit_identical_cached = bits_equal(&cold_weights, &synaptic_weights(&cached_model));
    let bit_identical_warm = bits_equal(&cold_weights, &synaptic_weights(&warm_model));
    let speedup_cached = cold_s / cached_s.max(1e-12);
    let speedup_warm = cold_s / warm_s.max(1e-12);

    let json = Json::Obj(vec![
        ("bin".into(), Json::Str("perf".into())),
        ("scale".into(), Json::Str(ctx.scale_name.into())),
        ("network".into(), Json::Str("vgg11".into())),
        ("width_multiplier".into(), Json::Num(width)),
        ("crossbar_size".into(), Json::Num(size as f64)),
        ("seed".into(), Json::Num(seed as f64)),
        ("cold_s".into(), Json::Num(cold_s)),
        ("populate_s".into(), Json::Num(populate_s)),
        ("cached_s".into(), Json::Num(cached_s)),
        ("warm_s".into(), Json::Num(warm_s)),
        ("speedup_cached".into(), Json::Num(speedup_cached)),
        ("speedup_warm".into(), Json::Num(speedup_warm)),
        ("cache_hits".into(), Json::Num(hits as f64)),
        ("cache_misses".into(), Json::Num(misses as f64)),
        (
            "solver_sweeps_cold".into(),
            Json::Num(cold_report.solver_iterations() as f64),
        ),
        (
            "solver_sweeps_cached".into(),
            Json::Num(cached_report.solver_iterations() as f64),
        ),
        (
            "solver_sweeps_warm".into(),
            Json::Num(warm_report.solver_iterations() as f64),
        ),
        (
            "bit_identical_cached".into(),
            Json::Bool(bit_identical_cached),
        ),
        ("bit_identical_warm".into(), Json::Bool(bit_identical_warm)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create results directory: {e}"))?;
    let path = dir.join("BENCH_map.json");
    std::fs::write(&path, json.to_json() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    if !ctx.quiet {
        println!(
            "cold {cold_s:.3}s | cached {cached_s:.3}s ({speedup_cached:.1}x) | \
             warm {warm_s:.3}s ({speedup_warm:.1}x) -> {}",
            path.display()
        );
    }
    out.outputs.push(path);
    out.key("cold_s", cold_s);
    out.key("cached_s", cached_s);
    out.key("warm_s", warm_s);
    out.key("speedup_cached", speedup_cached);
    out.key("speedup_warm", speedup_warm);

    if !bit_identical_cached || !bit_identical_warm {
        return Err(format!(
            "cached/warm mapping diverged from cold \
             (cached: {bit_identical_cached}, warm: {bit_identical_warm})"
        ));
    }
    if speedup_cached < 1.05 {
        return Err(format!(
            "cached re-map speedup {speedup_cached:.2}x below the 1.05x target"
        ));
    }
    Ok(out)
}
