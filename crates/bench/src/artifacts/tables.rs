//! Table-shaped artifacts: the paper's **Table I**, the sparsity/cost
//! trade-off table, the per-layer mapping inventory, and the stuck-at
//! fault-injection sweep. Moved out of the standalone binaries so the suite
//! orchestrator can run them as library calls.

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::{pct, rate, Table};
use crate::runner::{crossbar_accuracy, crossbar_accuracy_avg, map_config, DEFAULT_REPS};
use crate::scenario::Scenario;
use crate::DatasetKind;
use xbar_core::cost::{estimate_cost, CostModel};
use xbar_core::pipeline::map_to_crossbars;
use xbar_core::RepairConfig;
use xbar_nn::vgg::VggVariant;
use xbar_prune::compression::compression_rate;
use xbar_prune::PruneMethod;
use xbar_sim::FaultModel;

/// Crossbar size Table I evaluates at.
pub const TABLE1_SIZE: usize = 32;

/// Default crossbar size the fault sweep evaluates at.
pub const FAULT_SWEEP_SIZE: usize = 16;

/// Stuck-at fault rates swept (fraction of devices).
pub const FAULT_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

fn table1_cases() -> Vec<(DatasetKind, VggVariant, PruneMethod)> {
    let mut cases = Vec::new();
    for variant in [VggVariant::Vgg11, VggVariant::Vgg16] {
        for method in [
            PruneMethod::None,
            PruneMethod::ChannelFilter,
            PruneMethod::XbarColumn,
            PruneMethod::XbarRow,
        ] {
            cases.push((DatasetKind::Cifar10Like, variant, method));
        }
    }
    for variant in [VggVariant::Vgg11, VggVariant::Vgg16] {
        for method in [PruneMethod::None, PruneMethod::ChannelFilter] {
            cases.push((DatasetKind::Cifar100Like, variant, method));
        }
    }
    cases
}

/// The scenarios Table I trains.
pub fn table1_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    table1_cases()
        .into_iter()
        .map(|(dataset, variant, method)| {
            Scenario::new(variant, dataset, method, ctx.scale).with_seed(ctx.seed)
        })
        .collect()
}

/// Regenerates **Table I**: software accuracies, crossbar-compression-rates
/// and 32×32 non-ideal crossbar accuracies for the unpruned and
/// structure-pruned VGG11/VGG16 models on both datasets.
pub fn table1(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let mut table = Table::new(
        "Table I: software accuracy and crossbar-compression-rate (32x32)",
        &[
            "Dataset",
            "Network",
            "Method",
            "Sparsity",
            "Software acc (%)",
            "Crossbar acc (%)",
            "Compression",
        ],
    );
    let mut solver_table = Table::new(
        "Table I mapping solver statistics (32x32)",
        &[
            "Dataset",
            "Network",
            "Method",
            "Crossbars",
            "Mean NF",
            "Solver iters",
            "Max residual",
            "Non-conv tiles",
        ],
    );
    for (dataset, variant, method) in table1_cases() {
        let sc = Scenario::new(variant, dataset, method, ctx.scale).with_seed(ctx.seed);
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let compression = match method {
            PruneMethod::None => "-".to_string(),
            m => rate(compression_rate(&tm.model, m, TABLE1_SIZE, TABLE1_SIZE)),
        };
        let cfg = map_config(&tm, TABLE1_SIZE, ctx.seed);
        let (xbar_acc, report) = crossbar_accuracy(&tm, &data, &cfg);
        xbar_obs::event!(
            "case_done",
            dataset = dataset.name(),
            network = variant.to_string(),
            method = method.to_string(),
            software_acc = tm.software_accuracy,
            crossbar_acc = xbar_acc
        );
        out.key(
            format!("{}/{}/{}/crossbar_acc", dataset.name(), variant, method),
            xbar_acc,
        );
        table.push_row(vec![
            dataset.name().to_string(),
            variant.to_string(),
            method.to_string(),
            if method == PruneMethod::None {
                "-".to_string()
            } else {
                format!("{:.1}", sc.sparsity)
            },
            pct(tm.software_accuracy),
            pct(xbar_acc),
            compression,
        ]);
        solver_table.push_row(vec![
            dataset.name().to_string(),
            variant.to_string(),
            method.to_string(),
            report.crossbar_count().to_string(),
            format!("{:.4}", report.mean_nf()),
            report.solver_iterations().to_string(),
            format!("{:.2e}", report.max_residual()),
            report.non_converged().to_string(),
        ]);
    }
    ctx.emit(&table, &mut out, "table1")?;
    ctx.emit(&solver_table, &mut out, "table1_solver")?;
    Ok(out)
}

/// The C/F sparsity levels the trade-off table sweeps (0.0 = unpruned).
const TRADEOFF_SPARSITIES: [f64; 4] = [0.0, 0.5, 0.65, 0.8];

fn tradeoff_scenario(ctx: &ArtifactCtx, s: f64) -> Scenario {
    if s == 0.0 {
        // Sparsity is ignored for the unpruned run; keep the canonical
        // cache key.
        Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::None,
            ctx.scale,
        )
        .with_seed(ctx.seed)
    } else {
        Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::ChannelFilter,
            ctx.scale,
        )
        .with_seed(ctx.seed)
        .with_sparsity(s)
    }
}

/// The scenarios the trade-off table trains.
pub fn tradeoff_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    TRADEOFF_SPARSITIES
        .iter()
        .map(|&s| tradeoff_scenario(ctx, s))
        .collect()
}

/// Regenerates the sparsity-vs-cost-vs-accuracy trade-off table.
pub fn tradeoff(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let cost_model = CostModel::default();
    let mut table = Table::new(
        "Trade-off: C/F sparsity vs hardware cost vs crossbar accuracy (VGG11/CIFAR10-like, 32x32)",
        &[
            "Sparsity",
            "Software (%)",
            "Crossbar acc (%)",
            "Crossbars",
            "Area saving",
            "Energy saving",
        ],
    );
    let mut dense_cost = None;
    for s in TRADEOFF_SPARSITIES {
        let sc = tradeoff_scenario(ctx, s);
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let cfg = map_config(&tm, 32, ctx.seed);
        let (acc, report) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
        let cost = estimate_cost(&tm.model, &cfg, &cost_model);
        let dense = *dense_cost.get_or_insert(cost);
        xbar_obs::event!(
            "progress",
            sparsity = s,
            accuracy = acc,
            crossbars = cost.crossbars
        );
        out.key(format!("s{s:.2}/crossbar_acc"), acc);
        table.push_row(vec![
            if s == 0.0 {
                "unpruned".into()
            } else {
                format!("{s:.2}")
            },
            pct(tm.software_accuracy),
            pct(acc),
            report.crossbar_count().to_string(),
            rate(cost.area_saving_vs(&dense)),
            rate(cost.energy_saving_vs(&dense)),
        ]);
    }
    ctx.emit(&table, &mut out, "tradeoff")?;
    Ok(out)
}

/// The scenario the default inventory artifact trains.
pub fn inventory_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    vec![Scenario::new(
        VggVariant::Vgg11,
        DatasetKind::Cifar10Like,
        PruneMethod::ChannelFilter,
        ctx.scale,
    )
    .with_seed(ctx.seed)]
}

/// Regenerates the per-layer mapping inventory for a VGG11 scenario at the
/// given crossbar size and pruning method.
pub fn inventory(
    ctx: &ArtifactCtx,
    size: usize,
    method: PruneMethod,
) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let sc = Scenario::new(
        VggVariant::Vgg11,
        DatasetKind::Cifar10Like,
        method,
        ctx.scale,
    )
    .with_seed(ctx.seed);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let cfg = map_config(&tm, size, ctx.seed);
    let (_, report) = map_to_crossbars(&tm.model, &cfg).map_err(|e| format!("mapping: {e}"))?;
    let mut table = Table::new(
        format!(
            "Layer inventory: VGG11 ({method}) on {size}x{size} crossbars — software acc {}%",
            pct(tm.software_accuracy)
        ),
        &[
            "Layer",
            "Kind",
            "Crossbars",
            "Mean NF",
            "NF std",
            "Low-G fraction",
            "Solver iters",
            "Max residual",
            "Non-conv",
        ],
    );
    for lr in &report.layers {
        let kind = tm.model.layers()[lr.layer_index].kind_name();
        table.push_row(vec![
            format!("#{}", lr.layer_index),
            kind.to_string(),
            lr.crossbar_count.to_string(),
            format!("{:.4}", lr.nf.mean()),
            format!("{:.4}", lr.nf.std()),
            format!("{:.3}", lr.low_g_fraction),
            lr.solver_iterations.to_string(),
            format!("{:.2e}", lr.max_residual),
            lr.non_converged.to_string(),
        ]);
    }
    ctx.emit(&table, &mut out, "inventory")?;
    let cost = estimate_cost(&tm.model, &cfg, &CostModel::default());
    if !ctx.quiet {
        println!(
            "total: {} crossbars, {:.2} mm^2, {:.1} uJ/inference (first-order model)",
            cost.crossbars,
            cost.area_um2 / 1e6,
            cost.energy_uj
        );
    }
    out.key("software_acc", tm.software_accuracy);
    out.key("crossbars", cost.crossbars as f64);
    out.key("mean_nf", report.mean_nf());
    Ok(out)
}

/// The scenarios the fault sweep trains.
pub fn fault_sweep_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    [PruneMethod::None, PruneMethod::ChannelFilter]
        .into_iter()
        .map(|method| {
            Scenario::new(
                VggVariant::Vgg11,
                DatasetKind::Cifar10Like,
                method,
                ctx.scale,
            )
            .with_seed(ctx.seed)
        })
        .collect()
}

/// Regenerates the stuck-at fault-injection sweep (rates × repair on/off)
/// at the given crossbar size.
pub fn fault_sweep(ctx: &ArtifactCtx, size: usize) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let mut table = Table::new(
        format!("Fault-injection sweep ({size}x{size}, stuck-at devices)"),
        &[
            "Method",
            "Fault rate (%)",
            "Repair",
            "Crossbar acc (%)",
            "Stuck cells",
            "Repaired cols",
            "Corrected cells",
            "Degraded tiles",
        ],
    );
    for method in [PruneMethod::None, PruneMethod::ChannelFilter] {
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            method,
            ctx.scale,
        )
        .with_seed(ctx.seed);
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        for rate in FAULT_RATES {
            for repair in [false, true] {
                let mut cfg = map_config(&tm, size, ctx.seed);
                // Split like measured RRAM fault populations: stuck-low
                // (high-resistance, open) devices dominate stuck-high.
                cfg.params.faults = FaultModel {
                    stuck_at_gmin: 0.6 * rate,
                    stuck_at_gmax: 0.4 * rate,
                };
                if repair {
                    cfg.repair = Some(RepairConfig::default());
                }
                let (acc, report) = crossbar_accuracy(&tm, &data, &cfg);
                xbar_obs::event!(
                    "fault_case_done",
                    method = method.to_string(),
                    fault_rate = rate,
                    repair = repair,
                    crossbar_acc = acc,
                    stuck_cells = report.stuck_cells() as u64,
                    repaired_columns = report.repaired_columns() as u64,
                    degraded_tiles = report.degraded_tiles() as u64
                );
                out.key(
                    format!(
                        "{method}/rate{:.1}%/repair_{}",
                        100.0 * rate,
                        if repair { "on" } else { "off" }
                    ),
                    acc,
                );
                table.push_row(vec![
                    method.to_string(),
                    format!("{:.1}", 100.0 * rate),
                    if repair { "on" } else { "off" }.to_string(),
                    pct(acc),
                    report.stuck_cells().to_string(),
                    report.repaired_columns().to_string(),
                    report.corrected_cells().to_string(),
                    report.degraded_tiles().to_string(),
                ]);
            }
        }
    }
    ctx.emit(&table, &mut out, "fault_sweep")?;
    Ok(out)
}
