//! Ablation artifacts on the design choices `DESIGN.md` calls out, plus the
//! extension studies (BN recalibration, robustness, G'-folding fidelity).
//! Moved out of the standalone `ablation` binary so the suite orchestrator
//! can run each study as its own artifact.

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::{pct, Table};
use crate::runner::{crossbar_accuracy_avg, map_config, relative_weight_error, DEFAULT_REPS};
use crate::scenario::Scenario;
use crate::DatasetKind;
use std::time::Instant;
use xbar_core::wct::{apply_wct, WctConfig};
use xbar_core::ColumnOrder;
use xbar_data::Split;
use xbar_nn::train::{DataRef, WeightConstraint};
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;
use xbar_sim::conductance::ConductanceMatrix;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::{NonIdealSolver, SolveMethod};
use xbar_sim::MappingScale;

fn cf_vgg11_scenario(ctx: &ArtifactCtx) -> Scenario {
    Scenario::new(
        VggVariant::Vgg11,
        DatasetKind::Cifar10Like,
        PruneMethod::ChannelFilter,
        ctx.scale,
    )
    .with_seed(ctx.seed)
}

fn none_and_cf_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    [PruneMethod::None, PruneMethod::ChannelFilter]
        .into_iter()
        .map(|method| {
            Scenario::new(
                VggVariant::Vgg11,
                DatasetKind::Cifar10Like,
                method,
                ctx.scale,
            )
            .with_seed(ctx.seed)
        })
        .collect()
}

/// The scenario A1 trains.
pub fn mapping_scale_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    vec![cf_vgg11_scenario(ctx)]
}

/// A1: WCT benefit exists under Fixed scale and inverts under PerLayerMax.
pub fn mapping_scale(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let sc = cf_vgg11_scenario(ctx);
    let data = sc.dataset();
    let mut tm = sc.train_model_cached(&data);
    let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train))
        .map_err(|e| format!("dataset: {e}"))?;
    let constraint: Option<&dyn WeightConstraint> =
        tm.masks.as_ref().map(|m| m as &dyn WeightConstraint);
    let wct_cfg = WctConfig::default();
    let mut wct_model = tm.model.clone();
    let outcome = apply_wct(&mut wct_model, train_ref, &wct_cfg, constraint)
        .map_err(|e| format!("WCT trains: {e}"))?;
    tm.model = wct_model;
    let mut table = Table::new(
        "Ablation A1: WCT mapping-scale choice (VGG11/CIFAR10-like, C/F s = 0.8, 64x64)",
        &[
            "Mapping scale",
            "Crossbar acc (%)",
            "Mean NF",
            "Low-G fraction",
        ],
    );
    for (label, mscale) in [
        ("Fixed(pre-clamp max)", outcome.mapping_scale()),
        ("PerLayerMax", MappingScale::PerLayerMax),
        ("PerTileMax", MappingScale::PerTileMax),
    ] {
        let mut cfg = map_config(&tm, 64, ctx.seed);
        cfg.scale = mscale;
        let (acc, report) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
        xbar_obs::event!(
            "progress",
            ablation = "mapping-scale",
            mapping_scale = label,
            accuracy = acc
        );
        out.key(format!("{label}/crossbar_acc"), acc);
        table.push_row(vec![
            label.to_string(),
            pct(acc),
            format!("{:.4}", report.mean_nf()),
            format!("{:.3}", report.mean_low_g_fraction()),
        ]);
    }
    ctx.emit(&table, &mut out, "ablation_mapping_scale")?;
    Ok(out)
}

/// A2: exact vs line-relaxation circuit solver. Trains nothing.
pub fn solver(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let mut table = Table::new(
        "Ablation A2: circuit solver agreement and speed",
        &[
            "Tile",
            "Max |dI| / I (exact vs lines)",
            "Exact (ms)",
            "Lines (ms)",
            "Speedup",
        ],
    );
    for n in [8usize, 16, 24] {
        let params = CrossbarParams::with_size(n);
        let mut g = ConductanceMatrix::filled(n, n, 0.0);
        let mut s = 77u64;
        for i in 0..n {
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let f = (s % 1000) as f64 / 1000.0;
                g.set(i, j, params.g_min() + f * (params.g_max() - params.g_min()));
            }
        }
        let v = vec![params.v_read; n];
        let t0 = Instant::now();
        let exact = NonIdealSolver::new(params, SolveMethod::DenseExact)
            .effective_conductances(&g, &v)
            .map_err(|e| format!("exact solve: {e}"))?;
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let lines = NonIdealSolver::new(params, SolveMethod::LineRelaxation)
            .effective_conductances(&g, &v)
            .map_err(|e| format!("line solve: {e}"))?;
        let lines_ms = t1.elapsed().as_secs_f64() * 1e3;
        let rel_err = exact
            .col_currents
            .iter()
            .zip(&lines.col_currents)
            .map(|(a, b)| ((a - b) / a).abs())
            .fold(0.0f64, f64::max);
        out.key(format!("{n}x{n}/max_rel_err"), rel_err);
        table.push_row(vec![
            format!("{n}x{n}"),
            format!("{rel_err:.2e}"),
            format!("{exact_ms:.2}"),
            format!("{lines_ms:.3}"),
            format!("{:.0}x", exact_ms / lines_ms.max(1e-9)),
        ]);
    }
    ctx.emit(&table, &mut out, "ablation_solver")?;
    Ok(out)
}

/// The scenario A3 trains.
pub fn rearrange_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    vec![cf_vgg11_scenario(ctx)]
}

/// A3: R column-order policies.
pub fn rearrange(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let sc = cf_vgg11_scenario(ctx);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let mut table = Table::new(
        "Ablation A3: R column-order policy (VGG11/CIFAR10-like, C/F s = 0.8)",
        &[
            "Policy",
            "Acc @16 (%)",
            "Acc @64 (%)",
            "Rel W err @16",
            "Rel W err @64",
        ],
    );
    for (label, order) in [
        ("none", None),
        ("ascending", Some(ColumnOrder::Ascending)),
        ("descending", Some(ColumnOrder::Descending)),
        ("center-out", Some(ColumnOrder::CenterOut)),
        ("grouped-descending", Some(ColumnOrder::GroupedDescending)),
    ] {
        let mut accs = vec![];
        let mut errs = vec![];
        for size in [16usize, 64] {
            let mut cfg = map_config(&tm, size, ctx.seed);
            cfg.rearrange = order;
            let (acc, _) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
            // Deterministic weight-error comparison without variation noise.
            let mut det_cfg = cfg;
            det_cfg.params.sigma_variation = 0.0;
            let (mapped, _) = xbar_core::pipeline::map_to_crossbars(&tm.model, &det_cfg)
                .map_err(|e| format!("map: {e}"))?;
            let err = relative_weight_error(&tm.model, &mapped);
            xbar_obs::event!(
                "progress",
                ablation = "rearrange-policy",
                policy = label,
                size = size,
                accuracy = acc,
                rel_weight_err = err
            );
            out.key(format!("{label}/{size}x{size}/crossbar_acc"), acc);
            accs.push(pct(acc));
            errs.push(format!("{err:.4}"));
        }
        let mut row = vec![label.to_string()];
        row.extend(accs);
        row.extend(errs);
        table.push_row(row);
    }
    ctx.emit(&table, &mut out, "ablation_rearrange")?;
    Ok(out)
}

/// The scenarios A4 trains.
pub fn bn_recalibration_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    none_and_cf_scenarios(ctx)
}

/// A4 (extension): BatchNorm recalibration after mapping.
pub fn bn_recalibration(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    use xbar_core::recalibrate::recalibrate_batchnorm;
    let mut out = ArtifactOutput::default();
    let mut table = Table::new(
        "Ablation A4 (extension): BatchNorm recalibration after mapping (64x64)",
        &["Model", "Mapped acc (%)", "After BN recal (%)", "Gain (pp)"],
    );
    for sc in none_and_cf_scenarios(ctx) {
        let method = sc.method;
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let cfg = map_config(&tm, 64, ctx.seed);
        let (mapped, _) = xbar_core::pipeline::map_to_crossbars(&tm.model, &cfg)
            .map_err(|e| format!("map: {e}"))?;
        let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
            .map_err(|e| format!("dataset: {e}"))?;
        let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train))
            .map_err(|e| format!("dataset: {e}"))?;
        let mut plain = mapped.clone();
        let before =
            xbar_nn::train::evaluate(&mut plain, test_ref, 64).map_err(|e| format!("eval: {e}"))?;
        let mut recal = mapped;
        recalibrate_batchnorm(&mut recal, train_ref, 32, 8)
            .map_err(|e| format!("recalibrate: {e}"))?;
        let after =
            xbar_nn::train::evaluate(&mut recal, test_ref, 64).map_err(|e| format!("eval: {e}"))?;
        xbar_obs::event!(
            "progress",
            ablation = "bn-recalibration",
            method = method.to_string(),
            before = before,
            after = after
        );
        out.key(format!("{method}/before"), before);
        out.key(format!("{method}/after"), after);
        table.push_row(vec![
            method.to_string(),
            pct(before),
            pct(after),
            format!("{:+.1}", 100.0 * (after - before)),
        ]);
    }
    ctx.emit(&table, &mut out, "ablation_bn_recal")?;
    Ok(out)
}

/// The scenarios A5 trains.
pub fn robustness_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    none_and_cf_scenarios(ctx)
}

/// A5 (extension): conductance quantization and stuck-at faults — does the
/// paper's "sparse models are more fragile" conclusion extend to other
/// non-idealities?
pub fn robustness(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    use xbar_sim::faults::FaultModel;
    let mut out = ArtifactOutput::default();
    let mut table = Table::new(
        "Ablation A5 (extension): quantization levels and stuck-at faults (32x32)",
        &["Perturbation", "Unpruned acc (%)", "C/F acc (%)"],
    );
    let models: Vec<_> = none_and_cf_scenarios(ctx)
        .into_iter()
        .map(|sc| {
            let data = sc.dataset();
            let tm = sc.train_model_cached(&data);
            (tm, data)
        })
        .collect();
    let seed = ctx.seed;
    let row = |out: &mut ArtifactOutput, label: &str, edit: &dyn Fn(&mut CrossbarParams)| {
        let mut cells = vec![label.to_string()];
        for (tm, data) in &models {
            let mut cfg = map_config(tm, 32, seed);
            edit(&mut cfg.params);
            let (acc, _) = crossbar_accuracy_avg(tm, data, &cfg, DEFAULT_REPS);
            xbar_obs::event!(
                "progress",
                ablation = "robustness",
                perturbation = label,
                method = tm.scenario.method.to_string(),
                accuracy = acc
            );
            out.key(format!("{label}/{}", tm.scenario.method), acc);
            cells.push(pct(acc));
        }
        cells
    };
    let baseline = row(&mut out, "baseline (analog, fault-free)", &|_| {});
    table.push_row(baseline);
    for levels in [32u32, 16, 8, 4] {
        let cells = row(
            &mut out,
            &format!("{levels} conductance levels"),
            &move |p| {
                p.levels = levels;
            },
        );
        table.push_row(cells);
    }
    for rate in [0.01f64, 0.05] {
        let cells = row(
            &mut out,
            &format!("{:.0}% stuck-at-Gmin", rate * 100.0),
            &move |p| {
                p.faults = FaultModel {
                    stuck_at_gmin: rate,
                    stuck_at_gmax: 0.0,
                };
            },
        );
        table.push_row(cells);
    }
    ctx.emit(&table, &mut out, "ablation_robustness")?;
    Ok(out)
}

/// A6 (extension): fidelity of the paper's methodology. The framework folds
/// non-idealities into effective conductances `G'` extracted once at the
/// nominal read voltage; real inference applies *varying* activation
/// patterns, for which the folding is an approximation. This ablation
/// measures the approximation error against exact per-input circuit solves.
/// Trains nothing.
#[allow(clippy::needless_range_loop)]
pub fn approximation(ctx: &ArtifactCtx) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let mut table = Table::new(
        "Ablation A6 (extension): G'-folding fidelity vs exact per-input solves",
        &["Tile", "Active rows", "Mean |dI|/I (%)", "Max |dI|/I (%)"],
    );
    for n in [16usize, 32, 64] {
        let mut params = CrossbarParams::with_size(n);
        params.sigma_variation = 0.0;
        let mut g = ConductanceMatrix::filled(n, n, 0.0);
        let mut s = 11u64;
        for i in 0..n {
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let f = (s % 1000) as f64 / 1000.0;
                g.set(i, j, params.g_min() + f * (params.g_max() - params.g_min()));
            }
        }
        let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
        let nominal = vec![params.v_read; n];
        let eff = solver
            .effective_conductances(&g, &nominal)
            .map_err(|e| format!("nominal solve: {e}"))?;
        for active_fraction in [0.25f64, 0.5, 1.0] {
            let active = ((n as f64) * active_fraction).round() as usize;
            let v: Vec<f64> = (0..n)
                .map(|i| {
                    if i % (n / active.max(1)).max(1) == 0 || active == n {
                        params.v_read
                    } else {
                        0.0
                    }
                })
                .collect();
            let exact = solver
                .column_currents(&g, &v)
                .map_err(|e| format!("exact solve: {e}"))?;
            let mut sum_rel = 0.0f64;
            let mut max_rel = 0.0f64;
            let mut count = 0usize;
            for j in 0..n {
                let approx: f64 = (0..n).map(|i| eff.g_eff.at(i, j) * v[i]).sum();
                if exact[j].abs() > f64::MIN_POSITIVE {
                    let rel = ((approx - exact[j]) / exact[j]).abs();
                    sum_rel += rel;
                    max_rel = max_rel.max(rel);
                    count += 1;
                }
            }
            out.key(format!("{n}x{n}/active{active}/max_rel"), max_rel);
            table.push_row(vec![
                format!("{n}x{n}"),
                format!("{active}/{n}"),
                format!("{:.3}", 100.0 * sum_rel / count.max(1) as f64),
                format!("{:.3}", 100.0 * max_rel),
            ]);
        }
    }
    ctx.emit(&table, &mut out, "ablation_approximation")?;
    Ok(out)
}
