//! The surrogate-fidelity artifact: the surrogate-accuracy table
//! (`results/surrogate_accuracy.csv`), the tile-eval micro-benchmark
//! (`results/BENCH_surrogate.json`, speedup-gated), and the tiered-bundle
//! build the `surrogate-train` binary and the CI serve smoke consume.
//!
//! The accuracy table answers "what does serving the surrogate-folded
//! `W''` cost in classification accuracy vs the exact-solver `W'`?",
//! across the unpruned / channel-filter-pruned / crossbar-column-pruned
//! scenarios. The micro-benchmark answers "how much faster is a surrogate
//! tile evaluation than an exact tile solve?" — the whole reason the
//! emulator exists — and fails the artifact (hence `suite --gate`) when
//! the speedup at the gate size drops below [`SPEEDUP_FLOOR`].

use super::{ArtifactCtx, ArtifactOutput};
use crate::report::{pct, results_dir, Table};
use crate::runner::map_config;
use crate::scenario::Scenario;
use crate::DatasetKind;
use std::path::PathBuf;
use std::time::Instant;
use xbar_core::artifact::surrogate_input_dim;
use xbar_core::pipeline::TileEmulator;
use xbar_core::pipeline::{map_to_crossbars, map_to_crossbars_with};
use xbar_core::{save_artifact_bundle_to_file, ArtifactBundle, ArtifactMeta};
use xbar_data::Split;
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::vgg::VggVariant;
use xbar_obs::json::Json;
use xbar_prune::PruneMethod;
use xbar_sim::params::CrossbarParams;
use xbar_sim::solve::{NonIdealSolver, SolveMethod};
use xbar_surrogate::{generate_pairs, train_surrogate, Surrogate, TrainConfig};

/// Crossbar size of the accuracy table — the paper's canonical 32.
pub const SURROGATE_SIZE: usize = 32;

/// Tile sizes the micro-benchmark sweeps.
pub const BENCH_SIZES: [usize; 3] = [16, 32, 64];

/// The size the speedup gate applies at. 64×64 is where the exact solve is
/// slowest and emulation pays; smaller tiles are reported informationally
/// (the fixed per-batch overhead erodes their ratio).
pub const GATE_SIZE: usize = 64;

/// Minimum surrogate-vs-exact tile-eval speedup at [`GATE_SIZE`].
///
/// Recalibrated from 20× when the exact solver gained its batched,
/// lane-vectorized path: the comparison is against the exact path users
/// actually run, so making the exact solver ~2× faster legitimately
/// narrowed the surrogate's relative advantage (~33× → ~15× at 64×64).
pub const SPEEDUP_FLOOR: f64 = 10.0;

/// The pruning trio of the accuracy table: unpruned, channel/filter
/// pruning, and crossbar-column pruning.
const METHODS: [PruneMethod; 3] = [
    PruneMethod::None,
    PruneMethod::ChannelFilter,
    PruneMethod::XbarColumn,
];

/// The scenarios the accuracy table trains.
pub fn surrogate_scenarios(ctx: &ArtifactCtx) -> Vec<Scenario> {
    METHODS
        .iter()
        .map(|&m| {
            Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, m, ctx.scale)
                .with_seed(ctx.seed)
        })
        .collect()
}

/// Trains a surrogate for `params`-shaped tiles with the default recipe.
/// Training is seeded by the recipe itself (not `ctx.seed`): the surrogate
/// approximates fixed circuit physics, so every run of the suite trains the
/// bit-identical emulator.
fn trained_surrogate(params: CrossbarParams) -> Result<(Surrogate, f64), String> {
    let start = Instant::now();
    let s = train_surrogate(&TrainConfig::for_params(params))?;
    Ok((s, start.elapsed().as_secs_f64()))
}

/// The surrogate-accuracy table plus the gated tile-eval micro-benchmark.
///
/// # Errors
///
/// Fails on pipeline errors, or when the micro-benchmark's speedup at
/// [`GATE_SIZE`] falls below [`SPEEDUP_FLOOR`] (after writing
/// `BENCH_surrogate.json`, so the numbers are inspectable).
pub fn surrogate_accuracy(ctx: &ArtifactCtx, size: usize) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();

    // One surrogate serves all three scenarios: the tile physics it
    // emulates depends on the crossbar parameters, not the pruning method.
    let (surrogate, train_s) = trained_surrogate(CrossbarParams::with_size(size))?;
    let smeta = surrogate.meta().clone();
    eprintln!(
        "[surrogate] trained {size}x{size} emulator in {train_s:.2}s \
         (held-out max err {:.4}, rms {:.4})",
        smeta.val_max_err, smeta.val_rms_err
    );

    let mut table = Table::new(
        "Surrogate fidelity (exact W' vs surrogate W'' vs ideal software)",
        &[
            "Method",
            "Ideal acc (%)",
            "Exact acc (%)",
            "Surrogate acc (%)",
            "Acc gap (pp)",
            "Map exact (s)",
            "Map surrogate (s)",
            "Map speedup",
        ],
    );
    for sc in surrogate_scenarios(ctx) {
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let cfg = map_config(&tm, size, ctx.seed);
        let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
            .map_err(|e| format!("dataset well-formed: {e}"))?;

        let start = Instant::now();
        let (mut exact_model, _) =
            map_to_crossbars(&tm.model, &cfg).map_err(|e| format!("exact mapping: {e}"))?;
        let exact_map_s = start.elapsed().as_secs_f64();
        let exact_acc =
            evaluate(&mut exact_model, test, 64).map_err(|e| format!("exact evaluation: {e}"))?;

        let start = Instant::now();
        let (mut surr_model, _) = map_to_crossbars_with(&tm.model, &cfg, Some(&surrogate))
            .map_err(|e| format!("surrogate mapping: {e}"))?;
        let surr_map_s = start.elapsed().as_secs_f64();
        let surr_acc = evaluate(&mut surr_model, test, 64)
            .map_err(|e| format!("surrogate evaluation: {e}"))?;

        let gap_pp = (exact_acc - surr_acc) * 100.0;
        table.push_row(vec![
            tm.scenario.method.to_string(),
            pct(tm.software_accuracy),
            pct(exact_acc),
            pct(surr_acc),
            format!("{gap_pp:+.2}"),
            format!("{exact_map_s:.3}"),
            format!("{surr_map_s:.3}"),
            format!("{:.1}x", exact_map_s / surr_map_s.max(1e-12)),
        ]);
        let method = tm.scenario.method.to_string().replace('/', "");
        out.key(format!("exact_acc_{method}"), exact_acc);
        out.key(format!("surrogate_acc_{method}"), surr_acc);
    }
    ctx.emit(&table, &mut out, "surrogate_accuracy")?;
    out.key("surrogate_val_max_err", smeta.val_max_err);
    out.key("surrogate_val_rms_err", smeta.val_rms_err);

    // Tile-eval micro-benchmark: raw solver tile-solves/sec vs surrogate
    // tile-evals/sec over identical random arrays, per tile size.
    let n = 512usize;
    let mut size_entries = Vec::new();
    let mut gate_speedup = f64::NAN;
    for bench_size in BENCH_SIZES {
        let params = CrossbarParams::with_size(bench_size);
        let (s, size_train_s) = trained_surrogate(params)?;
        let arrays: Vec<_> = generate_pairs(&params, n, ctx.seed ^ 0xBE6C)
            .map_err(|e| format!("micro-bench arrays: {e}"))?
            .into_iter()
            .map(|p| p.g)
            .collect();
        let solver = NonIdealSolver::try_new(params, SolveMethod::LineRelaxation)
            .map_err(|e| format!("micro-bench solver: {e}"))?;
        let v = vec![params.v_read; bench_size];

        let start = Instant::now();
        for g in &arrays {
            solver
                .column_currents(g, &v)
                .map_err(|e| format!("exact tile solve: {e}"))?;
        }
        let exact_rate = n as f64 / start.elapsed().as_secs_f64();

        // Warm once (allocator, lazily-sized scratch), then time.
        s.column_currents_batch(&arrays)
            .map_err(|e| format!("surrogate tile eval: {e}"))?;
        let start = Instant::now();
        s.column_currents_batch(&arrays)
            .map_err(|e| format!("surrogate tile eval: {e}"))?;
        let surr_rate = n as f64 / start.elapsed().as_secs_f64();

        let speedup = surr_rate / exact_rate.max(1e-12);
        if bench_size == GATE_SIZE {
            gate_speedup = speedup;
        }
        eprintln!(
            "[surrogate] {bench_size}x{bench_size}: exact {exact_rate:.0} tiles/s, \
             surrogate {surr_rate:.0} tiles/s ({speedup:.1}x)"
        );
        let m = s.meta();
        size_entries.push(Json::Obj(vec![
            ("size".into(), Json::Num(bench_size as f64)),
            (
                "input_dim".into(),
                Json::Num(surrogate_input_dim(bench_size, bench_size) as f64),
            ),
            ("train_s".into(), Json::Num(size_train_s)),
            ("val_max_err".into(), Json::Num(m.val_max_err)),
            ("val_rms_err".into(), Json::Num(m.val_rms_err)),
            ("exact_tiles_per_s".into(), Json::Num(exact_rate)),
            ("surrogate_tiles_per_s".into(), Json::Num(surr_rate)),
            ("speedup".into(), Json::Num(speedup)),
        ]));
    }

    let json = Json::Obj(vec![
        ("bin".into(), Json::Str("surrogate".into())),
        ("scale".into(), Json::Str(ctx.scale_name.into())),
        ("seed".into(), Json::Num(ctx.seed as f64)),
        ("tiles_per_size".into(), Json::Num(n as f64)),
        ("gate_size".into(), Json::Num(GATE_SIZE as f64)),
        ("speedup_floor".into(), Json::Num(SPEEDUP_FLOOR)),
        ("gate_speedup".into(), Json::Num(gate_speedup)),
        ("sizes".into(), Json::Arr(size_entries)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create results directory: {e}"))?;
    let path = dir.join("BENCH_surrogate.json");
    std::fs::write(&path, json.to_json() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    if !ctx.quiet {
        println!(
            "surrogate tile-eval speedup at {GATE_SIZE}x{GATE_SIZE}: {gate_speedup:.1}x \
             (floor {SPEEDUP_FLOOR:.0}x) -> {}",
            path.display()
        );
    }
    out.outputs.push(path);
    out.key("surrogate_speedup", gate_speedup);

    if gate_speedup.is_nan() || gate_speedup < SPEEDUP_FLOOR {
        return Err(format!(
            "surrogate tile-eval speedup {gate_speedup:.1}x at {GATE_SIZE}x{GATE_SIZE} \
             is below the {SPEEDUP_FLOOR:.0}x floor"
        ));
    }
    Ok(out)
}

/// What the tiered-bundle build trains and where it writes the bundle.
#[derive(Debug, Clone)]
pub struct SurrogateTrainOptions {
    /// Network variant.
    pub variant: VggVariant,
    /// Dataset.
    pub dataset: DatasetKind,
    /// Pruning method.
    pub method: PruneMethod,
    /// Crossbar size.
    pub size: usize,
    /// Bundle path (`results/model_tiered.xbarmdl` when `None`).
    pub out: Option<PathBuf>,
}

impl Default for SurrogateTrainOptions {
    fn default() -> Self {
        SurrogateTrainOptions {
            variant: VggVariant::Vgg11,
            dataset: DatasetKind::Cifar10Like,
            method: PruneMethod::ChannelFilter,
            size: SURROGATE_SIZE,
            out: None,
        }
    }
}

/// The scenario the bundle build trains.
pub fn surrogate_train_scenarios(ctx: &ArtifactCtx, opts: &SurrogateTrainOptions) -> Vec<Scenario> {
    vec![Scenario::new(opts.variant, opts.dataset, opts.method, ctx.scale).with_seed(ctx.seed)]
}

/// Trains a scenario and a tile surrogate, maps the model both ways (exact
/// `W'` and surrogate-folded `W''`), and persists all three serving tiers —
/// plus the surrogate net and its validation record — as one `XBARMDL1`
/// bundle for `xbar-serve --fidelity`.
pub fn surrogate_train(
    ctx: &ArtifactCtx,
    opts: &SurrogateTrainOptions,
) -> Result<ArtifactOutput, String> {
    let mut out = ArtifactOutput::default();
    let bundle_path = opts
        .out
        .clone()
        .unwrap_or_else(|| results_dir().join("model_tiered.xbarmdl"));
    let sc = surrogate_train_scenarios(ctx, opts).remove(0);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let cfg = map_config(&tm, opts.size, ctx.seed);
    let (surrogate, train_s) = trained_surrogate(cfg.params)?;

    let (mut exact_model, report) =
        map_to_crossbars(&tm.model, &cfg).map_err(|e| format!("exact mapping: {e}"))?;
    let (mut surr_model, _) = map_to_crossbars_with(&tm.model, &cfg, Some(&surrogate))
        .map_err(|e| format!("surrogate mapping: {e}"))?;
    let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
        .map_err(|e| format!("dataset well-formed: {e}"))?;
    let exact_acc =
        evaluate(&mut exact_model, test, 64).map_err(|e| format!("exact evaluation: {e}"))?;
    let surr_acc =
        evaluate(&mut surr_model, test, 64).map_err(|e| format!("surrogate evaluation: {e}"))?;

    let (variant, dataset, method, size) = (opts.variant, opts.dataset, opts.method, opts.size);
    let label = format!(
        "{variant} {} {method} s={:.1} {size}x{size} tiered",
        dataset.name(),
        sc.sparsity
    );
    let mut meta = ArtifactMeta::from_mapping(label, &cfg, &report);
    meta.software_accuracy = Some(tm.software_accuracy);
    meta.crossbar_accuracy = Some(exact_acc);
    meta.surrogate_accuracy = Some(surr_acc);
    let (smeta, net) = surrogate.into_parts();
    let val_max_err = smeta.val_max_err;
    meta.surrogate = Some(smeta);
    let mut bundle = ArtifactBundle {
        model: exact_model,
        meta,
        ideal_model: Some(tm.model.clone()),
        surrogate_model: Some(surr_model),
        surrogate_net: Some(net),
    };
    if let Some(dir) = bundle_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create artifact directory: {e}"))?;
    }
    save_artifact_bundle_to_file(&mut bundle, &bundle_path)
        .map_err(|e| format!("write bundle: {e}"))?;

    let mut table = Table::new(
        "Tiered serving bundle",
        &[
            "Network",
            "Method",
            "Crossbar",
            "Ideal acc (%)",
            "Exact acc (%)",
            "Surrogate acc (%)",
            "Val max err",
            "Train (s)",
            "Bundle",
        ],
    );
    table.push_row(vec![
        variant.to_string(),
        method.to_string(),
        format!("{size}x{size}"),
        pct(tm.software_accuracy),
        pct(exact_acc),
        pct(surr_acc),
        format!("{val_max_err:.4}"),
        format!("{train_s:.2}"),
        bundle_path.display().to_string(),
    ]);
    ctx.emit(&table, &mut out, "surrogate_train")?;
    if !ctx.quiet {
        // Scripts (CI smoke) parse this line for the bundle path.
        println!("artifact written to {}", bundle_path.display());
    }
    out.outputs.push(bundle_path);
    out.key("ideal_acc", tm.software_accuracy);
    out.key("exact_acc", exact_acc);
    out.key("surrogate_acc", surr_acc);
    out.key("surrogate_val_max_err", val_max_err);
    Ok(out)
}
