//! Shared load-driving core for the serving benchmarks.
//!
//! The `loadgen` binary (driving an external server) and the `serve`
//! suite artifact (driving an in-process one) measure the same thing:
//! what a fleet of keep-alive connections sees. Both route through
//! [`drive`] so the request schedule, latency accounting, and outcome
//! taxonomy cannot drift apart between the two entry points.
//!
//! The outcome taxonomy matters for honest numbers:
//!
//! * `ok` (200) — served; only these record latency and count toward
//!   throughput;
//! * `shed` (429) — admission control turned the request away before it
//!   touched the batch queue;
//! * `backpressure` (503) — the bounded batch queue was full;
//! * `timeouts` (504) and `io_errors`/`other_status` — real failures.
//!
//! Shed and backpressure responses the [`RetryingClient`] absorbed on
//! retry never surface here (the eventual 200 is what the caller saw);
//! the tallies count *final* outcomes, with `retries` recording how much
//! absorbing happened.
//!
//! With a non-zero [`LoadConfig::interval`] the run is open-loop: every
//! connection's intended-send grid hangs off one shared anchor captured
//! before any thread spawns ([`OpenLoopSchedule`]), and latency counts
//! from the intended time — coordinated-omission-honest by construction.

use crate::openloop::OpenLoopSchedule;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use xbar_obs::json::Json;
use xbar_obs::LogHistogram;
use xbar_serve::base64::encode_f32;
use xbar_serve::{RetryPolicy, RetryingClient};

/// Sub-bucket precision of the latency histograms: 2^5 sub-buckets per
/// power of two, ~3% relative error on reported quantiles.
pub const LATENCY_SUB_BITS: u32 = 5;

/// Stack reservation per connection thread. The driver threads only
/// format a request body and block on a socket, so a small stack keeps a
/// thousand-connection fleet cheap in reserved memory.
pub const CONN_STACK_BYTES: usize = 256 * 1024;

/// One load run's shape: where to aim and how hard.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent keep-alive connections (one thread each).
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_connection: usize,
    /// Flat input length of the classify body.
    pub input_len: usize,
    /// Zero = closed-loop (next request after the previous response);
    /// non-zero = open-loop with one intended send per interval per
    /// connection, latency measured from the intended time.
    pub interval: Duration,
    /// Send bodies as JSON float arrays instead of base64.
    pub as_json_floats: bool,
    /// Master seed; each connection derives its own retry-jitter seed.
    pub seed: u64,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            connections: 32,
            requests_per_connection: 25,
            input_len: 3 * 32 * 32,
            interval: Duration::ZERO,
            as_json_floats: false,
            seed: 42,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome tallies and served-request latencies of a load run.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Latency (µs) of served requests, from the intended send time when
    /// open-loop.
    pub latency: LogHistogram,
    /// Requests answered 200.
    pub ok: u64,
    /// Requests finally answered 429 (admission control).
    pub shed: u64,
    /// Requests finally answered 503 (batch-queue backpressure).
    pub backpressure: u64,
    /// Requests answered 504.
    pub timeouts: u64,
    /// Requests answered any other non-200 status.
    pub other_status: u64,
    /// Requests that failed at the socket level even after retries.
    pub io_errors: u64,
    /// Retry attempts the clients absorbed (connection errors, 429, 503).
    pub retries: u64,
    /// Wall time of the whole run, seconds.
    pub wall_s: f64,
}

impl Default for LoadStats {
    fn default() -> Self {
        LoadStats {
            latency: LogHistogram::new(LATENCY_SUB_BITS),
            ok: 0,
            shed: 0,
            backpressure: 0,
            timeouts: 0,
            other_status: 0,
            io_errors: 0,
            retries: 0,
            wall_s: 0.0,
        }
    }
}

impl LoadStats {
    /// Total requests that reached a final outcome.
    pub fn total(&self) -> u64 {
        self.ok + self.shed + self.backpressure + self.timeouts + self.other_status + self.io_errors
    }

    /// Requests lost to something other than explicit overload — the
    /// "zero dropped errors" acceptance count.
    pub fn dropped(&self) -> u64 {
        self.timeouts + self.other_status + self.io_errors
    }

    /// Served requests per second of wall time.
    pub fn throughput_rps(&self) -> f64 {
        self.ok as f64 / self.wall_s.max(f64::MIN_POSITIVE)
    }

    /// Fraction of final outcomes that were explicit overload (429 or
    /// 503) — what the server turned away rather than served or lost.
    pub fn shed_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.shed + self.backpressure) as f64 / total as f64
        }
    }

    /// Latency quantile in microseconds.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    fn absorb(&mut self, other: LoadStats) {
        self.latency
            .merge(&other.latency)
            .expect("same sub-bucket precision");
        self.ok += other.ok;
        self.shed += other.shed;
        self.backpressure += other.backpressure;
        self.timeouts += other.timeouts;
        self.other_status += other.other_status;
        self.io_errors += other.io_errors;
        self.retries += other.retries;
    }
}

/// Deterministic pseudo-image: contents do not matter for load, but
/// varying them defeats any accidental caching.
pub fn load_image(len: usize, seed: u64) -> Vec<f32> {
    // The seed is pre-mixed with a full-width odd multiplier so adjacent
    // seeds land in the surviving high bits of the hash — a bare additive
    // seed only perturbs bits the `>> 33` discards.
    let mixed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|i| {
            let x = (i as u64 ^ mixed)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            (x >> 33) as f32 / u32::MAX as f32 - 0.25
        })
        .collect()
}

fn body_of(img: &[f32], as_json_floats: bool) -> String {
    if as_json_floats {
        let values: Vec<String> = img.iter().map(|v| format!("{v}")).collect();
        format!("{{\"image\":[{}]}}", values.join(","))
    } else {
        format!("{{\"image_b64\":\"{}\"}}", encode_f32(img))
    }
}

fn drive_connection(conn: usize, cfg: &LoadConfig, schedule: OpenLoopSchedule) -> LoadStats {
    let mut stats = LoadStats::default();
    // Retrying client: transient resets, 429 shed and 503 backpressure
    // are absorbed by capped exponential backoff (per-connection jitter
    // seed desynchronises the retry storms).
    let mut client = RetryingClient::new(
        &cfg.addr,
        cfg.timeout,
        RetryPolicy {
            seed: cfg.seed ^ conn as u64,
            ..RetryPolicy::default()
        },
    );
    let open_loop = !cfg.interval.is_zero();
    for req in 0..cfg.requests_per_connection {
        let img = load_image(cfg.input_len, cfg.seed ^ ((conn * 1_000_003 + req) as u64));
        let body = body_of(&img, cfg.as_json_floats);
        // Open-loop: latency counts from the *intended* send time, so
        // falling behind schedule is charged to the server, not hidden
        // by it (coordinated omission).
        let begin = if open_loop {
            schedule.wait_until_intended(req)
        } else {
            Instant::now()
        };
        match client.post_json("/v1/classify", &body) {
            Ok(response) => match response.status {
                200 => {
                    stats.ok += 1;
                    stats.latency.record(begin.elapsed().as_micros() as u64);
                }
                429 => stats.shed += 1,
                503 => stats.backpressure += 1,
                504 => stats.timeouts += 1,
                status => {
                    eprintln!(
                        "connection {conn}: unexpected HTTP {status}: {}",
                        response.text()
                    );
                    stats.other_status += 1;
                }
            },
            Err(e) => {
                // Already retried with backoff inside the client; a
                // surfaced error is a real failure. Cap the noise: a
                // thousand broken connections need eight examples, not
                // a thousand.
                if conn < 8 {
                    eprintln!("connection {conn}: request failed: {e}");
                }
                stats.io_errors += 1;
            }
        }
    }
    stats.retries = client.retries();
    stats
}

/// Runs the configured load against `cfg.addr` and returns the merged
/// tallies. One thread per connection; the open-loop anchor is captured
/// once, here, before any thread spawns, so every intended-time grid is
/// a pure function of `(anchor, connection, request index)`. Each
/// connection's grid is phase-offset by `interval · conn / connections`:
/// the aggregate arrival rate is unchanged but spread evenly across the
/// interval instead of landing as one synchronized burst per tick — the
/// burst would measure the fleet's own thundering herd, not the server.
/// The phase is a fixed function of the connection index, so the grid
/// stays immovable and coordinated-omission-honest.
pub fn drive(cfg: &LoadConfig) -> LoadStats {
    let started = Instant::now();
    let cfg = Arc::new(cfg.clone());
    let workers: Vec<_> = (0..cfg.connections)
        .map(|conn| {
            let cfg = Arc::clone(&cfg);
            let phase = cfg
                .interval
                .mul_f64(conn as f64 / cfg.connections.max(1) as f64);
            let schedule = OpenLoopSchedule::new(started + phase, cfg.interval);
            thread::Builder::new()
                .name(format!("loadgen-{conn}"))
                .stack_size(CONN_STACK_BYTES)
                .spawn(move || drive_connection(conn, &cfg, schedule))
                .expect("spawn load-connection thread")
        })
        .collect();
    let mut all = LoadStats::default();
    for worker in workers {
        all.absorb(worker.join().expect("load thread panicked"));
    }
    all.wall_s = started.elapsed().as_secs_f64();
    all
}

/// Writes a latency histogram as JSONL: one header object carrying the
/// scalar stats and the resolution, then one `{"le_us", "count"}` object
/// per non-empty bucket. Exactly the [`LogHistogram::restore`] inputs,
/// so the file round-trips back into a histogram.
pub fn write_histogram_jsonl(path: &Path, hist: &LogHistogram) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let header = Json::Obj(vec![
        ("kind".into(), Json::Str("latency_histogram_us".to_string())),
        ("sub_bits".into(), Json::Num(hist.sub_bits() as f64)),
        ("count".into(), Json::Num(hist.count() as f64)),
        ("sum_us".into(), Json::Num(hist.sum() as f64)),
        (
            "min_us".into(),
            Json::Num(if hist.is_empty() {
                0.0
            } else {
                hist.min() as f64
            }),
        ),
        ("max_us".into(), Json::Num(hist.max() as f64)),
        ("p50_us".into(), Json::Num(hist.quantile(0.50) as f64)),
        ("p99_us".into(), Json::Num(hist.quantile(0.99) as f64)),
    ]);
    let mut text = header.to_json() + "\n";
    for (edge, count) in hist.nonzero_buckets() {
        let line = Json::Obj(vec![
            ("le_us".into(), Json::Num(edge as f64)),
            ("count".into(), Json::Num(count as f64)),
        ]);
        text.push_str(&line.to_json());
        text.push('\n');
    }
    let mut file =
        std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    file.write_all(text.as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_rates_are_consistent() {
        let mut stats = LoadStats {
            ok: 80,
            shed: 15,
            backpressure: 5,
            wall_s: 2.0,
            ..LoadStats::default()
        };
        for us in [100u64, 200, 400] {
            stats.latency.record(us);
        }
        assert_eq!(stats.total(), 100);
        assert_eq!(stats.dropped(), 0);
        assert!((stats.throughput_rps() - 40.0).abs() < 1e-9);
        assert!((stats.shed_rate() - 0.20).abs() < 1e-9);
        assert!(stats.quantile_us(1.0) >= 400);
        let empty = LoadStats::default();
        assert_eq!(empty.shed_rate(), 0.0);
    }

    #[test]
    fn load_images_are_deterministic_and_distinct() {
        let a = load_image(64, 7);
        assert_eq!(a, load_image(64, 7));
        assert_ne!(a, load_image(64, 8), "seed must vary the contents");
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn histogram_jsonl_round_trips() {
        let mut hist = LogHistogram::new(LATENCY_SUB_BITS);
        for us in [90u64, 450, 450, 12_000, 300_000] {
            hist.record(us);
        }
        let dir = std::env::temp_dir().join(format!("xbar_loadcore_{}", std::process::id()));
        let path = dir.join("hist.jsonl");
        write_histogram_jsonl(&path, &hist).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let mut lines = text.lines();
        let header = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("kind").and_then(Json::as_str),
            Some("latency_histogram_us")
        );
        assert_eq!(header.get("count").and_then(Json::as_u64), Some(5));
        let buckets: Vec<(u64, u64)> = lines
            .map(|l| {
                let j = Json::parse(l).unwrap();
                (
                    j.get("le_us").and_then(Json::as_u64).unwrap(),
                    j.get("count").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect();
        let restored = LogHistogram::restore(
            header.get("sub_bits").and_then(Json::as_u64).unwrap() as u32,
            &buckets,
            header.get("sum_us").and_then(Json::as_u64).unwrap() as u128,
            header.get("min_us").and_then(Json::as_u64).unwrap(),
            header.get("max_us").and_then(Json::as_u64).unwrap(),
        )
        .unwrap();
        assert_eq!(restored, hist);
    }
}
