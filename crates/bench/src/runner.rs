//! Shared helpers for the experiment binaries: CLI parsing, run-lifecycle
//! observability ([`RunContext`]) and crossbar-accuracy evaluation of
//! trained scenarios.

use crate::report::Table;
use crate::scenario::{ExperimentScale, TrainedModel};
use std::path::PathBuf;
use xbar_core::pipeline::{map_to_crossbars, MapConfig, MapReport};
use xbar_data::{Dataset, Split};
use xbar_nn::train::{evaluate, DataRef};
use xbar_obs::sink::{self, RunInfo};
use xbar_prune::PruneMethod;
use xbar_sim::params::CrossbarParams;

/// Crossbar sizes swept by the paper's figures.
pub const SIZES: [usize; 3] = [16, 32, 64];

/// Whether a binary-specific flag stands alone or consumes the next
/// argument as its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// A boolean switch (`--verify`).
    Flag,
    /// Takes one value (`--panel a`).
    Value,
}

/// The CLI flags shared by every experiment binary, plus whatever
/// binary-specific flags the caller declared.
///
/// Common flags: `--full` / `--smoke` / `--quick` (scale preset),
/// `--seed <n>`, `--quiet`, `--trace-out <path>`.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Experiment scale preset.
    pub scale: ExperimentScale,
    /// Name of the chosen preset (`quick`, `full`, `smoke`).
    pub scale_name: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Suppress live stderr progress.
    pub quiet: bool,
    /// Where to write the JSONL trace, if anywhere.
    pub trace_out: Option<PathBuf>,
    extras: Vec<(String, Option<String>)>,
}

impl CommonArgs {
    /// Parses `args` (without the program name) against the common flags
    /// plus the caller's `extra` flag declarations. Unknown flags and
    /// missing values produce an error message instead of being silently
    /// swallowed.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the offending argument.
    pub fn try_parse(
        args: impl IntoIterator<Item = String>,
        extra: &[(&str, Arity)],
    ) -> Result<Self, String> {
        let mut out = CommonArgs {
            scale: ExperimentScale::quick(),
            scale_name: "quick",
            seed: 42,
            quiet: false,
            trace_out: None,
            extras: Vec::new(),
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => {
                    out.scale = ExperimentScale::full();
                    out.scale_name = "full";
                }
                "--smoke" => {
                    out.scale = ExperimentScale::smoke();
                    out.scale_name = "smoke";
                }
                "--quick" => {
                    out.scale = ExperimentScale::quick();
                    out.scale_name = "quick";
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| format!("--seed must be an integer, got {v:?}"))?;
                }
                "--quiet" => out.quiet = true,
                "--trace-out" => {
                    let v = args.next().ok_or("--trace-out needs a path")?;
                    out.trace_out = Some(PathBuf::from(v));
                }
                other => match extra.iter().find(|(flag, _)| *flag == other) {
                    Some((flag, Arity::Flag)) => out.extras.push((flag.to_string(), None)),
                    Some((flag, Arity::Value)) => {
                        let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
                        out.extras.push((flag.to_string(), Some(v)));
                    }
                    None => {
                        let mut supported = String::from(
                            "--full --smoke --quick --seed <n> --quiet --trace-out <path>",
                        );
                        for (flag, arity) in extra {
                            supported.push(' ');
                            supported.push_str(flag);
                            if *arity == Arity::Value {
                                supported.push_str(" <v>");
                            }
                        }
                        return Err(format!(
                            "unknown argument {other:?}; supported: {supported}"
                        ));
                    }
                },
            }
        }
        Ok(out)
    }

    /// The value of a declared `Arity::Value` flag, if given (last wins).
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.extras
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether a declared flag appeared at all.
    pub fn is_set(&self, flag: &str) -> bool {
        self.extras.iter().any(|(f, _)| f == flag)
    }
}

/// Run lifecycle for an experiment binary: parses the CLI, switches the
/// live stderr reporter on (unless `--quiet`), accumulates manifest config,
/// and on [`RunContext::finish`] prints the phase-timing table and writes
/// the JSONL trace (if `--trace-out` was given).
#[derive(Debug)]
pub struct RunContext {
    /// Parsed CLI flags.
    pub args: CommonArgs,
    info: RunInfo,
}

impl RunContext {
    /// Parses the process arguments; on a CLI error prints the message to
    /// stderr and exits with status 2.
    pub fn init(bin: &str, extra: &[(&str, Arity)]) -> Self {
        match CommonArgs::try_parse(std::env::args().skip(1), extra) {
            Ok(args) => Self::from_args(bin, args),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Builds a context from already-parsed arguments (testable core of
    /// [`RunContext::init`]).
    pub fn from_args(bin: &str, args: CommonArgs) -> Self {
        sink::stderr_echo(!args.quiet);
        let mut info = RunInfo::new(bin);
        info.seed = args.seed;
        info.scale = args.scale_name.to_string();
        for (flag, value) in &args.extras {
            info.config.push((
                flag.trim_start_matches('-').to_string(),
                value.clone().unwrap_or_else(|| "true".to_string()),
            ));
        }
        RunContext { args, info }
    }

    /// Adds a manifest config pair (sparsity, crossbar size, …).
    pub fn config(&mut self, key: impl Into<String>, value: impl ToString) {
        self.info.config.push((key.into(), value.to_string()));
    }

    /// Prints the phase-timing summary table and writes the JSONL trace if
    /// `--trace-out` was given. Call once, at the end of `main`.
    pub fn finish(self) {
        let phases = sink::phase_summaries();
        if !phases.is_empty() {
            let mut table = Table::new("Phase timings", &["Phase", "Total (s)", "Count"]);
            for p in &phases {
                table.push_row(vec![
                    p.name.to_string(),
                    format!("{:.2}", p.total_us as f64 / 1e6),
                    p.count.to_string(),
                ]);
            }
            println!("{}", table.to_markdown());
        }
        if let Some(path) = &self.args.trace_out {
            match sink::write_jsonl(path, &self.info) {
                Ok(()) => println!("[trace written to {}]", path.display()),
                Err(e) => eprintln!("error: failed writing trace {}: {e}", path.display()),
            }
        }
    }
}

/// Builds the [`MapConfig`] for a trained model at a given crossbar size,
/// matching the model's pruning method for the `T` transformation.
pub fn map_config(tm: &TrainedModel, size: usize, seed: u64) -> MapConfig {
    MapConfig {
        params: CrossbarParams::with_size(size),
        method: effective_method(tm),
        seed,
        ..Default::default()
    }
}

fn effective_method(tm: &TrainedModel) -> PruneMethod {
    if tm.masks.is_some() {
        tm.scenario.method
    } else {
        PruneMethod::None
    }
}

/// Maps a trained model onto non-ideal crossbars and evaluates test
/// accuracy.
///
/// # Panics
///
/// Panics on internal pipeline errors (bugs, not user errors).
pub fn crossbar_accuracy(tm: &TrainedModel, data: &Dataset, cfg: &MapConfig) -> (f64, MapReport) {
    let (mut noisy, report) = map_to_crossbars(&tm.model, cfg).expect("mapping pipeline");
    let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
        .expect("dataset well-formed");
    let acc = evaluate(&mut noisy, test, 64).expect("evaluation shape-safe");
    (acc, report)
}

/// Number of device-variation seeds averaged per reported accuracy.
pub const DEFAULT_REPS: usize = 3;

/// Relative synaptic weight error `‖W′−W‖₂ / ‖W‖₂` between a model and its
/// crossbar-mapped version, pooled over every conv/linear weight. This is a
/// deterministic, classification-noise-free measure of how much damage the
/// mapping did, naturally weighted toward the large (important) weights.
///
/// # Panics
///
/// Panics if the models have different architectures.
pub fn relative_weight_error(original: &xbar_nn::Sequential, mapped: &xbar_nn::Sequential) -> f64 {
    let mut orig = original.clone();
    let mut map = mapped.clone();
    let o_params = orig.params_mut();
    let mut m_params = map.params_mut();
    assert_eq!(o_params.len(), m_params.len(), "architecture mismatch");
    let mut err_sq = 0.0f64;
    let mut norm_sq = 0.0f64;
    for (o, m) in o_params.into_iter().zip(m_params.iter_mut()) {
        if !o.kind.is_synaptic() {
            continue;
        }
        for (&a, &b) in o.value.as_slice().iter().zip(m.value.as_slice()) {
            let d = (a - b) as f64;
            err_sq += d * d;
            norm_sq += (a as f64) * (a as f64);
        }
    }
    (err_sq / norm_sq.max(f64::MIN_POSITIVE)).sqrt()
}

/// Like [`crossbar_accuracy`] but averaged over `reps` device-variation
/// seeds (the circuit is deterministic; only the Gaussian programming
/// variation changes between repetitions). Returns the mean accuracy and the
/// last repetition's report (NF statistics barely vary between seeds).
///
/// # Panics
///
/// Panics if `reps` is zero or on internal pipeline errors.
pub fn crossbar_accuracy_avg(
    tm: &TrainedModel,
    data: &Dataset,
    cfg: &MapConfig,
    reps: usize,
) -> (f64, MapReport) {
    assert!(reps > 0, "need at least one repetition");
    let mut total = 0.0f64;
    let mut last_report = None;
    for r in 0..reps {
        let mut rep_cfg = *cfg;
        rep_cfg.seed = cfg.seed.wrapping_add(1000 * r as u64);
        let (acc, report) = crossbar_accuracy(tm, data, &rep_cfg);
        total += acc;
        last_report = Some(report);
    }
    (total / reps as f64, last_report.expect("reps > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DatasetKind, Scenario};
    use xbar_nn::vgg::VggVariant;

    #[test]
    fn try_parse_defaults() {
        let args = CommonArgs::try_parse(Vec::new(), &[]).unwrap();
        assert_eq!(args.scale_name, "quick");
        assert_eq!(args.seed, 42);
        assert!(!args.quiet);
        assert!(args.trace_out.is_none());
    }

    #[test]
    fn try_parse_common_flags() {
        let argv = [
            "--smoke",
            "--seed",
            "7",
            "--quiet",
            "--trace-out",
            "t.jsonl",
        ];
        let args = CommonArgs::try_parse(argv.iter().map(|s| s.to_string()), &[]).unwrap();
        assert_eq!(args.scale_name, "smoke");
        assert_eq!(args.seed, 7);
        assert!(args.quiet);
        assert_eq!(
            args.trace_out.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
    }

    #[test]
    fn try_parse_extras_value_and_flag() {
        let argv = ["--panel", "b", "--verify"];
        let extra = [("--panel", Arity::Value), ("--verify", Arity::Flag)];
        let args = CommonArgs::try_parse(argv.iter().map(|s| s.to_string()), &extra).unwrap();
        assert_eq!(args.get("--panel"), Some("b"));
        assert!(args.is_set("--verify"));
        assert!(!args.is_set("--other"));
    }

    #[test]
    fn try_parse_rejects_unknown_flag() {
        let err = CommonArgs::try_parse(["--bogus".to_string()], &[]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        assert!(
            err.contains("--trace-out"),
            "usage should list flags: {err}"
        );
    }

    #[test]
    fn try_parse_rejects_missing_value() {
        let err = CommonArgs::try_parse(["--seed".to_string()], &[]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        let extra = [("--panel", Arity::Value)];
        let err = CommonArgs::try_parse(["--panel".to_string()], &extra).unwrap_err();
        assert!(err.contains("--panel"), "{err}");
    }

    #[test]
    fn try_parse_rejects_bad_seed() {
        let argv = ["--seed", "abc"];
        let err = CommonArgs::try_parse(argv.iter().map(|s| s.to_string()), &[]).unwrap_err();
        assert!(err.contains("integer"), "{err}");
    }

    #[test]
    fn try_parse_does_not_swallow_following_flag() {
        // The old parser silently consumed the argument after any unknown
        // "--flag"; the rewrite must reject the unknown flag instead.
        let argv = ["--panle", "a", "--smoke"];
        let err = CommonArgs::try_parse(argv.iter().map(|s| s.to_string()), &[]).unwrap_err();
        assert!(err.contains("--panle"), "{err}");
    }

    #[test]
    fn relative_weight_error_is_zero_for_identical_models() {
        let m = xbar_nn::vgg::VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(3);
        assert_eq!(relative_weight_error(&m, &m.clone()), 0.0);
    }

    #[test]
    fn relative_weight_error_scales_with_perturbation() {
        let m = xbar_nn::vgg::VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(4);
        let mut perturbed = m.clone();
        for p in perturbed.params_mut() {
            if p.kind.is_synaptic() {
                p.value.map_in_place(|x| x * 1.1);
            }
        }
        let err = relative_weight_error(&m, &perturbed);
        assert!((err - 0.1).abs() < 1e-3, "10% scale = 10% error, got {err}");
    }

    #[test]
    fn accuracy_averaging_reduces_to_single_run_for_reps_one() {
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::None,
            ExperimentScale::smoke(),
        );
        let data = sc.dataset();
        let tm = sc.train_model(&data);
        let cfg = map_config(&tm, 16, 5);
        let (single, _) = crossbar_accuracy(&tm, &data, &cfg);
        let (avg, _) = crossbar_accuracy_avg(&tm, &data, &cfg, 1);
        assert_eq!(single, avg);
    }

    #[test]
    fn map_config_inherits_method() {
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::ChannelFilter,
            ExperimentScale::smoke(),
        );
        let data = sc.dataset();
        let tm = sc.train_model(&data);
        let cfg = map_config(&tm, 32, 1);
        assert_eq!(cfg.method, PruneMethod::ChannelFilter);
        assert_eq!(cfg.params.rows, 32);
        let (acc, report) = crossbar_accuracy(&tm, &data, &cfg);
        assert!((0.0..=1.0).contains(&acc));
        assert!(report.crossbar_count() > 0);
    }
}
