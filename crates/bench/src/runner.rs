//! Shared helpers for the experiment binaries: CLI parsing and
//! crossbar-accuracy evaluation of trained scenarios.

use crate::scenario::{ExperimentScale, TrainedModel};
use xbar_core::pipeline::{map_to_crossbars, MapConfig, MapReport};
use xbar_data::{Dataset, Split};
use xbar_nn::train::{evaluate, DataRef};
use xbar_prune::PruneMethod;
use xbar_sim::params::CrossbarParams;

/// Crossbar sizes swept by the paper's figures.
pub const SIZES: [usize; 3] = [16, 32, 64];

/// Parses the common CLI flags shared by every experiment binary:
/// `--full`, `--smoke`, `--seed <n>`. Returns the scale and seed.
///
/// # Panics
///
/// Panics (with a usage message) on unknown flags.
pub fn parse_common_args() -> (ExperimentScale, u64) {
    let mut scale = ExperimentScale::quick();
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => scale = ExperimentScale::full(),
            "--smoke" => scale = ExperimentScale::smoke(),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            // Binary-specific selectors (--panel, --which, --size, --method,
            // …) are parsed by the individual binaries; skip them and their
            // value here.
            other if other.starts_with("--") => {
                let _ = args.next();
            }
            other => panic!("unknown argument {other}; supported: --full --smoke --seed <n> plus binary-specific --flags"),
        }
    }
    (scale, seed)
}

/// Returns the value following `--panel`/`--which` on the command line, if
/// present.
pub fn panel_arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Builds the [`MapConfig`] for a trained model at a given crossbar size,
/// matching the model's pruning method for the `T` transformation.
pub fn map_config(tm: &TrainedModel, size: usize, seed: u64) -> MapConfig {
    MapConfig {
        params: CrossbarParams::with_size(size),
        method: effective_method(tm),
        seed,
        ..Default::default()
    }
}

fn effective_method(tm: &TrainedModel) -> PruneMethod {
    if tm.masks.is_some() {
        tm.scenario.method
    } else {
        PruneMethod::None
    }
}

/// Maps a trained model onto non-ideal crossbars and evaluates test
/// accuracy.
///
/// # Panics
///
/// Panics on internal pipeline errors (bugs, not user errors).
pub fn crossbar_accuracy(tm: &TrainedModel, data: &Dataset, cfg: &MapConfig) -> (f64, MapReport) {
    let (mut noisy, report) = map_to_crossbars(&tm.model, cfg).expect("mapping pipeline");
    let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
        .expect("dataset well-formed");
    let acc = evaluate(&mut noisy, test, 64).expect("evaluation shape-safe");
    (acc, report)
}

/// Number of device-variation seeds averaged per reported accuracy.
pub const DEFAULT_REPS: usize = 3;

/// Relative synaptic weight error `‖W′−W‖₂ / ‖W‖₂` between a model and its
/// crossbar-mapped version, pooled over every conv/linear weight. This is a
/// deterministic, classification-noise-free measure of how much damage the
/// mapping did, naturally weighted toward the large (important) weights.
///
/// # Panics
///
/// Panics if the models have different architectures.
pub fn relative_weight_error(original: &xbar_nn::Sequential, mapped: &xbar_nn::Sequential) -> f64 {
    let mut orig = original.clone();
    let mut map = mapped.clone();
    let o_params = orig.params_mut();
    let mut m_params = map.params_mut();
    assert_eq!(o_params.len(), m_params.len(), "architecture mismatch");
    let mut err_sq = 0.0f64;
    let mut norm_sq = 0.0f64;
    for (o, m) in o_params.into_iter().zip(m_params.iter_mut()) {
        if !o.kind.is_synaptic() {
            continue;
        }
        for (&a, &b) in o.value.as_slice().iter().zip(m.value.as_slice()) {
            let d = (a - b) as f64;
            err_sq += d * d;
            norm_sq += (a as f64) * (a as f64);
        }
    }
    (err_sq / norm_sq.max(f64::MIN_POSITIVE)).sqrt()
}

/// Like [`crossbar_accuracy`] but averaged over `reps` device-variation
/// seeds (the circuit is deterministic; only the Gaussian programming
/// variation changes between repetitions). Returns the mean accuracy and the
/// last repetition's report (NF statistics barely vary between seeds).
///
/// # Panics
///
/// Panics if `reps` is zero or on internal pipeline errors.
pub fn crossbar_accuracy_avg(
    tm: &TrainedModel,
    data: &Dataset,
    cfg: &MapConfig,
    reps: usize,
) -> (f64, MapReport) {
    assert!(reps > 0, "need at least one repetition");
    let mut total = 0.0f64;
    let mut last_report = None;
    for r in 0..reps {
        let mut rep_cfg = *cfg;
        rep_cfg.seed = cfg.seed.wrapping_add(1000 * r as u64);
        let (acc, report) = crossbar_accuracy(tm, data, &rep_cfg);
        total += acc;
        last_report = Some(report);
    }
    (total / reps as f64, last_report.expect("reps > 0"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DatasetKind, Scenario};
    use xbar_nn::vgg::VggVariant;

    #[test]
    fn relative_weight_error_is_zero_for_identical_models() {
        let m = xbar_nn::vgg::VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(3);
        assert_eq!(relative_weight_error(&m, &m.clone()), 0.0);
    }

    #[test]
    fn relative_weight_error_scales_with_perturbation() {
        let m = xbar_nn::vgg::VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.125)
            .build(4);
        let mut perturbed = m.clone();
        for p in perturbed.params_mut() {
            if p.kind.is_synaptic() {
                p.value.map_in_place(|x| x * 1.1);
            }
        }
        let err = relative_weight_error(&m, &perturbed);
        assert!((err - 0.1).abs() < 1e-3, "10% scale = 10% error, got {err}");
    }

    #[test]
    fn accuracy_averaging_reduces_to_single_run_for_reps_one() {
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::None,
            ExperimentScale::smoke(),
        );
        let data = sc.dataset();
        let tm = sc.train_model(&data);
        let cfg = map_config(&tm, 16, 5);
        let (single, _) = crossbar_accuracy(&tm, &data, &cfg);
        let (avg, _) = crossbar_accuracy_avg(&tm, &data, &cfg, 1);
        assert_eq!(single, avg);
    }

    #[test]
    fn map_config_inherits_method() {
        let sc = Scenario::new(
            VggVariant::Vgg11,
            DatasetKind::Cifar10Like,
            PruneMethod::ChannelFilter,
            ExperimentScale::smoke(),
        );
        let data = sc.dataset();
        let tm = sc.train_model(&data);
        let cfg = map_config(&tm, 32, 1);
        assert_eq!(cfg.method, PruneMethod::ChannelFilter);
        assert_eq!(cfg.params.rows, 32);
        let (acc, report) = crossbar_accuracy(&tm, &data, &cfg);
        assert!((0.0..=1.0).contains(&acc));
        assert!(report.crossbar_count() > 0);
    }
}
