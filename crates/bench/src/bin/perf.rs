//! Solver-performance benchmark: cold vs warm-started vs cached mapping.
//!
//! Maps a width-scaled VGG11 onto non-ideal crossbars three ways — solve
//! cache off (cold), cache replay (`CacheMode::Full`), and warm-started
//! verification (`CacheMode::Seed`) — times each, checks the mapped weights
//! are bit-identical across all of them, and writes the timings plus cache
//! counters to `results/BENCH_map.json`.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::perfmap::perf`]; the
//! suite orchestrator runs the same code (serially — it toggles the global
//! solve-cache mode and measures wall time).
//!
//! Usage: `cargo run --release -p xbar-bench --bin perf --
//! [--smoke|--quick|--full] [--seed N] [--size N] [--quiet]
//! [--trace-out <path>]`

use std::process::ExitCode;
use xbar_bench::artifacts::{perfmap, ArtifactCtx};
use xbar_bench::runner::{Arity, RunContext};

fn main() -> ExitCode {
    let mut ctx = RunContext::init("perf", &[("--size", Arity::Value)]);
    let size = match ctx.args.get("--size").map(str::parse::<usize>) {
        None => 32,
        Some(Ok(n)) if n >= 4 => n,
        Some(_) => {
            eprintln!("error: --size must be an integer >= 4");
            return ExitCode::from(2);
        }
    };
    ctx.config("crossbar_size", size);
    ctx.config("width_multiplier", ctx.args.scale.width);
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let result = perfmap::perf(&actx, size);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
