//! Solver-performance benchmark: cold vs warm-started vs cached mapping.
//!
//! Maps a width-scaled VGG11 onto non-ideal crossbars three ways — solve
//! cache off (cold), cache replay (`CacheMode::Full`), and warm-started
//! verification (`CacheMode::Seed`) — times each, checks the mapped weights
//! are bit-identical across all of them, and writes the timings plus cache
//! counters to `results/BENCH_map.json`.
//!
//! This models the repeated-sweep workload of the experiment binaries
//! (faults × repair, rearrange A/B, WCT epochs), which re-map identical or
//! near-identical weight matrices per scenario.
//!
//! Usage: `cargo run --release -p xbar-bench --bin perf --
//! [--smoke|--quick|--full] [--seed N] [--size N] [--quiet]
//! [--trace-out <path>]`

use std::process::ExitCode;
use std::time::Instant;
use xbar_bench::report::results_dir;
use xbar_bench::runner::{Arity, RunContext};
use xbar_core::pipeline::{map_to_crossbars, MapConfig, MapReport};
use xbar_nn::vgg::{VggConfig, VggVariant};
use xbar_nn::Sequential;
use xbar_obs::json::Json;
use xbar_obs::metrics::counter_value;
use xbar_sim::params::CrossbarParams;
use xbar_sim::CacheMode;

/// Pools every synaptic weight of the mapped model for bitwise comparison.
fn synaptic_weights(model: &Sequential) -> Vec<f32> {
    let mut model = model.clone();
    let mut out = Vec::new();
    for p in model.params_mut() {
        if p.kind.is_synaptic() {
            out.extend_from_slice(p.value.as_slice());
        }
    }
    out
}

fn timed_map(model: &Sequential, cfg: &MapConfig) -> (f64, Sequential, MapReport) {
    let start = Instant::now();
    let (mapped, report) = map_to_crossbars(model, cfg).expect("mapping pipeline");
    (start.elapsed().as_secs_f64(), mapped, report)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() -> ExitCode {
    let mut ctx = RunContext::init("perf", &[("--size", Arity::Value)]);
    let size = match ctx.args.get("--size").map(str::parse::<usize>) {
        None => 32,
        Some(Ok(n)) if n >= 4 => n,
        Some(_) => {
            eprintln!("error: --size must be an integer >= 4");
            return ExitCode::from(2);
        }
    };
    let width = ctx.args.scale.width;
    let seed = ctx.args.seed;
    ctx.config("crossbar_size", size);
    ctx.config("width_multiplier", width);

    let model = VggConfig::new(VggVariant::Vgg11, 10)
        .width_multiplier(width)
        .build(seed);
    let mut params = CrossbarParams::with_size(size);
    params.sigma_variation = 0.05;
    let cfg = MapConfig {
        params,
        seed,
        ..Default::default()
    };

    // Cold: no caching, every tile solved from the cold initial guess.
    xbar_sim::set_solve_cache_mode(CacheMode::Off);
    let (cold_s, cold_model, cold_report) = timed_map(&model, &cfg);
    let cold_weights = synaptic_weights(&cold_model);
    eprintln!(
        "[perf] cold map: {cold_s:.3}s, {} solver sweeps",
        cold_report.solver_iterations()
    );

    // Populate, then replay from cache: the repeated-sweep workload.
    xbar_sim::set_solve_cache_mode(CacheMode::Full);
    xbar_sim::clear_solve_cache();
    let (h0, m0) = (
        counter_value("sim/solve_cache_hits"),
        counter_value("sim/solve_cache_misses"),
    );
    let (populate_s, _, _) = timed_map(&model, &cfg);
    let (cached_s, cached_model, cached_report) = timed_map(&model, &cfg);
    let hits = counter_value("sim/solve_cache_hits") - h0;
    let misses = counter_value("sim/solve_cache_misses") - m0;
    eprintln!("[perf] cached re-map: {cached_s:.3}s ({hits} hits / {misses} misses)");

    // Warm-started: each solve verifies the cached voltages in ~1 sweep.
    xbar_sim::set_solve_cache_mode(CacheMode::Seed);
    let (warm_s, warm_model, warm_report) = timed_map(&model, &cfg);
    xbar_sim::set_solve_cache_mode(CacheMode::Full);
    eprintln!(
        "[perf] warm re-map: {warm_s:.3}s, {} solver sweeps",
        warm_report.solver_iterations()
    );

    let bit_identical_cached = bits_equal(&cold_weights, &synaptic_weights(&cached_model));
    let bit_identical_warm = bits_equal(&cold_weights, &synaptic_weights(&warm_model));
    let speedup_cached = cold_s / cached_s.max(1e-12);
    let speedup_warm = cold_s / warm_s.max(1e-12);

    let out = Json::Obj(vec![
        ("bin".into(), Json::Str("perf".into())),
        ("scale".into(), Json::Str(ctx.args.scale_name.into())),
        ("network".into(), Json::Str("vgg11".into())),
        ("width_multiplier".into(), Json::Num(width)),
        ("crossbar_size".into(), Json::Num(size as f64)),
        ("seed".into(), Json::Num(seed as f64)),
        ("cold_s".into(), Json::Num(cold_s)),
        ("populate_s".into(), Json::Num(populate_s)),
        ("cached_s".into(), Json::Num(cached_s)),
        ("warm_s".into(), Json::Num(warm_s)),
        ("speedup_cached".into(), Json::Num(speedup_cached)),
        ("speedup_warm".into(), Json::Num(speedup_warm)),
        ("cache_hits".into(), Json::Num(hits as f64)),
        ("cache_misses".into(), Json::Num(misses as f64)),
        (
            "solver_sweeps_cold".into(),
            Json::Num(cold_report.solver_iterations() as f64),
        ),
        (
            "solver_sweeps_cached".into(),
            Json::Num(cached_report.solver_iterations() as f64),
        ),
        (
            "solver_sweeps_warm".into(),
            Json::Num(warm_report.solver_iterations() as f64),
        ),
        (
            "bit_identical_cached".into(),
            Json::Bool(bit_identical_cached),
        ),
        ("bit_identical_warm".into(), Json::Bool(bit_identical_warm)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join("BENCH_map.json");
    if let Err(e) = std::fs::write(&path, out.to_json() + "\n") {
        eprintln!("error: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "cold {cold_s:.3}s | cached {cached_s:.3}s ({speedup_cached:.1}x) | \
         warm {warm_s:.3}s ({speedup_warm:.1}x) -> {}",
        path.display()
    );
    ctx.finish();

    if !bit_identical_cached || !bit_identical_warm {
        eprintln!(
            "error: cached/warm mapping diverged from cold \
             (cached: {bit_identical_cached}, warm: {bit_identical_warm})"
        );
        return ExitCode::FAILURE;
    }
    if speedup_cached < 1.5 {
        eprintln!("error: cached re-map speedup {speedup_cached:.2}x below the 1.5x target");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
