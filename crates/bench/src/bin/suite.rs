//! One-command regeneration of every table and figure: enumerates the
//! artifact registry, trains each unique scenario exactly once, runs the
//! artifact generators concurrently with per-task timeouts and isolation,
//! and writes `results/suite.json`. See `xbar_bench::suite` for the
//! orchestration semantics (resume, exclusivity, gate).
//!
//! Usage: `cargo run --release -p xbar-bench --bin suite --
//! [--smoke|--quick|--full] [--seed N] [--gate] [--fresh] [--list]
//! [--only a,b,...] [--skip a,b,...] [--fail a,b,...] [--timeout SECS]
//! [--tolerance F] [--workers N] [--quiet] [--trace-out <path>]`
//!
//! * `--gate` — exit nonzero on any failed artifact, perf regression vs the
//!   committed `results/BENCH_map.json`, or generate-phase training miss.
//! * `--fresh` — ignore a previous `results/suite.json` (no resume).
//! * `--fail` — replace the named artifacts' runs with injected failures
//!   (exercises the isolation/gate paths; used by tests and CI dry runs).
//!
//! Exit codes: 0 success, 1 artifact/gate failure, 2 usage error.

use std::process::ExitCode;
use xbar_bench::report::Table;
use xbar_bench::runner::{Arity, RunContext};
use xbar_bench::suite::{default_timeout, run_suite, suite_json_path, SuiteConfig};
use xbar_bench::{artifacts, ExperimentScale};

fn parse_names(raw: Option<&str>) -> Vec<String> {
    raw.map(|s| {
        s.split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(str::to_string)
            .collect()
    })
    .unwrap_or_default()
}

fn list_registry() {
    let ctx = artifacts::ArtifactCtx::new(ExperimentScale::smoke(), "smoke", 42);
    let mut table = Table::new(
        "Suite artifacts",
        &["Artifact", "Reproduces", "Scenarios", "Exclusive"],
    );
    for spec in artifacts::registry() {
        table.push_row(vec![
            spec.name.to_string(),
            spec.paper_ref.to_string(),
            (spec.scenarios)(&ctx).len().to_string(),
            if spec.exclusive { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
}

fn main() -> ExitCode {
    let mut ctx = RunContext::init(
        "suite",
        &[
            ("--gate", Arity::Flag),
            ("--fresh", Arity::Flag),
            ("--list", Arity::Flag),
            ("--only", Arity::Value),
            ("--skip", Arity::Value),
            ("--fail", Arity::Value),
            ("--timeout", Arity::Value),
            ("--tolerance", Arity::Value),
            ("--workers", Arity::Value),
        ],
    );
    if ctx.args.is_set("--list") {
        list_registry();
        return ExitCode::SUCCESS;
    }
    // The suite prints its own one-line-per-artifact progress; the live
    // span/event echo of up to `workers` interleaved artifact runs is noise.
    xbar_obs::sink::stderr_echo(false);

    let mut cfg = SuiteConfig::new(ctx.args.scale, ctx.args.scale_name);
    cfg.seed = ctx.args.seed;
    cfg.gate = ctx.args.is_set("--gate");
    cfg.fresh = ctx.args.is_set("--fresh");
    cfg.only = parse_names(ctx.args.get("--only"));
    cfg.skip = parse_names(ctx.args.get("--skip"));
    cfg.fail = parse_names(ctx.args.get("--fail"));
    cfg.progress = !ctx.args.quiet;
    if let Some(raw) = ctx.args.get("--timeout") {
        match raw.parse::<u64>() {
            Ok(secs) if secs > 0 => cfg.timeout = std::time::Duration::from_secs(secs),
            _ => {
                eprintln!("error: --timeout must be a positive integer (seconds)");
                return ExitCode::from(2);
            }
        }
    } else {
        cfg.timeout = default_timeout(ctx.args.scale_name);
    }
    if let Some(raw) = ctx.args.get("--tolerance") {
        match raw.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => cfg.tolerance = t,
            _ => {
                eprintln!("error: --tolerance must be a fraction in [0, 1)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(raw) = ctx.args.get("--workers") {
        match raw.parse::<usize>() {
            Ok(n) if n > 0 => cfg.workers = n,
            _ => {
                eprintln!("error: --workers must be a positive integer");
                return ExitCode::from(2);
            }
        }
    }
    ctx.config("gate", cfg.gate);
    ctx.config("workers", cfg.workers);
    ctx.config("timeout_s", cfg.timeout.as_secs());

    let report = match run_suite(&cfg) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut table = Table::new(
        format!(
            "Suite run: {} scale, seed {}, {} worker(s), {:.1}s",
            report.scale, report.seed, report.workers, report.wall_s
        ),
        &["Artifact", "Reproduces", "Status", "Wall (s)", "Outputs"],
    );
    for a in &report.artifacts {
        table.push_row(vec![
            a.name.clone(),
            a.paper_ref.clone(),
            a.status.as_str().to_string(),
            format!("{:.1}", a.wall_s),
            a.outputs.len().to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "scenarios: {} unique | prepare {} trained / {} cached | \
         generate {} cached / {} retrained",
        report.scenarios.unique,
        report.scenarios.prepare_misses,
        report.scenarios.prepare_hits,
        report.scenarios.generate_hits,
        report.scenarios.generate_misses,
    );
    println!("[suite report written to {}]", suite_json_path().display());
    for failure in &report.gate_failures {
        eprintln!("FAIL: {failure}");
    }
    ctx.finish();
    if report.failed() {
        eprintln!(
            "suite: {} failure(s); see {}",
            report.gate_failures.len(),
            suite_json_path().display()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
