//! Load generator for `xbar-serve`: drives N concurrent keep-alive
//! connections at a running server and reports latency percentiles and
//! throughput to `results/`.
//!
//! Usage: `cargo run --release -p xbar-bench --bin loadgen --
//! --addr 127.0.0.1:7878 [--connections 32] [--requests 25]
//! [--input-len 3072] [--interval-ms N] [--json-floats]
//! [--hist-out PATH]`
//!
//! The connection fleet, schedule, and outcome accounting live in
//! [`xbar_bench::loadcore`] — the same machinery the suite's `serve`
//! benchmark artifact uses, so external and in-process measurements
//! cannot drift apart. Latencies are recorded in a log-bucketed histogram
//! ([`xbar_obs::LogHistogram`]), so the tail percentiles stay accurate at
//! any request count; `--hist-out PATH` additionally writes the raw
//! histogram buckets as JSONL for offline analysis or CI artifacts.
//!
//! By default each connection runs closed-loop (next request after the
//! previous response). `--interval-ms N` switches to an open-loop
//! schedule: each connection *intends* to send every N ms and latency is
//! measured from the intended send time, so a stalled server inflates the
//! percentiles instead of silently slowing the workload —
//! coordinated-omission-honest reporting.
//!
//! Exit status is non-zero if any request failed with something other
//! than explicit overload — admission shedding (HTTP 429) and
//! backpressure (HTTP 503) are the server working as designed; the
//! acceptance bar for the serving demo is "zero dropped errors".

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use xbar_bench::loadcore::{self, LoadConfig};
use xbar_bench::report::Table;
use xbar_bench::runner::{Arity, RunContext};

fn quantile_ms(stats: &loadcore::LoadStats, q: f64) -> f64 {
    stats.quantile_us(q) as f64 / 1e3
}

fn parse_count(ctx: &RunContext, flag: &str, default: usize) -> usize {
    match ctx.args.get(flag) {
        None => default,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: {flag} must be a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        },
    }
}

fn main() -> ExitCode {
    let mut ctx = RunContext::init(
        "loadgen",
        &[
            ("--addr", Arity::Value),
            ("--connections", Arity::Value),
            ("--requests", Arity::Value),
            ("--input-len", Arity::Value),
            ("--interval-ms", Arity::Value),
            ("--json-floats", Arity::Flag),
            ("--hist-out", Arity::Value),
        ],
    );
    let Some(addr) = ctx.args.get("--addr").map(str::to_string) else {
        eprintln!("error: --addr <host:port> is required (start a server with the serve binary)");
        return ExitCode::from(2);
    };
    let connections = parse_count(&ctx, "--connections", 32);
    let requests = parse_count(&ctx, "--requests", 25);
    let input_len = parse_count(&ctx, "--input-len", 3 * 32 * 32);
    // 0 = closed-loop (the default); N>0 = open-loop with an intended send
    // every N ms per connection.
    let interval_ms: u64 = match ctx.args.get("--interval-ms") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: --interval-ms must be a non-negative integer, got {raw:?}");
                return ExitCode::from(2);
            }
        },
    };
    let hist_out = ctx.args.get("--hist-out").map(PathBuf::from);
    let as_json_floats = ctx.args.is_set("--json-floats");
    let seed = ctx.args.seed;
    ctx.config("addr", &addr);
    ctx.config("connections", connections);
    ctx.config("requests_per_connection", requests);
    ctx.config("interval_ms", interval_ms);

    eprintln!(
        "driving {connections} connections x {requests} requests at http://{addr} \
         ({} bodies, {})",
        if as_json_floats {
            "JSON float"
        } else {
            "base64"
        },
        if interval_ms > 0 {
            format!("open-loop every {interval_ms} ms")
        } else {
            "closed-loop".to_string()
        }
    );
    let all = loadcore::drive(&LoadConfig {
        addr,
        connections,
        requests_per_connection: requests,
        input_len,
        interval: Duration::from_millis(interval_ms),
        as_json_floats,
        seed,
        timeout: Duration::from_secs(30),
    });

    let mut table = Table::new(
        "Serving load test",
        &[
            "Connections",
            "Requests",
            "OK",
            "429",
            "503",
            "504",
            "Errors",
            "Retries",
            "Throughput (req/s)",
            "Mean (ms)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "Max (ms)",
        ],
    );
    table.push_row(vec![
        connections.to_string(),
        (connections * requests).to_string(),
        all.ok.to_string(),
        all.shed.to_string(),
        all.backpressure.to_string(),
        all.timeouts.to_string(),
        (all.other_status + all.io_errors).to_string(),
        all.retries.to_string(),
        format!("{:.1}", all.throughput_rps()),
        format!("{:.2}", all.latency.mean() / 1e3),
        format!("{:.2}", quantile_ms(&all, 0.50)),
        format!("{:.2}", quantile_ms(&all, 0.95)),
        format!("{:.2}", quantile_ms(&all, 0.99)),
        format!(
            "{:.2}",
            if all.latency.is_empty() {
                0.0
            } else {
                all.latency.max() as f64 / 1e3
            }
        ),
    ]);
    println!("{}", table.to_markdown());
    table.emit("loadgen").expect("write results");
    if let Some(path) = &hist_out {
        match loadcore::write_histogram_jsonl(path, &all.latency) {
            Ok(()) => eprintln!("wrote latency histogram to {}", path.display()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ctx.finish();

    let dropped = all.dropped();
    if dropped > 0 || all.ok == 0 {
        eprintln!("FAILED: {dropped} non-overload errors, {} ok", all.ok);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
