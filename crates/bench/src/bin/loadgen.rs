//! Load generator for `xbar-serve`: drives N concurrent keep-alive
//! connections at a running server and reports latency percentiles and
//! throughput to `results/`.
//!
//! Usage: `cargo run --release -p xbar-bench --bin loadgen --
//! --addr 127.0.0.1:7878 [--connections 32] [--requests 25]
//! [--input-len 3072] [--interval-ms N] [--json-floats]`
//!
//! Latencies are recorded in a log-bucketed histogram
//! ([`xbar_obs::LogHistogram`]), so the tail percentiles stay accurate at
//! any request count. By default each connection runs closed-loop (next
//! request after the previous response). `--interval-ms N` switches to an
//! open-loop schedule: each connection *intends* to send every N ms and
//! latency is measured from the intended send time, so a stalled server
//! inflates the percentiles instead of silently slowing the workload —
//! coordinated-omission-honest reporting.
//!
//! Exit status is non-zero if any request failed with something other than
//! explicit backpressure (HTTP 503) — the acceptance bar for the serving
//! demo is "zero dropped errors".

use std::process::ExitCode;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use xbar_bench::openloop::OpenLoopSchedule;
use xbar_bench::report::Table;
use xbar_bench::runner::{Arity, RunContext};
use xbar_obs::LogHistogram;
use xbar_serve::base64::encode_f32;
use xbar_serve::{RetryPolicy, RetryingClient};

/// Sub-bucket precision of the latency histograms: 2^5 sub-buckets per
/// power of two, ~3% relative error on reported quantiles.
const LATENCY_SUB_BITS: u32 = 5;

/// Per-connection outcome tallies and successful-request latencies.
struct ConnStats {
    latency: LogHistogram,
    ok: u64,
    backpressure: u64,
    timeouts: u64,
    other_status: u64,
    io_errors: u64,
    retries: u64,
}

impl Default for ConnStats {
    fn default() -> Self {
        ConnStats {
            latency: LogHistogram::new(LATENCY_SUB_BITS),
            ok: 0,
            backpressure: 0,
            timeouts: 0,
            other_status: 0,
            io_errors: 0,
            retries: 0,
        }
    }
}

/// Deterministic pseudo-image: contents do not matter for load, but
/// varying them defeats any accidental caching.
fn image(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            (x >> 33) as f32 / u32::MAX as f32 - 0.25
        })
        .collect()
}

fn quantile_ms(h: &LogHistogram, q: f64) -> f64 {
    h.quantile(q) as f64 / 1e3
}

fn parse_count(ctx: &RunContext, flag: &str, default: usize) -> usize {
    match ctx.args.get(flag) {
        None => default,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: {flag} must be a positive integer, got {raw:?}");
                std::process::exit(2);
            }
        },
    }
}

fn main() -> ExitCode {
    let mut ctx = RunContext::init(
        "loadgen",
        &[
            ("--addr", Arity::Value),
            ("--connections", Arity::Value),
            ("--requests", Arity::Value),
            ("--input-len", Arity::Value),
            ("--interval-ms", Arity::Value),
            ("--json-floats", Arity::Flag),
        ],
    );
    let Some(addr) = ctx.args.get("--addr").map(str::to_string) else {
        eprintln!("error: --addr <host:port> is required (start a server with the serve binary)");
        return ExitCode::from(2);
    };
    let connections = parse_count(&ctx, "--connections", 32);
    let requests = parse_count(&ctx, "--requests", 25);
    let input_len = parse_count(&ctx, "--input-len", 3 * 32 * 32);
    // 0 = closed-loop (the default); N>0 = open-loop with an intended send
    // every N ms per connection.
    let interval_ms: u64 = match ctx.args.get("--interval-ms") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: --interval-ms must be a non-negative integer, got {raw:?}");
                return ExitCode::from(2);
            }
        },
    };
    let as_json_floats = ctx.args.is_set("--json-floats");
    let seed = ctx.args.seed;
    ctx.config("addr", &addr);
    ctx.config("connections", connections);
    ctx.config("requests_per_connection", requests);
    ctx.config("interval_ms", interval_ms);

    eprintln!(
        "driving {connections} connections x {requests} requests at http://{addr} \
         ({} bodies, {})",
        if as_json_floats {
            "JSON float"
        } else {
            "base64"
        },
        if interval_ms > 0 {
            format!("open-loop every {interval_ms} ms")
        } else {
            "closed-loop".to_string()
        }
    );
    let addr = Arc::new(addr);
    let started = Instant::now();
    // One schedule anchor for every connection, captured before any thread
    // spawns: the intended-time grid is a pure function of (anchor, req), so
    // a slow spawn, handshake, connection error, or retry storm can never
    // re-anchor it and quietly reintroduce coordinated omission.
    let schedule = OpenLoopSchedule::new(started, Duration::from_millis(interval_ms));
    let workers: Vec<_> = (0..connections)
        .map(|conn| {
            let addr = Arc::clone(&addr);
            thread::spawn(move || {
                let mut stats = ConnStats::default();
                // Retrying client: transient resets and 503 backpressure are
                // absorbed by capped exponential backoff (per-connection
                // jitter seed desynchronises the retry storms).
                let mut client = RetryingClient::new(
                    addr.as_str(),
                    Duration::from_secs(30),
                    RetryPolicy {
                        seed: seed ^ conn as u64,
                        ..RetryPolicy::default()
                    },
                );
                for req in 0..requests {
                    let img = image(input_len, seed ^ ((conn * 1_000_003 + req) as u64));
                    let body = if as_json_floats {
                        let values: Vec<String> = img.iter().map(|v| format!("{v}")).collect();
                        format!("{{\"image\":[{}]}}", values.join(","))
                    } else {
                        format!("{{\"image_b64\":\"{}\"}}", encode_f32(&img))
                    };
                    // Open-loop: latency counts from the *intended* send
                    // time, so falling behind schedule is charged to the
                    // server, not hidden by it (coordinated omission).
                    let begin = if interval_ms > 0 {
                        schedule.wait_until_intended(req)
                    } else {
                        Instant::now()
                    };
                    match client.post_json("/v1/classify", &body) {
                        Ok(response) => match response.status {
                            200 => {
                                stats.ok += 1;
                                stats.latency.record(begin.elapsed().as_micros() as u64);
                            }
                            503 => stats.backpressure += 1,
                            504 => stats.timeouts += 1,
                            status => {
                                eprintln!(
                                    "connection {conn}: unexpected HTTP {status}: {}",
                                    response.text()
                                );
                                stats.other_status += 1;
                            }
                        },
                        Err(e) => {
                            // Already retried with backoff inside the client;
                            // a surfaced error is a real failure.
                            eprintln!("connection {conn}: request failed: {e}");
                            stats.io_errors += 1;
                        }
                    }
                }
                stats.retries = client.retries();
                stats
            })
        })
        .collect();

    let mut all = ConnStats::default();
    for worker in workers {
        let stats = worker.join().expect("load thread panicked");
        all.latency
            .merge(&stats.latency)
            .expect("same sub-bucket precision");
        all.ok += stats.ok;
        all.backpressure += stats.backpressure;
        all.timeouts += stats.timeouts;
        all.other_status += stats.other_status;
        all.io_errors += stats.io_errors;
        all.retries += stats.retries;
    }
    let wall = started.elapsed().as_secs_f64();
    let throughput = all.ok as f64 / wall.max(f64::MIN_POSITIVE);

    let mut table = Table::new(
        "Serving load test",
        &[
            "Connections",
            "Requests",
            "OK",
            "503",
            "504",
            "Errors",
            "Retries",
            "Throughput (req/s)",
            "Mean (ms)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "Max (ms)",
        ],
    );
    table.push_row(vec![
        connections.to_string(),
        (connections * requests).to_string(),
        all.ok.to_string(),
        all.backpressure.to_string(),
        all.timeouts.to_string(),
        (all.other_status + all.io_errors).to_string(),
        all.retries.to_string(),
        format!("{throughput:.1}"),
        format!("{:.2}", all.latency.mean() / 1e3),
        format!("{:.2}", quantile_ms(&all.latency, 0.50)),
        format!("{:.2}", quantile_ms(&all.latency, 0.95)),
        format!("{:.2}", quantile_ms(&all.latency, 0.99)),
        format!(
            "{:.2}",
            if all.latency.is_empty() {
                0.0
            } else {
                all.latency.max() as f64 / 1e3
            }
        ),
    ]);
    println!("{}", table.to_markdown());
    table.emit("loadgen").expect("write results");
    ctx.finish();

    let dropped = all.timeouts + all.other_status + all.io_errors;
    if dropped > 0 || all.ok == 0 {
        eprintln!("FAILED: {dropped} non-backpressure errors, {} ok", all.ok);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
