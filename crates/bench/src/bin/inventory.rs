//! Per-layer mapping inventory: for a trained model and a crossbar size,
//! prints each weighted layer's unrolled shape, tiles used, NF statistics
//! and low-conductance fraction, plus the area/energy estimate. Useful for
//! seeing *where* in a network the non-idealities concentrate (the deep
//! 512-channel VGG blocks dominate both crossbar count and NF).
//!
//! Usage: `cargo run --release -p xbar-bench --bin inventory
//! [--size N] [--method none|cf] [--full|--smoke] [--seed N]`

use xbar_bench::report::{pct, Table};
use xbar_bench::runner::{map_config, Arity, RunContext};
use xbar_bench::{DatasetKind, Scenario};
use xbar_core::cost::{estimate_cost, CostModel};
use xbar_core::pipeline::map_to_crossbars;
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;

fn main() {
    let ctx = RunContext::init(
        "inventory",
        &[("--size", Arity::Value), ("--method", Arity::Value)],
    );
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    let size: usize = ctx
        .args
        .get("--size")
        .unwrap_or("32")
        .parse()
        .expect("--size takes an integer");
    let method = match ctx.args.get("--method").unwrap_or("cf") {
        "none" => PruneMethod::None,
        "cf" => PruneMethod::ChannelFilter,
        "xcs" => PruneMethod::XbarColumn,
        "xrs" => PruneMethod::XbarRow,
        other => {
            eprintln!("error: unknown method {other}; supported: none cf xcs xrs");
            std::process::exit(2);
        }
    };
    let sc =
        Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, method, scale).with_seed(seed);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let cfg = map_config(&tm, size, seed);
    let (_, report) = map_to_crossbars(&tm.model, &cfg).expect("mapping pipeline");
    let mut table = Table::new(
        format!(
            "Layer inventory: VGG11 ({method}) on {size}x{size} crossbars — software acc {}%",
            pct(tm.software_accuracy)
        ),
        &[
            "Layer",
            "Kind",
            "Crossbars",
            "Mean NF",
            "NF std",
            "Low-G fraction",
            "Solver iters",
            "Max residual",
            "Non-conv",
        ],
    );
    for lr in &report.layers {
        let kind = tm.model.layers()[lr.layer_index].kind_name();
        table.push_row(vec![
            format!("#{}", lr.layer_index),
            kind.to_string(),
            lr.crossbar_count.to_string(),
            format!("{:.4}", lr.nf.mean()),
            format!("{:.4}", lr.nf.std()),
            format!("{:.3}", lr.low_g_fraction),
            lr.solver_iterations.to_string(),
            format!("{:.2e}", lr.max_residual),
            lr.non_converged.to_string(),
        ]);
    }
    table.emit("inventory").expect("write results");
    let cost = estimate_cost(&tm.model, &cfg, &CostModel::default());
    println!(
        "total: {} crossbars, {:.2} mm^2, {:.1} uJ/inference (first-order model)",
        cost.crossbars,
        cost.area_um2 / 1e6,
        cost.energy_uj
    );
    ctx.finish();
}
