//! Per-layer mapping inventory: for a trained model and a crossbar size,
//! prints each weighted layer's unrolled shape, tiles used, NF statistics
//! and low-conductance fraction, plus the area/energy estimate. Useful for
//! seeing *where* in a network the non-idealities concentrate (the deep
//! 512-channel VGG blocks dominate both crossbar count and NF).
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::tables::inventory`]; the
//! suite orchestrator runs the same code.
//!
//! Usage: `cargo run --release -p xbar-bench --bin inventory
//! [--size N] [--method none|cf] [--full|--smoke] [--seed N]`

use std::process::ExitCode;
use xbar_bench::artifacts::{tables, ArtifactCtx};
use xbar_bench::runner::{Arity, RunContext};
use xbar_prune::PruneMethod;

fn main() -> ExitCode {
    let ctx = RunContext::init(
        "inventory",
        &[("--size", Arity::Value), ("--method", Arity::Value)],
    );
    let size: usize = match ctx.args.get("--size").unwrap_or("32").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: --size takes an integer");
            return ExitCode::from(2);
        }
    };
    let method = match ctx.args.get("--method").unwrap_or("cf") {
        "none" => PruneMethod::None,
        "cf" => PruneMethod::ChannelFilter,
        "xcs" => PruneMethod::XbarColumn,
        "xrs" => PruneMethod::XbarRow,
        other => {
            eprintln!("error: unknown method {other}; supported: none cf xcs xrs");
            return ExitCode::from(2);
        }
    };
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let result = tables::inventory(&actx, size, method);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
