//! Calibration tool: prints software vs crossbar accuracy and NF for the
//! unpruned and C/F-pruned VGG11/CIFAR10-like models across crossbar sizes,
//! for the current default circuit parameters. Used to sanity-check that the
//! paper's qualitative trends hold before running the full figure harnesses.

use xbar_bench::runner::{Arity, RunContext};
use xbar_bench::{DatasetKind, Scenario};
use xbar_core::pipeline::{map_to_crossbars, MapConfig};
use xbar_data::Split;
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;
use xbar_sim::params::CrossbarParams;

fn main() {
    const OVERRIDES: [(&str, Arity); 10] = [
        ("--train", Arity::Value),
        ("--epochs", Arity::Value),
        ("--width", Arity::Value),
        ("--rmin", Arity::Value),
        ("--rmax", Arity::Value),
        ("--sigma", Arity::Value),
        ("--driver", Arity::Value),
        ("--sense", Arity::Value),
        ("--wire-row", Arity::Value),
        ("--wire-col", Arity::Value),
    ];
    let ctx = RunContext::init("calibrate", &OVERRIDES);
    let mut scale = ctx.args.scale;
    let mut base = CrossbarParams::default();
    let get = |flag: &str| -> Option<f64> {
        ctx.args.get(flag).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} takes a number, got {v:?}"))
        })
    };
    if let Some(v) = get("--train") {
        scale.train_size = v as usize;
    }
    if let Some(v) = get("--epochs") {
        scale.epochs = v as usize;
    }
    if let Some(v) = get("--width") {
        scale.width = v;
    }
    if let Some(v) = get("--rmin") {
        base.r_min = v;
    }
    if let Some(v) = get("--rmax") {
        base.r_max = v;
    }
    if let Some(v) = get("--sigma") {
        base.sigma_variation = v;
    }
    if let Some(v) = get("--driver") {
        base.r_driver = v;
    }
    if let Some(v) = get("--sense") {
        base.r_sense = v;
    }
    if let Some(v) = get("--wire-row") {
        base.r_wire_row = v;
    }
    if let Some(v) = get("--wire-col") {
        base.r_wire_col = v;
    }
    for method in [PruneMethod::None, PruneMethod::ChannelFilter] {
        let mut sc = Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, method, scale);
        if let Ok(noise) = std::env::var("XBAR_NOISE") {
            sc.noise_std = Some(noise.parse().unwrap());
        }
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        xbar_obs::event!(
            "calibrate_software",
            method = method.to_string(),
            accuracy = tm.software_accuracy
        );
        let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test)).unwrap();
        for size in [16usize, 32, 64] {
            let mut params = base;
            params.rows = size;
            params.cols = size;
            let mut variants = vec![("full", params)];
            let mut ir_only = params;
            ir_only.sigma_variation = 0.0;
            variants.push(("ir-only", ir_only));
            let mut var_only = params;
            var_only.r_driver = 0.0;
            var_only.r_sense = 0.0;
            var_only.r_wire_row = 0.0;
            var_only.r_wire_col = 0.0;
            variants.push(("var-only", var_only));
            for (tag, params) in variants {
                let cfg = MapConfig {
                    params,
                    method,
                    seed: 7,
                    ..Default::default()
                };
                let (mut noisy, report) = map_to_crossbars(&tm.model, &cfg).unwrap();
                let acc = evaluate(&mut noisy, test, 64).unwrap();
                xbar_obs::event!(
                    "calibrate_point",
                    method = method.to_string(),
                    size = size,
                    variant = tag,
                    accuracy = acc,
                    drop_pp = 100.0 * (tm.software_accuracy - acc),
                    nf_mean = report.mean_nf(),
                    low_g_fraction = report.mean_low_g_fraction(),
                    crossbars = report.crossbar_count()
                );
            }
        }
    }
    ctx.finish();
}
