//! Calibration tool: prints software vs crossbar accuracy and NF for the
//! unpruned and C/F-pruned VGG11/CIFAR10-like models across crossbar sizes,
//! for the current default circuit parameters. Used to sanity-check that the
//! paper's qualitative trends hold before running the full figure harnesses.

use xbar_bench::report::pct;
use xbar_bench::{DatasetKind, ExperimentScale, Scenario};
use xbar_core::pipeline::{map_to_crossbars, MapConfig};
use xbar_data::Split;
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;
use xbar_sim::params::CrossbarParams;

fn main() {
    let mut scale = ExperimentScale::quick();
    let mut base = CrossbarParams::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--train" => scale.train_size = args.next().unwrap().parse().unwrap(),
            "--epochs" => scale.epochs = args.next().unwrap().parse().unwrap(),
            "--width" => scale.width = args.next().unwrap().parse().unwrap(),
            "--rmin" => base.r_min = args.next().unwrap().parse().unwrap(),
            "--rmax" => base.r_max = args.next().unwrap().parse().unwrap(),
            "--sigma" => base.sigma_variation = args.next().unwrap().parse().unwrap(),
            "--driver" => base.r_driver = args.next().unwrap().parse().unwrap(),
            "--sense" => base.r_sense = args.next().unwrap().parse().unwrap(),
            "--wire-row" => base.r_wire_row = args.next().unwrap().parse().unwrap(),
            "--wire-col" => base.r_wire_col = args.next().unwrap().parse().unwrap(),
            other => panic!("unknown arg {other}"),
        }
    }
    let start = std::time::Instant::now();
    for method in [PruneMethod::None, PruneMethod::ChannelFilter] {
        let mut sc = Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, method, scale);
        if let Ok(noise) = std::env::var("XBAR_NOISE") {
            sc.noise_std = Some(noise.parse().unwrap());
        }
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        println!(
            "[{:.0?}] {} software acc = {}%",
            start.elapsed(),
            method,
            pct(tm.software_accuracy)
        );
        let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test)).unwrap();
        for size in [16usize, 32, 64] {
            let mut params = base;
            params.rows = size;
            params.cols = size;
            let mut variants = vec![("full", params)];
            let mut ir_only = params;
            ir_only.sigma_variation = 0.0;
            variants.push(("ir-only", ir_only));
            let mut var_only = params;
            var_only.r_driver = 0.0;
            var_only.r_sense = 0.0;
            var_only.r_wire_row = 0.0;
            var_only.r_wire_col = 0.0;
            variants.push(("var-only", var_only));
            for (tag, params) in variants {
                let cfg = MapConfig {
                    params,
                    method,
                    seed: 7,
                    ..Default::default()
                };
                let (mut noisy, report) = map_to_crossbars(&tm.model, &cfg).unwrap();
                let acc = evaluate(&mut noisy, test, 64).unwrap();
                println!(
                    "[{:.0?}]   {}x{} {tag}: acc = {}% (drop {:.1}pp), NF = {:.4}, lowG = {:.2}, xbars = {}",
                    start.elapsed(),
                    size,
                    size,
                    pct(acc),
                    100.0 * (tm.software_accuracy - acc),
                    report.mean_nf(),
                    report.mean_low_g_fraction(),
                    report.crossbar_count()
                );
            }
        }
    }
}
