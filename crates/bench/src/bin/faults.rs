//! Fault-injection sweep: accuracy of the unpruned and channel/filter-pruned
//! models under stuck-at device faults, with and without fault-tolerant
//! mapping (spare-column remap + digital correction, see
//! `xbar_core::repair`).
//!
//! The paper's central observation is that pruned models are
//! disproportionately fragile to crossbar non-idealities; stuck-at faults
//! are the extreme case. This sweep extends the Table-I format with a fault
//! axis — rates {0, 0.1%, 1%, 5%} — and shows how much accuracy the repair
//! path buys back at each rate.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::tables::fault_sweep`];
//! the suite orchestrator runs the same code.
//!
//! Usage: `cargo run --release -p xbar-bench --bin faults
//! [--full|--smoke|--quick] [--seed N] [--size N] [--quiet]
//! [--trace-out <path>]`
//!
//! Writes `results/fault_sweep.csv`.

use std::process::ExitCode;
use xbar_bench::artifacts::{tables, ArtifactCtx};
use xbar_bench::runner::{Arity, RunContext};

fn main() -> ExitCode {
    let mut ctx = RunContext::init("faults", &[("--size", Arity::Value)]);
    let size: usize = match ctx.args.get("--size").map(str::parse) {
        None => tables::FAULT_SWEEP_SIZE,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: --size must be an integer");
            return ExitCode::from(2);
        }
    };
    ctx.config("crossbar_size", size);
    ctx.config("fault_rates", format!("{:?}", tables::FAULT_RATES));
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let result = tables::fault_sweep(&actx, size);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
