//! Fault-injection sweep: accuracy of the unpruned and channel/filter-pruned
//! models under stuck-at device faults, with and without fault-tolerant
//! mapping (spare-column remap + digital correction, see
//! `xbar_core::repair`).
//!
//! The paper's central observation is that pruned models are
//! disproportionately fragile to crossbar non-idealities; stuck-at faults
//! are the extreme case. This sweep extends the Table-I format with a fault
//! axis — rates {0, 0.1%, 1%, 5%} — and shows how much accuracy the repair
//! path buys back at each rate.
//!
//! Usage: `cargo run --release -p xbar-bench --bin faults
//! [--full|--smoke|--quick] [--seed N] [--size N] [--quiet]
//! [--trace-out <path>]`
//!
//! Writes `results/fault_sweep.csv`.

use xbar_bench::report::{pct, Table};
use xbar_bench::runner::{crossbar_accuracy, map_config, Arity, RunContext};
use xbar_bench::{DatasetKind, Scenario};
use xbar_core::RepairConfig;
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;
use xbar_sim::FaultModel;

/// Default crossbar size the sweep evaluates at.
const SIZE: usize = 16;

/// Stuck-at fault rates swept (fraction of devices).
const FAULT_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

fn main() {
    let mut ctx = RunContext::init("faults", &[("--size", Arity::Value)]);
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    let size: usize = ctx
        .args
        .get("--size")
        .map(|v| v.parse().expect("--size must be an integer"))
        .unwrap_or(SIZE);
    ctx.config("crossbar_size", size);
    ctx.config("fault_rates", format!("{FAULT_RATES:?}"));

    let mut table = Table::new(
        format!("Fault-injection sweep ({size}x{size}, stuck-at devices)"),
        &[
            "Method",
            "Fault rate (%)",
            "Repair",
            "Crossbar acc (%)",
            "Stuck cells",
            "Repaired cols",
            "Corrected cells",
            "Degraded tiles",
        ],
    );

    for method in [PruneMethod::None, PruneMethod::ChannelFilter] {
        let sc = Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, method, scale)
            .with_seed(seed);
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        for rate in FAULT_RATES {
            for repair in [false, true] {
                let mut cfg = map_config(&tm, size, seed);
                // Split like measured RRAM fault populations: stuck-low
                // (high-resistance, open) devices dominate stuck-high.
                cfg.params.faults = FaultModel {
                    stuck_at_gmin: 0.6 * rate,
                    stuck_at_gmax: 0.4 * rate,
                };
                if repair {
                    cfg.repair = Some(RepairConfig::default());
                }
                let (acc, report) = crossbar_accuracy(&tm, &data, &cfg);
                xbar_obs::event!(
                    "fault_case_done",
                    method = method.to_string(),
                    fault_rate = rate,
                    repair = repair,
                    crossbar_acc = acc,
                    stuck_cells = report.stuck_cells() as u64,
                    repaired_columns = report.repaired_columns() as u64,
                    degraded_tiles = report.degraded_tiles() as u64
                );
                table.push_row(vec![
                    method.to_string(),
                    format!("{:.1}", 100.0 * rate),
                    if repair { "on" } else { "off" }.to_string(),
                    pct(acc),
                    report.stuck_cells().to_string(),
                    report.repaired_columns().to_string(),
                    report.corrected_cells().to_string(),
                    report.degraded_tiles().to_string(),
                ]);
            }
        }
    }

    table.emit("fault_sweep").expect("write results");
    ctx.finish();
}
