//! Regenerates the paper's **Table I**: software accuracies and
//! crossbar-compression-rates (32×32 crossbars) for the unpruned and
//! structure-pruned VGG11/VGG16 models on the CIFAR10-like (s = 0.8) and
//! CIFAR100-like (s = 0.6) datasets.
//!
//! Usage: `cargo run --release -p xbar-bench --bin table1 [--full|--smoke] [--seed N]`

use xbar_bench::report::{pct, rate, Table};
use xbar_bench::runner::parse_common_args;
use xbar_bench::{DatasetKind, Scenario};
use xbar_nn::vgg::VggVariant;
use xbar_prune::compression::compression_rate;
use xbar_prune::PruneMethod;

fn main() {
    let (scale, seed) = parse_common_args();
    let mut table = Table::new(
        "Table I: software accuracy and crossbar-compression-rate (32x32)",
        &[
            "Dataset",
            "Network",
            "Method",
            "Sparsity",
            "Software acc (%)",
            "Compression",
        ],
    );
    let cases: Vec<(DatasetKind, VggVariant, PruneMethod)> = vec![
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::ChannelFilter,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::XbarColumn,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::XbarRow,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::ChannelFilter,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::XbarColumn,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::XbarRow,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg11,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg11,
            PruneMethod::ChannelFilter,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg16,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg16,
            PruneMethod::ChannelFilter,
        ),
    ];
    let start = std::time::Instant::now();
    for (dataset, variant, method) in cases {
        let sc = Scenario::new(variant, dataset, method, scale).with_seed(seed);
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let compression = match method {
            PruneMethod::None => "-".to_string(),
            m => rate(compression_rate(&tm.model, m, 32, 32)),
        };
        eprintln!(
            "[{:.0?}] {} {} {}: software {}%",
            start.elapsed(),
            dataset.name(),
            variant,
            method,
            pct(tm.software_accuracy)
        );
        table.push_row(vec![
            dataset.name().to_string(),
            variant.to_string(),
            method.to_string(),
            if method == PruneMethod::None {
                "-".to_string()
            } else {
                format!("{:.1}", sc.sparsity)
            },
            pct(tm.software_accuracy),
            compression,
        ]);
    }
    table.emit("table1").expect("write results");
}
