//! Regenerates the paper's **Table I**: software accuracies,
//! crossbar-compression-rates and 32×32 non-ideal crossbar accuracies for
//! the unpruned and structure-pruned VGG11/VGG16 models on the
//! CIFAR10-like (s = 0.8) and CIFAR100-like (s = 0.6) datasets.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::tables::table1`]; the
//! suite orchestrator runs the same code.
//!
//! Usage: `cargo run --release -p xbar-bench --bin table1 [--full|--smoke]
//! [--seed N] [--quiet] [--trace-out <path>]`

use std::process::ExitCode;
use xbar_bench::artifacts::{tables, ArtifactCtx};
use xbar_bench::runner::RunContext;

fn main() -> ExitCode {
    let mut ctx = RunContext::init("table1", &[]);
    ctx.config("crossbar_size", tables::TABLE1_SIZE);
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let result = tables::table1(&actx);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
