//! Regenerates the paper's **Table I**: software accuracies,
//! crossbar-compression-rates and 32×32 non-ideal crossbar accuracies for
//! the unpruned and structure-pruned VGG11/VGG16 models on the
//! CIFAR10-like (s = 0.8) and CIFAR100-like (s = 0.6) datasets.
//!
//! Usage: `cargo run --release -p xbar-bench --bin table1 [--full|--smoke]
//! [--seed N] [--quiet] [--trace-out <path>]`

use xbar_bench::report::{pct, rate, Table};
use xbar_bench::runner::{crossbar_accuracy, map_config, RunContext};
use xbar_bench::{DatasetKind, Scenario};
use xbar_nn::vgg::VggVariant;
use xbar_prune::compression::compression_rate;
use xbar_prune::PruneMethod;

/// Crossbar size Table I evaluates at.
const SIZE: usize = 32;

fn main() {
    let mut ctx = RunContext::init("table1", &[]);
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    ctx.config("crossbar_size", SIZE);
    let mut table = Table::new(
        "Table I: software accuracy and crossbar-compression-rate (32x32)",
        &[
            "Dataset",
            "Network",
            "Method",
            "Sparsity",
            "Software acc (%)",
            "Crossbar acc (%)",
            "Compression",
        ],
    );
    let mut solver_table = Table::new(
        "Table I mapping solver statistics (32x32)",
        &[
            "Dataset",
            "Network",
            "Method",
            "Crossbars",
            "Mean NF",
            "Solver iters",
            "Max residual",
            "Non-conv tiles",
        ],
    );
    let cases: Vec<(DatasetKind, VggVariant, PruneMethod)> = vec![
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::ChannelFilter,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::XbarColumn,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg11,
            PruneMethod::XbarRow,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::ChannelFilter,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::XbarColumn,
        ),
        (
            DatasetKind::Cifar10Like,
            VggVariant::Vgg16,
            PruneMethod::XbarRow,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg11,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg11,
            PruneMethod::ChannelFilter,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg16,
            PruneMethod::None,
        ),
        (
            DatasetKind::Cifar100Like,
            VggVariant::Vgg16,
            PruneMethod::ChannelFilter,
        ),
    ];
    for (dataset, variant, method) in cases {
        let sc = Scenario::new(variant, dataset, method, scale).with_seed(seed);
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let compression = match method {
            PruneMethod::None => "-".to_string(),
            m => rate(compression_rate(&tm.model, m, SIZE, SIZE)),
        };
        let cfg = map_config(&tm, SIZE, seed);
        let (xbar_acc, report) = crossbar_accuracy(&tm, &data, &cfg);
        xbar_obs::event!(
            "case_done",
            dataset = dataset.name(),
            network = variant.to_string(),
            method = method.to_string(),
            software_acc = tm.software_accuracy,
            crossbar_acc = xbar_acc
        );
        table.push_row(vec![
            dataset.name().to_string(),
            variant.to_string(),
            method.to_string(),
            if method == PruneMethod::None {
                "-".to_string()
            } else {
                format!("{:.1}", sc.sparsity)
            },
            pct(tm.software_accuracy),
            pct(xbar_acc),
            compression,
        ]);
        solver_table.push_row(vec![
            dataset.name().to_string(),
            variant.to_string(),
            method.to_string(),
            report.crossbar_count().to_string(),
            format!("{:.4}", report.mean_nf()),
            report.solver_iterations().to_string(),
            format!("{:.2e}", report.max_residual()),
            report.non_converged().to_string(),
        ]);
    }
    table.emit("table1").expect("write results");
    solver_table.emit("table1_solver").expect("write results");
    ctx.finish();
}
