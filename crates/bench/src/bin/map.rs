//! Trains (with disk cache) a scenario, maps it onto non-ideal crossbars,
//! and persists the resulting `W'` network as an `XBARMDL1` artifact for
//! `xbar-serve`.
//!
//! Usage: `cargo run --release -p xbar-bench --bin map -- [--smoke|--full]
//! [--seed N] [--network vgg11|vgg16] [--dataset cifar10|cifar100]
//! [--method none|cf|xcs|xrs] [--size N] [--threads N] [--out <path>]`
//!
//! `--threads 0` resets the compute-thread budget to auto-detection.

use xbar_bench::report::{pct, results_dir, Table};
use xbar_bench::runner::{map_config, Arity, RunContext};
use xbar_bench::{DatasetKind, Scenario};
use xbar_core::pipeline::map_to_crossbars;
use xbar_core::{save_artifact_to_file, ArtifactMeta};
use xbar_data::Split;
use xbar_nn::train::{evaluate, DataRef};
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;

fn main() {
    let mut ctx = RunContext::init(
        "map",
        &[
            ("--network", Arity::Value),
            ("--dataset", Arity::Value),
            ("--method", Arity::Value),
            ("--size", Arity::Value),
            ("--threads", Arity::Value),
            ("--out", Arity::Value),
        ],
    );
    if let Some(raw) = ctx.args.get("--threads") {
        match raw.parse::<usize>() {
            // 0 resets any prior override back to auto-detection.
            Ok(n) => xbar_tensor::threads::set_max_threads(n),
            _ => {
                eprintln!(
                    "error: --threads must be a non-negative integer (0 = auto), got {raw:?}"
                );
                std::process::exit(2);
            }
        }
    }
    let variant = match ctx.args.get("--network").unwrap_or("vgg11") {
        "vgg11" => VggVariant::Vgg11,
        "vgg16" => VggVariant::Vgg16,
        other => {
            eprintln!("error: --network must be vgg11 or vgg16, got {other:?}");
            std::process::exit(2);
        }
    };
    let dataset = match ctx.args.get("--dataset").unwrap_or("cifar10") {
        "cifar10" => DatasetKind::Cifar10Like,
        "cifar100" => DatasetKind::Cifar100Like,
        other => {
            eprintln!("error: --dataset must be cifar10 or cifar100, got {other:?}");
            std::process::exit(2);
        }
    };
    let method = match ctx.args.get("--method").unwrap_or("cf") {
        "none" => PruneMethod::None,
        "cf" => PruneMethod::ChannelFilter,
        "xcs" => PruneMethod::XbarColumn,
        "xrs" => PruneMethod::XbarRow,
        other => {
            eprintln!("error: --method must be none, cf, xcs or xrs, got {other:?}");
            std::process::exit(2);
        }
    };
    let size: usize = match ctx.args.get("--size").unwrap_or("32").parse() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("error: --size must be a positive integer");
            std::process::exit(2);
        }
    };
    let out = ctx
        .args
        .get("--out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("model.xbarmdl"));
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    ctx.config("crossbar_size", size);
    ctx.config("artifact", out.display());

    let sc = Scenario::new(variant, dataset, method, scale).with_seed(seed);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let cfg = map_config(&tm, size, seed);
    let (mut noisy, report) = map_to_crossbars(&tm.model, &cfg).expect("mapping pipeline");
    let test = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
        .expect("dataset well-formed");
    let crossbar_accuracy = evaluate(&mut noisy, test, 64).expect("evaluation shape-safe");

    let label = format!(
        "{variant} {} {method} s={:.1} {size}x{size}",
        dataset.name(),
        sc.sparsity
    );
    let mut meta = ArtifactMeta::from_mapping(label, &cfg, &report);
    meta.software_accuracy = Some(tm.software_accuracy);
    meta.crossbar_accuracy = Some(crossbar_accuracy);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create artifact directory");
    }
    save_artifact_to_file(&mut noisy, &meta, &out).expect("write artifact");

    let mut table = Table::new(
        "Mapped-model artifact",
        &[
            "Network",
            "Dataset",
            "Method",
            "Crossbar",
            "Software acc (%)",
            "Crossbar acc (%)",
            "Mean NF",
            "Artifact",
        ],
    );
    table.push_row(vec![
        variant.to_string(),
        dataset.name().to_string(),
        method.to_string(),
        format!("{size}x{size}"),
        pct(tm.software_accuracy),
        pct(crossbar_accuracy),
        format!("{:.4}", report.mean_nf()),
        out.display().to_string(),
    ]);
    table.emit("map").expect("write results");
    // Scripts (CI smoke, demos) parse this line for the artifact path.
    println!("artifact written to {}", out.display());
    ctx.finish();
}
