//! Batched-solver throughput benchmark with a bit-identity check.
//!
//! Times cold circuit solves through one tile two ways — the scalar oracle
//! one vector at a time, and the lane-vectorized batched path on the whole
//! batch — verifies the batched currents are bit-identical to the oracle's,
//! and writes both rates plus the speedup to `results/BENCH_solve.json`.
//! Fails if bit-identity is lost or the speedup misses the 5x floor.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::solveperf::solve_bench`];
//! the suite orchestrator runs the same code (exclusively — it is
//! timing-sensitive).
//!
//! Usage: `cargo run --release -p xbar-bench --bin solve --
//! [--smoke|--quick|--full] [--seed N] [--size N] [--batch N] [--quiet]
//! [--trace-out <path>]`

use std::process::ExitCode;
use xbar_bench::artifacts::{solveperf, ArtifactCtx};
use xbar_bench::runner::{Arity, RunContext};

fn parse_dim(ctx: &RunContext, flag: &str, default: usize, min: usize) -> Option<usize> {
    match ctx.args.get(flag).map(str::parse::<usize>) {
        None => Some(default),
        Some(Ok(n)) if n >= min => Some(n),
        Some(_) => {
            eprintln!("error: {flag} must be an integer >= {min}");
            None
        }
    }
}

fn main() -> ExitCode {
    let mut ctx = RunContext::init(
        "solve",
        &[("--size", Arity::Value), ("--batch", Arity::Value)],
    );
    let Some(size) = parse_dim(&ctx, "--size", solveperf::SOLVE_BENCH_SIZE, 4) else {
        return ExitCode::from(2);
    };
    let Some(batch) = parse_dim(&ctx, "--batch", solveperf::SOLVE_BENCH_BATCH, 1) else {
        return ExitCode::from(2);
    };
    ctx.config("crossbar_size", size);
    ctx.config("batch", batch);
    let actx =
        ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed).quiet(ctx.args.quiet);
    let result = solveperf::solve_bench(&actx, size, batch);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
