//! Regenerates the paper's **Fig. 4**:
//!
//! * (a)–(d) accuracy vs crossbar size for unpruned, C/F-pruned and
//!   C/F + R-transformed models — VGG11/VGG16 on CIFAR10-like (s = 0.8) and
//!   CIFAR100-like (s = 0.6);
//! * (e)–(f) accuracy vs crossbar size for unpruned, C/F and WCT + C/F
//!   VGG11 models on both datasets.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::figures::fig4_panel`];
//! the suite orchestrator runs the same code, one artifact per panel.
//!
//! Usage: `cargo run --release -p xbar-bench --bin fig4 [--panel a..f]
//! [--full|--smoke] [--seed N]` (no panel = all).

use std::process::ExitCode;
use xbar_bench::artifacts::{figures, ArtifactCtx};
use xbar_bench::runner::{Arity, RunContext};

fn main() -> ExitCode {
    let ctx = RunContext::init("fig4", &[("--panel", Arity::Value)]);
    let panel = ctx.args.get("--panel").map(str::to_string);
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let mut result = Ok(());
    for p in ["a", "b", "c", "d", "e", "f"] {
        if panel.as_deref().is_none_or(|sel| sel == p) {
            if let Err(e) = figures::fig4_panel(&actx, p) {
                eprintln!("error: fig4{p}: {e}");
                result = Err(());
            }
        }
    }
    ctx.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(()) => ExitCode::FAILURE,
    }
}
