//! Regenerates the paper's **Fig. 4**:
//!
//! * (a)–(d) accuracy vs crossbar size for unpruned, C/F-pruned and
//!   C/F + R-transformed models — VGG11/VGG16 on CIFAR10-like (s = 0.8) and
//!   CIFAR100-like (s = 0.6);
//! * (e)–(f) accuracy vs crossbar size for unpruned, C/F and WCT + C/F
//!   VGG11 models on both datasets.
//!
//! Usage: `cargo run --release -p xbar-bench --bin fig4 [--panel a..f]
//! [--full|--smoke] [--seed N]` (no panel = all).

use xbar_bench::report::{pct, Table};
use xbar_bench::runner::{
    crossbar_accuracy_avg, map_config, Arity, RunContext, DEFAULT_REPS, SIZES,
};
use xbar_bench::{DatasetKind, Scenario, TrainedModel};
use xbar_core::wct::{apply_wct, WctConfig};
use xbar_core::ColumnOrder;
use xbar_data::{Dataset, Split};
use xbar_nn::train::{evaluate, DataRef, WeightConstraint};
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;

fn accuracy_row(
    label: &str,
    tm: &TrainedModel,
    data: &Dataset,
    seed: u64,
    rearrange: Option<ColumnOrder>,
    scale_override: Option<xbar_sim::MappingScale>,
) -> Vec<String> {
    let mut row = vec![label.to_string(), pct(tm.software_accuracy)];
    for size in SIZES {
        let mut cfg = map_config(tm, size, seed);
        cfg.rearrange = rearrange;
        if let Some(s) = scale_override {
            cfg.scale = s;
        }
        let (acc, _) = crossbar_accuracy_avg(tm, data, &cfg, DEFAULT_REPS);
        xbar_obs::event!("progress", model = label, size = size, accuracy = acc);
        row.push(pct(acc));
    }
    row
}

fn main() {
    let ctx = RunContext::init("fig4", &[("--panel", Arity::Value)]);
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    let panel = ctx.args.get("--panel").map(str::to_string);
    let run = |p: &str| panel.as_deref().is_none_or(|sel| sel == p);

    // Panels (a)-(d): R transformation.
    let r_cases = [
        ("a", VggVariant::Vgg11, DatasetKind::Cifar10Like),
        ("b", VggVariant::Vgg16, DatasetKind::Cifar10Like),
        ("c", VggVariant::Vgg11, DatasetKind::Cifar100Like),
        ("d", VggVariant::Vgg16, DatasetKind::Cifar100Like),
    ];
    for (panel_id, variant, dataset) in r_cases {
        if !run(panel_id) {
            continue;
        }
        let mut table = Table::new(
            format!(
                "Fig 4({panel_id}): R transformation, {variant}/{} (s = {})",
                dataset.name(),
                dataset.paper_sparsity()
            ),
            &[
                "Model",
                "Software (%)",
                "16x16 (%)",
                "32x32 (%)",
                "64x64 (%)",
            ],
        );
        let unpruned = Scenario::new(variant, dataset, PruneMethod::None, scale).with_seed(seed);
        let data = unpruned.dataset();
        let tm_unpruned = unpruned.train_model_cached(&data);
        table.push_row(accuracy_row(
            "unpruned",
            &tm_unpruned,
            &data,
            seed,
            None,
            None,
        ));
        let cf = Scenario::new(variant, dataset, PruneMethod::ChannelFilter, scale).with_seed(seed);
        let tm_cf = cf.train_model_cached(&data);
        table.push_row(accuracy_row("C/F", &tm_cf, &data, seed, None, None));
        table.push_row(accuracy_row(
            "C/F + R",
            &tm_cf,
            &data,
            seed,
            // The paper's R layout (Fig. 3(f)): light columns centre, dark at
            // the peripheries. See ablation A3 for the other orderings.
            Some(ColumnOrder::CenterOut),
            None,
        ));
        table
            .emit(&format!("fig4{panel_id}"))
            .expect("write results");
    }

    // Panels (e)-(f): WCT.
    let wct_cases = [
        ("e", DatasetKind::Cifar10Like),
        ("f", DatasetKind::Cifar100Like),
    ];
    for (panel_id, dataset) in wct_cases {
        if !run(panel_id) {
            continue;
        }
        let mut table = Table::new(
            format!(
                "Fig 4({panel_id}): WCT, VGG11/{} (s = {})",
                dataset.name(),
                dataset.paper_sparsity()
            ),
            &[
                "Model",
                "Software (%)",
                "16x16 (%)",
                "32x32 (%)",
                "64x64 (%)",
            ],
        );
        let unpruned =
            Scenario::new(VggVariant::Vgg11, dataset, PruneMethod::None, scale).with_seed(seed);
        let data = unpruned.dataset();
        let tm_unpruned = unpruned.train_model_cached(&data);
        table.push_row(accuracy_row(
            "unpruned",
            &tm_unpruned,
            &data,
            seed,
            None,
            None,
        ));
        let cf = Scenario::new(
            VggVariant::Vgg11,
            dataset,
            PruneMethod::ChannelFilter,
            scale,
        )
        .with_seed(seed);
        let tm_cf = cf.train_model_cached(&data);
        table.push_row(accuracy_row("C/F", &tm_cf, &data, seed, None, None));
        // WCT on top of the C/F model: clamp + 2-epoch constrained retrain,
        // then map with the fixed pre-clamp scale.
        let mut tm_wct = tm_cf.clone();
        let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train))
            .expect("dataset well-formed");
        let mut wct_cfg = WctConfig::default();
        wct_cfg.train.batch_size = scale.batch_size;
        if let Ok(q) = std::env::var("XBAR_WCT_Q") {
            wct_cfg.quantile = q.parse().expect("XBAR_WCT_Q must be a float");
        }
        let constraint: Option<&dyn WeightConstraint> =
            tm_wct.masks.as_ref().map(|m| m as &dyn WeightConstraint);
        let outcome =
            apply_wct(&mut tm_wct.model, train_ref, &wct_cfg, constraint).expect("WCT trains");
        let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test))
            .expect("dataset well-formed");
        tm_wct.software_accuracy =
            evaluate(&mut tm_wct.model, test_ref, 64).expect("evaluation shape-safe");
        xbar_obs::event!(
            "wct_applied",
            w_cut = outcome.w_cut,
            pre_clamp_abs_max = outcome.pre_clamp_abs_max,
            software_acc = tm_wct.software_accuracy
        );
        table.push_row(accuracy_row(
            "WCT + C/F",
            &tm_wct,
            &data,
            seed,
            None,
            Some(outcome.mapping_scale()),
        ));
        table
            .emit(&format!("fig4{panel_id}"))
            .expect("write results");
    }
    ctx.finish();
}
