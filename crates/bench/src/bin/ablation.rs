//! Ablation studies on the design choices `DESIGN.md` calls out:
//!
//! * `--which mapping-scale` — the WCT mapping-scale choice: mapping a
//!   weight-clamped model with a fixed (pre-clamp) scale vs renormalising
//!   per layer. The paper leaves this implicit; the fixed scale is what
//!   makes WCT produce "a greater proportion of low conductance states".
//! * `--which solver` — exact dense nodal solve vs line relaxation:
//!   per-tile agreement and wall time.
//! * `--which rearrange-policy` — R column orderings (none, ascending,
//!   centre-out): NF and accuracy.
//! * `--which bn-recalibration` / `robustness` / `approximation` — the
//!   extension studies A4–A6.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::ablations`]; the suite
//! orchestrator runs the same code, one artifact per study.
//!
//! Usage: `cargo run --release -p xbar-bench --bin ablation
//! [--which X] [--full|--smoke] [--seed N]` (no selector = all).

use std::process::ExitCode;
use xbar_bench::artifacts::{ablations, ArtifactCtx, ArtifactOutput};
use xbar_bench::runner::{Arity, RunContext};

type Study = fn(&ArtifactCtx) -> Result<ArtifactOutput, String>;

fn main() -> ExitCode {
    let ctx = RunContext::init("ablation", &[("--which", Arity::Value)]);
    let which = ctx.args.get("--which").map(str::to_string);
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let studies: [(&str, Study); 6] = [
        ("mapping-scale", ablations::mapping_scale),
        ("solver", ablations::solver),
        ("rearrange-policy", ablations::rearrange),
        ("bn-recalibration", ablations::bn_recalibration),
        ("robustness", ablations::robustness),
        ("approximation", ablations::approximation),
    ];
    if let Some(sel) = &which {
        if !studies.iter().any(|(name, _)| name == sel) {
            eprintln!(
                "error: unknown ablation {sel:?}; supported: {}",
                studies.map(|(n, _)| n).join(" ")
            );
            return ExitCode::from(2);
        }
    }
    let mut result = Ok(());
    for (name, run) in studies {
        if which.as_deref().is_none_or(|sel| sel == name) {
            if let Err(e) = run(&actx) {
                eprintln!("error: {name}: {e}");
                result = Err(());
            }
        }
    }
    ctx.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(()) => ExitCode::FAILURE,
    }
}
