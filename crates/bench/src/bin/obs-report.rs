//! `obs-report` — turn observability output into human-readable reports.
//!
//! ```text
//! obs-report --trace results/serve_trace.jsonl            # phase table
//! obs-report --trace run.jsonl --chrome trace.json        # Perfetto export
//! obs-report --check-prom metrics.txt                     # validate scrape
//! ```
//!
//! `--trace` ingests a JSONL sink written by `--trace-out` (see
//! `xbar_obs::sink`) and prints a per-phase wall-time breakdown (depth-0
//! spans aggregated by name) plus quantiles for any log-bucketed latency
//! histograms in the file. `--chrome` additionally converts the spans and
//! events into a Chrome-trace JSON loadable in `chrome://tracing` or
//! ui.perfetto.dev. `--check-prom` parses a Prometheus text-format scrape
//! (e.g. `curl .../metrics`) and exits nonzero if it is malformed — CI runs
//! it against the live `/metrics` endpoint during the smoke test.

use std::collections::BTreeMap;
use std::process::ExitCode;
use xbar_bench::report::Table;
use xbar_obs::chrome::chrome_trace;
use xbar_obs::json::Json;
use xbar_obs::metrics::validate_prometheus_text;
use xbar_obs::sink::parse_jsonl_metrics;
use xbar_obs::trace::{EventRecord, FieldValue, SpanRecord};

fn usage() -> &'static str {
    "usage: obs-report [--trace <sink.jsonl>] [--chrome <out.json>]\n\
     \x20                 [--check-prom <metrics.txt>]\n\
     \x20 --trace      print the per-phase wall-time breakdown of a JSONL sink\n\
     \x20 --chrome     also convert the sink to Chrome-trace JSON (needs --trace)\n\
     \x20 --check-prom validate a Prometheus text-format scrape (nonzero on error)"
}

/// Converts a parsed JSONL `fields` object back into span fields. Names in
/// [`SpanRecord`] are `&'static str` (interned literals in-process), so
/// parsed names are leaked — fine for a short-lived report tool.
fn parse_fields(doc: &Json) -> Vec<(&'static str, FieldValue)> {
    let Json::Obj(pairs) = doc else {
        return Vec::new();
    };
    pairs
        .iter()
        .map(|(k, v)| {
            let key: &'static str = Box::leak(k.clone().into_boxed_str());
            let value = match v {
                Json::Num(n) => FieldValue::F64(*n),
                Json::Bool(b) => FieldValue::Bool(*b),
                Json::Str(s) => FieldValue::Str(s.clone()),
                other => FieldValue::Str(other.to_json()),
            };
            (key, value)
        })
        .collect()
}

/// The span and event lines of a JSONL sink.
fn parse_trace(text: &str) -> Result<(Vec<SpanRecord>, Vec<EventRecord>), String> {
    let mut spans = Vec::new();
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = doc.get("type").and_then(Json::as_str).unwrap_or("");
        if kind != "span" && kind != "event" {
            continue;
        }
        let name: &'static str = Box::leak(
            doc.get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: {kind} without a name", lineno + 1))?
                .to_string()
                .into_boxed_str(),
        );
        let field = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        let fields = doc.get("fields").map(parse_fields).unwrap_or_default();
        if kind == "span" {
            spans.push(SpanRecord {
                name,
                fields,
                thread: field("thread"),
                depth: field("depth") as u32,
                start_us: field("start_us"),
                duration_us: field("duration_us"),
            });
        } else {
            events.push(EventRecord {
                name,
                fields,
                thread: field("thread"),
                depth: field("depth") as u32,
                at_us: field("at_us"),
            });
        }
    }
    Ok((spans, events))
}

/// Prints the per-phase wall-time table: depth-0 spans aggregated by name,
/// in order of first start — the same aggregation as
/// `xbar_obs::sink::phase_summaries`, but over a file instead of the live
/// process buffer.
fn print_phase_table(spans: &[SpanRecord]) {
    let mut order: Vec<&str> = Vec::new();
    let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    let mut sorted: Vec<&SpanRecord> = spans.iter().filter(|s| s.depth == 0).collect();
    sorted.sort_by_key(|s| s.start_us);
    for span in &sorted {
        if !agg.contains_key(span.name) {
            order.push(span.name);
        }
        let entry = agg.entry(span.name).or_insert((0, 0));
        entry.0 += span.duration_us;
        entry.1 += 1;
    }
    let total_us: u64 = agg.values().map(|(us, _)| us).sum();
    let mut table = Table::new(
        "Per-phase wall time",
        &["Phase", "Total (s)", "Share (%)", "Count", "Mean (ms)"],
    );
    for name in order {
        let (us, count) = agg[name];
        table.push_row(vec![
            name.to_string(),
            format!("{:.3}", us as f64 / 1e6),
            format!("{:.1}", 100.0 * us as f64 / (total_us.max(1)) as f64),
            count.to_string(),
            format!("{:.2}", us as f64 / 1e3 / count.max(1) as f64),
        ]);
    }
    println!("{}", table.to_markdown());
}

/// Prints quantiles of every log-bucketed histogram in the sink (request
/// and inference latencies).
fn print_latency_table(text: &str) -> Result<(), String> {
    let snap = parse_jsonl_metrics(text)?;
    if snap.log_histograms.is_empty() {
        return Ok(());
    }
    let mut table = Table::new(
        "Latency histograms (µs)",
        &["Series", "Count", "p50", "p90", "p99", "Max", "Mean"],
    );
    for (name, h) in &snap.log_histograms {
        table.push_row(vec![
            name.clone(),
            h.count().to_string(),
            h.quantile(0.50).to_string(),
            h.quantile(0.90).to_string(),
            h.quantile(0.99).to_string(),
            if h.is_empty() { 0 } else { h.max() }.to_string(),
            format!("{:.0}", h.mean()),
        ]);
    }
    println!("{}", table.to_markdown());
    Ok(())
}

fn run(argv: &[String]) -> Result<(), String> {
    let mut trace = None;
    let mut chrome = None;
    let mut check_prom = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--trace" => trace = Some(value("--trace")?),
            "--chrome" => chrome = Some(value("--chrome")?),
            "--check-prom" => check_prom = Some(value("--check-prom")?),
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if trace.is_none() && check_prom.is_none() {
        return Err(format!("nothing to do\n{}", usage()));
    }
    if chrome.is_some() && trace.is_none() {
        return Err(format!("--chrome needs --trace\n{}", usage()));
    }

    if let Some(path) = trace {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let (spans, events) = parse_trace(&text)?;
        eprintln!("{path}: {} span(s), {} event(s)", spans.len(), events.len());
        print_phase_table(&spans);
        print_latency_table(&text)?;
        if let Some(out) = chrome {
            let doc = chrome_trace(&spans, &events, &BTreeMap::new());
            std::fs::write(&out, doc.to_json())
                .map_err(|e| format!("cannot write {out:?}: {e}"))?;
            println!("chrome trace written to {out} (load in chrome://tracing or ui.perfetto.dev)");
        }
    }
    if let Some(path) = check_prom {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        let series = validate_prometheus_text(&text)
            .map_err(|e| format!("{path}: invalid Prometheus exposition: {e}"))?;
        println!("{path}: OK ({series} samples)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
