//! Trains (with disk cache) a scenario plus a tile surrogate, maps the
//! model through both the exact solver (`W'`) and the surrogate (`W''`),
//! and persists all three serving tiers as one `XBARMDL1` bundle for
//! `xbar-serve --fidelity`.
//!
//! Thin CLI wrapper over
//! [`xbar_bench::artifacts::surrogate::surrogate_train`].
//!
//! Usage: `cargo run --release -p xbar-bench --bin surrogate-train --
//! [--smoke|--full] [--seed N] [--network vgg11|vgg16]
//! [--dataset cifar10|cifar100] [--method none|cf|xcs|xrs] [--size N]
//! [--threads N] [--out <path>]`
//!
//! `--threads 0` resets the compute-thread budget to auto-detection.

use std::process::ExitCode;
use xbar_bench::artifacts::{surrogate, ArtifactCtx};
use xbar_bench::runner::{Arity, RunContext};
use xbar_bench::DatasetKind;
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;

fn main() -> ExitCode {
    let mut ctx = RunContext::init(
        "surrogate-train",
        &[
            ("--network", Arity::Value),
            ("--dataset", Arity::Value),
            ("--method", Arity::Value),
            ("--size", Arity::Value),
            ("--threads", Arity::Value),
            ("--out", Arity::Value),
        ],
    );
    if let Some(raw) = ctx.args.get("--threads") {
        match raw.parse::<usize>() {
            // 0 resets any prior override back to auto-detection.
            Ok(n) => xbar_tensor::threads::set_max_threads(n),
            _ => {
                eprintln!(
                    "error: --threads must be a non-negative integer (0 = auto), got {raw:?}"
                );
                return ExitCode::from(2);
            }
        }
    }
    let variant = match ctx.args.get("--network").unwrap_or("vgg11") {
        "vgg11" => VggVariant::Vgg11,
        "vgg16" => VggVariant::Vgg16,
        other => {
            eprintln!("error: --network must be vgg11 or vgg16, got {other:?}");
            return ExitCode::from(2);
        }
    };
    let dataset = match ctx.args.get("--dataset").unwrap_or("cifar10") {
        "cifar10" => DatasetKind::Cifar10Like,
        "cifar100" => DatasetKind::Cifar100Like,
        other => {
            eprintln!("error: --dataset must be cifar10 or cifar100, got {other:?}");
            return ExitCode::from(2);
        }
    };
    let method = match ctx.args.get("--method").unwrap_or("cf") {
        "none" => PruneMethod::None,
        "cf" => PruneMethod::ChannelFilter,
        "xcs" => PruneMethod::XbarColumn,
        "xrs" => PruneMethod::XbarRow,
        other => {
            eprintln!("error: --method must be none, cf, xcs or xrs, got {other:?}");
            return ExitCode::from(2);
        }
    };
    let size = match ctx
        .args
        .get("--size")
        .unwrap_or(&surrogate::SURROGATE_SIZE.to_string())
        .parse()
    {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("error: --size must be a positive integer");
            return ExitCode::from(2);
        }
    };
    let opts = surrogate::SurrogateTrainOptions {
        variant,
        dataset,
        method,
        size,
        out: ctx.args.get("--out").map(std::path::PathBuf::from),
    };
    ctx.config("crossbar_size", opts.size);
    if let Some(out) = &opts.out {
        ctx.config("artifact", out.display());
    }
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let result = surrogate::surrogate_train(&actx, &opts);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
