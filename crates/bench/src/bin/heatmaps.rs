//! Regenerates the paper's **Fig. 3(f)**: weight-magnitude heatmaps of the
//! 3rd and 5th convolutional layers of the C/F-pruned VGG16/CIFAR10-like
//! model, before and after the R transformation, written as CSV grids under
//! `results/`. Also prints the column-adjacency clustering score (lower =
//! more clustered), the quantitative counterpart of the visual effect.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::figures::fig3f`]; the
//! suite orchestrator runs the same code.
//!
//! Usage: `cargo run --release -p xbar-bench --bin heatmaps
//! [--full|--smoke] [--seed N]`

use std::process::ExitCode;
use xbar_bench::artifacts::{figures, ArtifactCtx};
use xbar_bench::runner::RunContext;

fn main() -> ExitCode {
    let ctx = RunContext::init("heatmaps", &[]);
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let result = figures::fig3f(&actx);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
