//! Regenerates the paper's **Fig. 3(f)**: weight-magnitude heatmaps of the
//! 3rd and 5th convolutional layers of the C/F-pruned VGG16/CIFAR10-like
//! model, before and after the R transformation, written as CSV grids under
//! `results/`. Also prints the column-adjacency clustering score (lower =
//! more clustered), the quantitative counterpart of the visual effect.
//!
//! Usage: `cargo run --release -p xbar-bench --bin heatmaps
//! [--full|--smoke] [--seed N]`

use xbar_bench::report::{results_dir, Table};
use xbar_bench::runner::RunContext;
use xbar_bench::{DatasetKind, Scenario};
use xbar_core::heatmap::{column_adjacency_score, Heatmap};
use xbar_core::rearrange::{ColumnOrder, Rearrangement};
use xbar_nn::vgg::VggVariant;
use xbar_prune::transform::transform;
use xbar_prune::unroll::unrolled_matrices;
use xbar_prune::PruneMethod;

fn main() {
    let ctx = RunContext::init("heatmaps", &[]);
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    let sc = Scenario::new(
        VggVariant::Vgg16,
        DatasetKind::Cifar10Like,
        PruneMethod::ChannelFilter,
        scale,
    )
    .with_seed(seed);
    let data = sc.dataset();
    let tm = sc.train_model_cached(&data);
    let unrolled = unrolled_matrices(&tm.model);
    let mut table = Table::new(
        "Fig 3(f): column clustering score before/after R (lower = more clustered)",
        &[
            "Conv layer",
            "Score before R",
            "Score after R (centre-out)",
            "Score after R (ascending)",
            "Best reduction (%)",
        ],
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    // The paper shows the 3rd and 5th conv layers (1-indexed).
    for conv_ordinal in [3usize, 5] {
        let ul = &unrolled[conv_ordinal - 1];
        // Compact with T first, as the mapping pipeline does.
        let t = transform(&ul.matrix, PruneMethod::ChannelFilter, 32, 32);
        let panel = &t.panels[0].matrix;
        let r = Rearrangement::compute(panel, ColumnOrder::CenterOut, 32);
        let after = r.apply(panel);
        let before_score = column_adjacency_score(panel);
        let after_score = column_adjacency_score(&after);
        // The adjacency metric is minimised by a monotone ordering, so also
        // report the ascending score — the quantitative optimum.
        let asc = Rearrangement::compute(panel, ColumnOrder::Ascending, 32);
        let asc_score = column_adjacency_score(&asc.apply(panel));
        for (tag, matrix) in [("before", panel), ("after", &after)] {
            let hm = Heatmap::from_matrix(matrix, 128, 128);
            let path = dir.join(format!("fig3f_conv{conv_ordinal}_{tag}_r.csv"));
            std::fs::write(&path, hm.to_csv()).expect("write heatmap");
            println!("[heatmap written to {}]", path.display());
        }
        table.push_row(vec![
            format!("conv{conv_ordinal}"),
            format!("{before_score:.5}"),
            format!("{after_score:.5}"),
            format!("{asc_score:.5}"),
            format!(
                "{:.1}",
                100.0 * (1.0 - after_score.min(asc_score) / before_score.max(1e-12))
            ),
        ]);
    }
    table.emit("fig3f_scores").expect("write results");
    ctx.finish();
}
