//! The paper's central *trade-off*, on both axes at once: as structured
//! sparsity rises, crossbar mappings get cheaper (area/energy, via the cost
//! model) but lose more accuracy to non-idealities. One row per C/F sparsity
//! level on VGG11/CIFAR10-like at 32×32 crossbars.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::tables::tradeoff`]; the
//! suite orchestrator runs the same code.
//!
//! Usage: `cargo run --release -p xbar-bench --bin tradeoff
//! [--full|--smoke] [--seed N]`

use std::process::ExitCode;
use xbar_bench::artifacts::{tables, ArtifactCtx};
use xbar_bench::runner::RunContext;

fn main() -> ExitCode {
    let ctx = RunContext::init("tradeoff", &[]);
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let result = tables::tradeoff(&actx);
    ctx.finish();
    match result {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
