//! The paper's central *trade-off*, on both axes at once: as structured
//! sparsity rises, crossbar mappings get cheaper (area/energy, via the cost
//! model) but lose more accuracy to non-idealities. One row per C/F sparsity
//! level on VGG11/CIFAR10-like at 32×32 crossbars.
//!
//! Usage: `cargo run --release -p xbar-bench --bin tradeoff
//! [--full|--smoke] [--seed N]`

use xbar_bench::report::{pct, rate, Table};
use xbar_bench::runner::{crossbar_accuracy_avg, map_config, RunContext, DEFAULT_REPS};
use xbar_bench::{DatasetKind, Scenario};
use xbar_core::cost::{estimate_cost, CostModel};
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;

fn main() {
    let ctx = RunContext::init("tradeoff", &[]);
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    let cost_model = CostModel::default();
    let mut table = Table::new(
        "Trade-off: C/F sparsity vs hardware cost vs crossbar accuracy (VGG11/CIFAR10-like, 32x32)",
        &[
            "Sparsity",
            "Software (%)",
            "Crossbar acc (%)",
            "Crossbars",
            "Area saving",
            "Energy saving",
        ],
    );
    // Dense baseline for the savings ratios.
    let mut dense_cost = None;
    for s in [0.0f64, 0.5, 0.65, 0.8] {
        let method = if s == 0.0 {
            PruneMethod::None
        } else {
            PruneMethod::ChannelFilter
        };
        let sc = Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, method, scale)
            .with_seed(seed)
            .with_sparsity(if s == 0.0 { 0.5 } else { s });
        let sc = if s == 0.0 {
            // Sparsity is ignored for the unpruned run; keep the canonical
            // cache key.
            Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, method, scale)
                .with_seed(seed)
        } else {
            sc
        };
        let data = sc.dataset();
        let tm = sc.train_model_cached(&data);
        let cfg = map_config(&tm, 32, seed);
        let (acc, report) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
        let cost = estimate_cost(&tm.model, &cfg, &cost_model);
        let dense = *dense_cost.get_or_insert(cost);
        xbar_obs::event!(
            "progress",
            sparsity = s,
            accuracy = acc,
            crossbars = cost.crossbars
        );
        table.push_row(vec![
            if s == 0.0 {
                "unpruned".into()
            } else {
                format!("{s:.2}")
            },
            pct(tm.software_accuracy),
            pct(acc),
            report.crossbar_count().to_string(),
            rate(cost.area_saving_vs(&dense)),
            rate(cost.energy_saving_vs(&dense)),
        ]);
    }
    table.emit("tradeoff").expect("write results");
    ctx.finish();
}
