//! Regenerates the paper's **Fig. 3** panels (a)–(d):
//!
//! * (a) inference accuracy vs crossbar size, VGG11/CIFAR10-like, unpruned
//!   vs C/F vs XCS vs XRS at s = 0.8;
//! * (b) accuracy vs crossbar size for C/F at s ∈ {0.5, 0.65, 0.8};
//! * (c) as (a) for VGG16;
//! * (d) average NF for unpruned vs C/F weight matrices at 32×32 and 64×64.
//!
//! Usage: `cargo run --release -p xbar-bench --bin fig3 [--panel a|b|c|d]
//! [--full|--smoke] [--seed N]` (no panel = all).

use xbar_bench::report::{pct, Table};
use xbar_bench::runner::{
    crossbar_accuracy_avg, map_config, Arity, RunContext, DEFAULT_REPS, SIZES,
};
use xbar_bench::{DatasetKind, Scenario};
use xbar_nn::vgg::VggVariant;
use xbar_prune::PruneMethod;

fn main() {
    let ctx = RunContext::init("fig3", &[("--panel", Arity::Value)]);
    let (scale, seed) = (ctx.args.scale, ctx.args.seed);
    let panel = ctx.args.get("--panel").map(str::to_string);
    let run = |p: &str| panel.as_deref().is_none_or(|sel| sel == p);

    let methods = [
        PruneMethod::None,
        PruneMethod::ChannelFilter,
        PruneMethod::XbarColumn,
        PruneMethod::XbarRow,
    ];

    // Panels (a) and (c): accuracy vs size per method.
    for (panel_id, variant) in [("a", VggVariant::Vgg11), ("c", VggVariant::Vgg16)] {
        if !run(panel_id) {
            continue;
        }
        let mut table = Table::new(
            format!(
                "Fig 3({panel_id}): accuracy vs crossbar size, {variant}/CIFAR10-like (s = 0.8)"
            ),
            &[
                "Method",
                "Software (%)",
                "16x16 (%)",
                "32x32 (%)",
                "64x64 (%)",
            ],
        );
        for method in methods {
            let sc =
                Scenario::new(variant, DatasetKind::Cifar10Like, method, scale).with_seed(seed);
            let data = sc.dataset();
            let tm = sc.train_model_cached(&data);
            let mut row = vec![method.to_string(), pct(tm.software_accuracy)];
            for size in SIZES {
                let cfg = map_config(&tm, size, seed);
                let (acc, _) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
                xbar_obs::event!(
                    "progress",
                    panel = format!("fig3{panel_id}"),
                    method = method.to_string(),
                    size = size,
                    accuracy = acc
                );
                row.push(pct(acc));
            }
            table.push_row(row);
        }
        table
            .emit(&format!("fig3{panel_id}"))
            .expect("write results");
    }

    // Panel (b): C/F sparsity sweep on VGG11.
    if run("b") {
        let mut table = Table::new(
            "Fig 3(b): accuracy vs crossbar size for C/F sparsities, VGG11/CIFAR10-like",
            &[
                "Sparsity",
                "Software (%)",
                "16x16 (%)",
                "32x32 (%)",
                "64x64 (%)",
            ],
        );
        for s in [0.5f64, 0.65, 0.8] {
            let sc = Scenario::new(
                VggVariant::Vgg11,
                DatasetKind::Cifar10Like,
                PruneMethod::ChannelFilter,
                scale,
            )
            .with_seed(seed)
            .with_sparsity(s);
            let data = sc.dataset();
            let tm = sc.train_model_cached(&data);
            let mut row = vec![format!("{s:.2}"), pct(tm.software_accuracy)];
            for size in SIZES {
                let cfg = map_config(&tm, size, seed);
                let (acc, _) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
                xbar_obs::event!(
                    "progress",
                    panel = "fig3b",
                    sparsity = s,
                    size = size,
                    accuracy = acc
                );
                row.push(pct(acc));
            }
            table.push_row(row);
        }
        table.emit("fig3b").expect("write results");
    }

    // Panel (d): average NF, unpruned vs C/F, 32x32 -> 64x64.
    if run("d") {
        let mut table = Table::new(
            "Fig 3(d): average NF, unpruned vs C/F pruned VGG11/CIFAR10-like",
            &["Method", "NF @ 32x32", "NF @ 64x64", "Growth (x)"],
        );
        for method in [PruneMethod::None, PruneMethod::ChannelFilter] {
            let sc = Scenario::new(VggVariant::Vgg11, DatasetKind::Cifar10Like, method, scale)
                .with_seed(seed);
            let data = sc.dataset();
            let tm = sc.train_model_cached(&data);
            let mut nfs = Vec::new();
            for size in [32usize, 64] {
                let cfg = map_config(&tm, size, seed);
                let (_, report) = crossbar_accuracy_avg(&tm, &data, &cfg, DEFAULT_REPS);
                nfs.push(report.mean_nf());
            }
            xbar_obs::event!(
                "progress",
                panel = "fig3d",
                method = method.to_string(),
                nf_32 = nfs[0],
                nf_64 = nfs[1]
            );
            table.push_row(vec![
                method.to_string(),
                format!("{:.4}", nfs[0]),
                format!("{:.4}", nfs[1]),
                format!("{:.2}", nfs[1] / nfs[0].max(1e-12)),
            ]);
        }
        table.emit("fig3d").expect("write results");
    }
    ctx.finish();
}
