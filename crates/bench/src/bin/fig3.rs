//! Regenerates the paper's **Fig. 3** panels (a)–(d):
//!
//! * (a) inference accuracy vs crossbar size, VGG11/CIFAR10-like, unpruned
//!   vs C/F vs XCS vs XRS at s = 0.8;
//! * (b) accuracy vs crossbar size for C/F at s ∈ {0.5, 0.65, 0.8};
//! * (c) as (a) for VGG16;
//! * (d) average NF for unpruned vs C/F weight matrices at 32×32 and 64×64.
//!
//! Thin CLI wrapper over [`xbar_bench::artifacts::figures::fig3_panel`];
//! the suite orchestrator runs the same code, one artifact per panel.
//!
//! Usage: `cargo run --release -p xbar-bench --bin fig3 [--panel a|b|c|d]
//! [--full|--smoke] [--seed N]` (no panel = all).

use std::process::ExitCode;
use xbar_bench::artifacts::{figures, ArtifactCtx};
use xbar_bench::runner::{Arity, RunContext};

fn main() -> ExitCode {
    let ctx = RunContext::init("fig3", &[("--panel", Arity::Value)]);
    let panel = ctx.args.get("--panel").map(str::to_string);
    let actx = ArtifactCtx::new(ctx.args.scale, ctx.args.scale_name, ctx.args.seed);
    let mut result = Ok(());
    for p in ["a", "b", "c", "d"] {
        if panel.as_deref().is_none_or(|sel| sel == p) {
            if let Err(e) = figures::fig3_panel(&actx, p) {
                eprintln!("error: fig3{p}: {e}");
                result = Err(());
            }
        }
    }
    ctx.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(()) => ExitCode::FAILURE,
    }
}
