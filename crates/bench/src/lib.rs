//! # xbar-bench
//!
//! Shared experiment machinery for regenerating every table and figure of
//! the paper, used by the binaries in `src/bin/` (`table1`, `fig3`, `fig4`,
//! `heatmaps`, `ablation`) and the criterion benches.
//!
//! The harness trains width-scaled VGG models on the synthetic CIFAR-like
//! datasets (see `xbar-data` and `DESIGN.md` for the substitution note),
//! prunes them at initialisation with the paper's three structured methods,
//! maps them onto non-ideal crossbars of 16×16 / 32×32 / 64×64 and reports
//! software vs crossbar accuracies, NF statistics and compression rates.
//!
//! Absolute numbers differ from the paper (different dataset, width-scaled
//! models, our circuit parameters); the reproduced quantity is the *shape*:
//! orderings, trends with crossbar size and sparsity, and the effect of the
//! R and WCT mitigations. `EXPERIMENTS.md` records both sides.

pub mod artifacts;
pub mod loadcore;
pub mod openloop;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod suite;

pub use scenario::{DatasetKind, ExperimentScale, Scenario, TrainedModel};
