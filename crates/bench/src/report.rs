//! Markdown/CSV reporting helpers shared by the experiment binaries.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple table accumulated row by row and rendered as GitHub-flavoured
/// markdown and CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("\n## {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `results/` without printing anything — the
    /// quiet half of [`Table::emit`], used by the suite orchestrator whose
    /// concurrent artifact workers must not interleave markdown on stdout.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the results directory or file cannot be
    /// written.
    pub fn write_csv(&self, file_stem: &str) -> io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Prints the markdown to stdout and writes the CSV under `results/`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the results directory or file cannot be
    /// written.
    pub fn emit(&self, file_stem: &str) -> io::Result<PathBuf> {
        println!("{}", self.to_markdown());
        let path = self.write_csv(file_stem)?;
        println!("[csv written to {}]", path.display());
        Ok(path)
    }
}

/// The directory experiment CSVs are written to (`results/` beside the
/// workspace root, overridable with `XBAR_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("XBAR_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .join("results")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Formats a ratio like the paper's compression rates ("19.69x").
pub fn rate(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_shapes() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.8349), "83.5");
        assert_eq!(rate(19.687), "19.69x");
    }

    #[test]
    fn results_dir_is_workspace_level() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
