//! Suite-orchestrator integration tests: end-to-end `run_suite` runs against
//! a temporary results directory.
//!
//! The artifact under test is `ablation_approximation` (study A6): it needs
//! no training, has no wall-time columns, and derives all randomness from a
//! fixed xorshift seed — so it is cheap and its CSV must be byte-identical
//! across runs. `XBAR_RESULTS_DIR` is process-global, so every test
//! serialises on one mutex and points the variable at its own directory.

use std::path::PathBuf;
use std::sync::Mutex;
use xbar_bench::scenario::ExperimentScale;
use xbar_bench::suite::{run_suite, suite_json_path, ArtifactStatus, SuiteConfig};
use xbar_obs::json::Json;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Points `XBAR_RESULTS_DIR` at a fresh per-test directory; restores on drop.
struct ResultsDirGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
    dir: PathBuf,
}

impl ResultsDirGuard {
    fn new(tag: &str) -> Self {
        let lock = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir()
            .join(format!("xbar_suite_test_{}_{tag}", std::process::id()))
            .join("results");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("XBAR_RESULTS_DIR", &dir);
        ResultsDirGuard { _lock: lock, dir }
    }
}

impl Drop for ResultsDirGuard {
    fn drop(&mut self) {
        std::env::remove_var("XBAR_RESULTS_DIR");
        std::fs::remove_dir_all(self.dir.parent().unwrap()).ok();
    }
}

fn quiet_cfg(only: &[&str]) -> SuiteConfig {
    let mut cfg = SuiteConfig::new(ExperimentScale::smoke(), "smoke");
    cfg.only = only.iter().map(|s| s.to_string()).collect();
    cfg.progress = false;
    cfg.workers = 1;
    cfg
}

fn status_of<'r>(report: &'r xbar_bench::suite::SuiteReport, name: &str) -> &'r ArtifactStatus {
    &report
        .artifacts
        .iter()
        .find(|a| a.name == name)
        .unwrap_or_else(|| panic!("artifact {name} missing from report"))
        .status
}

/// Satellite test 1: one smoke artifact, run twice through the orchestrator,
/// must produce byte-identical CSV and identical key numbers.
#[test]
fn suite_artifact_runs_are_deterministic() {
    let guard = ResultsDirGuard::new("determinism");
    let mut cfg = quiet_cfg(&["ablation_approximation"]);
    cfg.fresh = true; // never resume: both runs must regenerate for real

    let first = run_suite(&cfg).expect("first run");
    assert_eq!(
        *status_of(&first, "ablation_approximation"),
        ArtifactStatus::Ok
    );
    let csv = guard.dir.join("ablation_approximation.csv");
    let bytes_a = std::fs::read(&csv).expect("first CSV");

    let second = run_suite(&cfg).expect("second run");
    assert_eq!(
        *status_of(&second, "ablation_approximation"),
        ArtifactStatus::Ok
    );
    let bytes_b = std::fs::read(&csv).expect("second CSV");

    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "suite re-run must be byte-identical");
    let key = |r: &xbar_bench::suite::SuiteReport| {
        r.artifacts
            .iter()
            .find(|a| a.name == "ablation_approximation")
            .unwrap()
            .key_numbers
            .clone()
    };
    assert_eq!(key(&first), key(&second), "key numbers must match");
}

/// Satellite test 2: `--fail` injects an artifact failure; the suite must
/// finish, write a complete `suite.json` naming the culprit, and report
/// failure (nonzero exit in the binary). A follow-up run without the
/// injection resumes the good artifact and recovers the failed one.
#[test]
fn injected_failure_gates_then_resume_recovers() {
    let guard = ResultsDirGuard::new("gate");
    let mut cfg = quiet_cfg(&["ablation_approximation", "ablation_solver"]);
    cfg.gate = true;
    cfg.fail = vec!["ablation_solver".to_string()];

    let report = run_suite(&cfg).expect("config is valid");
    assert!(report.failed(), "injected failure must gate the run");
    assert_eq!(
        *status_of(&report, "ablation_approximation"),
        ArtifactStatus::Ok
    );
    assert!(
        matches!(status_of(&report, "ablation_solver"), ArtifactStatus::Failed(m) if m.contains("injected")),
        "injected artifact must be marked failed"
    );
    assert!(
        report
            .gate_failures
            .iter()
            .any(|f| f.contains("ablation_solver")),
        "gate failures must name the culprit: {:?}",
        report.gate_failures
    );

    // suite.json is complete despite the failure, with the culprit named.
    let text = std::fs::read_to_string(suite_json_path()).expect("suite.json written");
    let json = Json::parse(&text).expect("suite.json parses");
    assert_eq!(json.get("passed").and_then(Json::as_bool), Some(false));
    let arts = json.get("artifacts").and_then(Json::as_arr).unwrap();
    assert_eq!(arts.len(), 2, "every selected artifact is recorded");
    let solver = arts
        .iter()
        .find(|a| a.get("name").and_then(Json::as_str) == Some("ablation_solver"))
        .unwrap();
    assert_eq!(solver.get("status").and_then(Json::as_str), Some("failed"));
    assert!(solver
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("injected")));
    let failures = json.get("gate_failures").and_then(Json::as_arr).unwrap();
    assert!(failures
        .iter()
        .any(|f| f.as_str().is_some_and(|s| s.contains("ablation_solver"))));

    // Re-run without the injection: the ok artifact resumes (not re-run),
    // the failed one is retried and recovers, and the gate clears.
    cfg.fail.clear();
    let resumed = run_suite(&cfg).expect("resume run");
    assert!(!resumed.failed(), "{:?}", resumed.gate_failures);
    assert_eq!(
        *status_of(&resumed, "ablation_approximation"),
        ArtifactStatus::Resumed
    );
    assert_eq!(*status_of(&resumed, "ablation_solver"), ArtifactStatus::Ok);
    drop(guard);
}

/// Satellite test 2 (second half): an out-of-tolerance committed baseline
/// makes `--gate` fail with a named perf culprit. Exercised through the
/// pure comparison plus the report plumbing (`gate_failures` → `failed()` →
/// nonzero exit in the binary) so the test stays cheap; running the real
/// perf benchmark under the gate is covered by CI's `--smoke --gate` run.
#[test]
fn perf_baseline_regression_fails_the_gate() {
    let baseline = Json::parse(
        r#"{"speedup_cached": 40.0, "speedup_warm": 4.0,
            "bit_identical_cached": true, "bit_identical_warm": true}"#,
    )
    .unwrap();
    let fresh = Json::parse(
        r#"{"speedup_cached": 2.0, "speedup_warm": 3.9,
            "bit_identical_cached": true, "bit_identical_warm": true}"#,
    )
    .unwrap();
    let failures = xbar_bench::suite::perf_gate_failures(&baseline, &fresh, 0.5);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(failures[0].contains("speedup_cached"), "{}", failures[0]);

    // The plumbing: any gate failure flips the report to failed → exit code.
    let mut report = xbar_bench::suite::SuiteReport {
        scale: "smoke".to_string(),
        seed: 42,
        gate: true,
        workers: 1,
        artifacts: Vec::new(),
        scenarios: Default::default(),
        gate_failures: Vec::new(),
        wall_s: 0.0,
    };
    assert!(!report.failed());
    report.gate_failures = failures;
    assert!(report.failed());
    let json = report.to_json();
    assert_eq!(json.get("passed").and_then(Json::as_bool), Some(false));
}
