//! Standard-alphabet base64 (RFC 4648) encode/decode, hand-rolled because
//! the workspace builds hermetically. Used for the `image_b64` request
//! field: 3072 little-endian `f32`s encode ~4× denser than a JSON float
//! array and parse much faster.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes padded base64 (surrounding ASCII whitespace is ignored).
///
/// # Errors
///
/// Returns a description of the offending character or length.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let trimmed: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !trimmed.len().is_multiple_of(4) {
        return Err(format!(
            "base64 length {} is not a multiple of 4",
            trimmed.len()
        ));
    }
    let mut out = Vec::with_capacity(trimmed.len() / 4 * 3);
    for (i, quad) in trimmed.chunks(4).enumerate() {
        let last = i == trimmed.len() / 4 - 1;
        let pads = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pads > 2 || (pads > 0 && !last) {
            return Err("misplaced '=' padding".into());
        }
        let mut n = 0u32;
        for &c in &quad[..4 - pads] {
            n = (n << 6)
                | decode_char(c)
                    .ok_or_else(|| format!("invalid base64 character {:?}", c as char))?;
        }
        n <<= 6 * pads as u32;
        out.push((n >> 16) as u8);
        if pads < 2 {
            out.push((n >> 8) as u8);
        }
        if pads < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

/// Encodes a slice of `f32` as base64 of its little-endian bytes.
pub fn encode_f32(values: &[f32]) -> String {
    let mut bytes = Vec::with_capacity(4 * values.len());
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    encode(&bytes)
}

/// Decodes base64 little-endian bytes back into `f32`s.
///
/// # Errors
///
/// Returns a description for bad base64 or a length not divisible by 4.
pub fn decode_f32(text: &str) -> Result<Vec<f32>, String> {
    let bytes = decode(text)?;
    if bytes.len() % 4 != 0 {
        return Err(format!(
            "decoded {} bytes, not a whole number of f32s",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        for (plain, enc) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn f32_round_trip() {
        let values = [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE];
        let enc = encode_f32(&values);
        assert_eq!(decode_f32(&enc).unwrap(), values);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("abc").is_err(), "bad length");
        assert!(decode("ab!=").is_err(), "bad character");
        assert!(decode("=abc").is_err(), "misplaced padding");
        assert!(decode_f32("Zg==").is_err(), "1 byte is not an f32");
    }
}
