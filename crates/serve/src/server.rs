//! The HTTP inference server.
//!
//! Thread layout:
//!
//! ```text
//! xbar-eventloop thread ──► epoll-driven accept / read / write over every
//!       │                   connection (non-blocking, state machine each)
//!       │ admitted classify requests
//!       ▼
//! bounded BatchQueue ──► N inference replicas (micro-batching, own model
//!       ▲                 snapshot each, hot-swap aware)
//!       │ ResponseSlot notifier ──► completion list + wake pipe
//! ```
//!
//! One thread owns every socket: a hand-rolled epoll loop
//! ([`crate::event_loop`]) accepts, parses, and writes responses without a
//! per-connection thread. Classify requests pass **admission control**
//! before touching the batch queue: once the in-flight count reaches the
//! admission limit the server sheds load with a cheap `429` +
//! `Retry-After` instead of queueing work it cannot finish in time. A full
//! batch queue is still a `503` (backpressure), never a silent drop.
//! `/healthz` and `/metrics` are answered directly from the event loop's
//! fast path and are never shed.
//!
//! Shutdown (SIGTERM/SIGINT via [`signals`], or `POST /admin/shutdown`)
//! stops accepting, drains in-flight requests up to the request timeout,
//! closes the batch queue, and joins every thread.

use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::base64;
use crate::batcher::{BatchQueue, ClassifyOutcome, Pending, ResponseSlot, SubmitError};
use crate::event_loop::EventLoop;
use crate::http::{write_response_with_headers, HttpError, Request};
use crate::lifecycle::{
    replica_inference_loop, sweep_loop, DriftController, LifecycleConfig, ModelSlot,
};
use crate::tier::{Tier, TierModels};
use xbar_core::ArtifactMeta;
use xbar_nn::Sequential;
use xbar_obs::json::Json;
use xbar_obs::ring::{next_trace_id, RequestTrace, Sampler, TraceRing};
use xbar_obs::{metrics, names, trace};

/// POSIX signal handling without a libc crate: `std` already links libc on
/// unix, so declaring `signal(2)` ourselves is enough for a flag-setting
/// handler.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    /// Whether SIGTERM/SIGINT has been received since [`install`].
    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }

    /// Test hook: simulate a received signal.
    pub fn raise() {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn on_signal(_signum: i32) {
            // Async-signal-safe: a single atomic store.
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

/// Server tunables. `Default` suits tests and the demo; the `serve` binary
/// maps its flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Inference replicas, each with its own snapshot of the served
    /// model pulled from the versioned slot.
    pub replicas: usize,
    /// Micro-batch flush threshold.
    pub max_batch: usize,
    /// Micro-batch flush deadline (from first queued request).
    pub batch_deadline: Duration,
    /// Bounded batch-queue capacity (overflow ⇒ 503).
    pub queue_cap: usize,
    /// Per-request wait budget before the client gets a 504.
    pub request_timeout: Duration,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Most connections the event loop will keep registered; accepts past
    /// this are turned away with a `503`.
    pub max_connections: usize,
    /// Admission control: most classify requests allowed in flight at
    /// once — beyond it the server sheds with `429` + `Retry-After`
    /// *before* the batch queue. `0` auto-sizes to
    /// `queue_cap + replicas · max_batch` (everything the pipeline can
    /// actually hold).
    pub admission_limit: usize,
    /// Trace 1-in-N classify requests (0 disables tracing). Sampled
    /// requests get a `trace_id` in the response and their queue → batch →
    /// solve → respond breakdown lands in the trace ring and span buffer.
    pub trace_sample: u64,
    /// Dump any classify request slower than this many milliseconds to
    /// stderr (with its stage breakdown) and keep it in the trace ring even
    /// when unsampled. 0 disables.
    pub slow_ms: u64,
    /// Capacity of the bounded ring of finished request traces.
    pub trace_ring_cap: usize,
    /// Fidelity tier classify requests run against when their body does
    /// not name one (`--fidelity` in the binary). Must be available in the
    /// served artifact.
    pub default_tier: Tier,
    /// Drift lifecycle: health sweeps, mitigation ladder, test hooks. The
    /// default disables it (no drift model, no sweep thread).
    pub lifecycle: LifecycleConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 1,
            max_batch: 32,
            batch_deadline: Duration::from_millis(2),
            queue_cap: 256,
            request_timeout: Duration::from_secs(10),
            max_body: 32 << 20,
            max_connections: 4096,
            admission_limit: 0,
            trace_sample: 0,
            slow_ms: 0,
            trace_ring_cap: 1024,
            default_tier: Tier::Exact,
            lifecycle: LifecycleConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The effective admission limit: the configured value, or the
    /// auto-sized pipeline capacity when 0.
    pub fn effective_admission_limit(&self) -> usize {
        if self.admission_limit > 0 {
            self.admission_limit
        } else {
            self.queue_cap + self.replicas.max(1) * self.max_batch.max(1)
        }
    }
}

/// `Retry-After` seconds attached to shed `429`s and backpressure `503`s:
/// micro-batches drain in milliseconds, so one second is a conservative
/// hint that still stops naive clients from hammering a saturated server.
const RETRY_AFTER_S: u64 = 1;

fn retry_after_header() -> [(&'static str, String); 1] {
    [("Retry-After", RETRY_AFTER_S.to_string())]
}

/// Shared request-handling context for the event loop.
pub(crate) struct Ctx {
    /// Versioned, hot-swappable holder of the served networks and their
    /// metadata; `/admin/reload` and drift sweeps republish through it.
    pub(crate) slot: Arc<ModelSlot>,
    /// Drift lifecycle controller, present when the lifecycle is active.
    pub(crate) lifecycle: Option<Arc<DriftController>>,
    pub(crate) batch_queue: Arc<BatchQueue>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) cfg: ServeConfig,
    pub(crate) sampler: Sampler,
    pub(crate) trace_ring: Arc<TraceRing>,
    /// Resolved admission limit (see [`ServeConfig::admission_limit`]).
    pub(crate) admission_limit: usize,
}

/// A classify request handed to the inference replicas, with everything
/// needed to finish its HTTP response once the slot fills (or times out).
pub(crate) struct InFlight {
    pub(crate) slot: Arc<ResponseSlot>,
    pub(crate) tier: Tier,
    pub(crate) endpoint: &'static str,
    pub(crate) req_start_us: u64,
    pub(crate) started: Instant,
    pub(crate) deadline: Instant,
    pub(crate) sampled: bool,
    pub(crate) keep_alive: bool,
}

/// What handling one parsed request produced: either finished response
/// bytes, or an in-flight classify awaiting its inference result.
pub(crate) enum DispatchResult {
    Done { bytes: Vec<u8>, keep_alive: bool },
    Pending(Box<InFlight>),
}

fn done(bytes: Vec<u8>, keep_alive: bool) -> DispatchResult {
    DispatchResult::Done { bytes, keep_alive }
}

/// Serialises a full HTTP/1.1 response into a buffer the event loop can
/// write incrementally.
fn response_bytes(
    status: u16,
    reason: &str,
    content_type: &str,
    headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 256);
    write_response_with_headers(
        &mut out,
        status,
        reason,
        content_type,
        headers,
        body,
        keep_alive,
    )
    .expect("writing a response to a Vec cannot fail");
    out
}

fn json_bytes(status: u16, reason: &str, body: &Json, keep_alive: bool) -> Vec<u8> {
    response_bytes(
        status,
        reason,
        "application/json",
        &[],
        body.to_json().as_bytes(),
        keep_alive,
    )
}

fn error_json(detail: &str) -> Json {
    Json::Obj(vec![("error".into(), Json::Str(detail.into()))])
}

/// A running server; drop-in handle for tests, the binary, and CI smoke.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    loop_handle: Option<JoinHandle<()>>,
    infer_handles: Vec<JoinHandle<()>>,
    sweep_handle: Option<JoinHandle<()>>,
    batch_queue: Arc<BatchQueue>,
    trace_ring: Arc<TraceRing>,
}

impl Server {
    /// Binds, spawns the event loop and replicas, and returns immediately,
    /// serving only the exact tier (legacy single-model artifacts).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(model: Sequential, meta: ArtifactMeta, cfg: ServeConfig) -> io::Result<Server> {
        Server::start_tiered(TierModels::exact_only(model), meta, cfg)
    }

    /// Binds, spawns the event loop and replicas, and returns immediately,
    /// serving every fidelity tier the artifact bundle carries.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `cfg.default_tier` is not among the loaded
    /// tiers; otherwise the bind (or epoll setup) error.
    pub fn start_tiered(
        models: TierModels,
        meta: ArtifactMeta,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        if !models.has(cfg.default_tier) {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "default fidelity tier \"{}\" is not in the artifact \
                     (available: {}); rebuild the artifact with that tier \
                     or pick another --fidelity",
                    cfg.default_tier,
                    models
                        .available()
                        .iter()
                        .map(|t| t.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let batch_queue = BatchQueue::new(cfg.queue_cap);

        let slot = Arc::new(ModelSlot::new(models, meta));
        let lifecycle = if cfg.lifecycle.active() {
            let controller = DriftController::new(cfg.lifecycle, Arc::clone(&slot))
                .map_err(|e| io::Error::new(ErrorKind::InvalidInput, e))?;
            Some(Arc::new(controller))
        } else {
            None
        };

        let infer_handles: Vec<JoinHandle<()>> = (0..cfg.replicas.max(1))
            .map(|i| {
                let replica_slot = Arc::clone(&slot);
                let queue = Arc::clone(&batch_queue);
                let max_batch = cfg.max_batch;
                let deadline = cfg.batch_deadline;
                thread::Builder::new()
                    .name(format!("xbar-infer-{i}"))
                    .spawn(move || {
                        replica_inference_loop(&replica_slot, &queue, max_batch, deadline, Some(i));
                    })
                    .expect("spawn inference replica")
            })
            .collect();

        let sweep_handle = match &lifecycle {
            Some(controller) if cfg.lifecycle.sweep_interval > Duration::ZERO => {
                let controller = Arc::clone(controller);
                let shutdown = Arc::clone(&shutdown);
                let interval = cfg.lifecycle.sweep_interval;
                Some(
                    thread::Builder::new()
                        .name("xbar-sweep".into())
                        .spawn(move || sweep_loop(&controller, &shutdown, interval))
                        .expect("spawn health-sweep thread"),
                )
            }
            _ => None,
        };

        let trace_ring = Arc::new(TraceRing::new(cfg.trace_ring_cap.max(1)));
        let admission_limit = cfg.effective_admission_limit();
        let ctx = Arc::new(Ctx {
            slot: Arc::clone(&slot),
            lifecycle,
            batch_queue: Arc::clone(&batch_queue),
            shutdown: Arc::clone(&shutdown),
            cfg: cfg.clone(),
            sampler: Sampler::new(cfg.trace_sample),
            trace_ring: Arc::clone(&trace_ring),
            admission_limit,
        });

        // Build the event loop before spawning so epoll/pipe setup errors
        // surface from start (not inside a dead thread).
        let event_loop = EventLoop::new(listener, Arc::clone(&ctx))?;
        let loop_handle = thread::Builder::new()
            .name("xbar-eventloop".into())
            .spawn(move || event_loop.run())
            .expect("spawn event loop");

        metrics::gauge_set(names::SERVE_UP, 1.0);
        let meta = ctx.slot.meta();
        metrics::gauge_set(
            names::SERVE_DEGRADED,
            if meta.is_degraded() { 1.0 } else { 0.0 },
        );
        metrics::gauge_set(names::SERVE_DEGRADED_TILES, meta.degraded_tiles as f64);
        metrics::gauge_set(names::SERVE_STUCK_CELLS, meta.stuck_cells as f64);
        metrics::gauge_set(names::SERVE_REPAIRED_COLUMNS, meta.repaired_columns as f64);
        metrics::gauge_set(names::SERVE_MAX_FAULT_SCORE, meta.max_fault_score);
        metrics::gauge_set(names::SERVE_FIDELITY_TIER, cfg.default_tier.gauge_value());
        if let Some(s) = &meta.surrogate {
            metrics::gauge_set(names::SERVE_SURROGATE_VAL_MAX_ERR, s.val_max_err);
            metrics::gauge_set(names::SERVE_SURROGATE_VAL_RMS_ERR, s.val_rms_err);
        }
        Ok(Server {
            addr,
            shutdown,
            loop_handle: Some(loop_handle),
            infer_handles,
            sweep_handle,
            batch_queue,
            trace_ring,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bounded ring of finished request traces (sampled and slow
    /// requests land here; see [`ServeConfig::trace_sample`]).
    pub fn trace_ring(&self) -> Arc<TraceRing> {
        Arc::clone(&self.trace_ring)
    }

    /// A flag other threads (or the admin endpoint) can set to stop the
    /// server; [`Server::run_until_shutdown`] also watches process signals.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Blocks until a shutdown is requested (signal, admin endpoint, or
    /// [`Server::shutdown_handle`]), then drains gracefully.
    pub fn run_until_shutdown(self) {
        while !self.shutdown.load(Ordering::SeqCst) && !signals::signalled() {
            thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Graceful drain: stop accepting, finish in-flight requests, flush the
    /// batch queue, join every thread.
    pub fn join(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The event loop polls the flag every tick, drops the listener,
        // drains in-flight connections, and exits.
        if let Some(handle) = self.loop_handle.take() {
            handle.join().expect("event loop panicked");
        }
        // No producers remain: close the batch queue so inference replicas
        // drain what is left and exit.
        self.batch_queue.close();
        for handle in self.infer_handles.drain(..) {
            handle.join().expect("inference replica panicked");
        }
        // The sweep thread polls the shutdown flag in short ticks.
        if let Some(handle) = self.sweep_handle.take() {
            handle.join().expect("health-sweep thread panicked");
        }
        // Final accounting: how much tracing data the bounded buffers shed.
        let ring_dropped = self.trace_ring.dropped();
        if ring_dropped > 0 {
            metrics::counter_add(names::SERVE_TRACE_SPANS_DROPPED, ring_dropped);
        }
        let (spans_dropped, events_dropped) = trace::dropped_counts();
        if spans_dropped + events_dropped > 0 {
            metrics::counter_add(
                names::OBS_TRACE_SPANS_DROPPED,
                spans_dropped + events_dropped,
            );
        }
        metrics::gauge_set(names::SERVE_UP, 0.0);
    }
}

/// Best-effort `503` for a socket turned away at the connection limit,
/// before it ever joins the poll set.
pub(crate) fn reject_connection(stream: TcpStream, max_connections: usize) {
    stream.set_nonblocking(true).ok();
    let body = error_json(&format!(
        "connection limit reached ({max_connections} open), retry later"
    ));
    let bytes = response_bytes(
        503,
        "Service Unavailable",
        "application/json",
        &retry_after_header(),
        body.to_json().as_bytes(),
        false,
    );
    let _ = (&stream).write(&bytes);
}

/// The response for a request that arrived after drain began.
pub(crate) fn shutting_down_response() -> Vec<u8> {
    response_bytes(
        503,
        "Service Unavailable",
        "application/json",
        &retry_after_header(),
        error_json("server is shutting down").to_json().as_bytes(),
        false,
    )
}

/// Maps a request-parse error to its response bytes (empty ⇒ just close).
pub(crate) fn http_error_response(err: &HttpError) -> Vec<u8> {
    match err {
        HttpError::Io(_) => Vec::new(),
        HttpError::Bad(msg) => {
            metrics::counter_add(names::SERVE_BAD_REQUESTS, 1);
            json_bytes(400, "Bad Request", &error_json(msg), false)
        }
        HttpError::NeedsLength => json_bytes(
            411,
            "Length Required",
            &error_json("send Content-Length"),
            false,
        ),
        HttpError::BodyTooLarge { limit } => json_bytes(
            413,
            "Payload Too Large",
            &error_json(&format!("body exceeds {limit} bytes")),
            false,
        ),
    }
}

/// Stable low-cardinality label for the per-endpoint latency series.
fn endpoint_label(request: &Request) -> &'static str {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/v1/model") => "model",
        ("POST", "/v1/classify") => "classify",
        ("POST", "/admin/shutdown") => "admin",
        ("POST", "/admin/reload") => "admin",
        ("POST", "/admin/advance-time") => "admin",
        _ => "other",
    }
}

/// Handles one parsed request from the event loop. `inflight_now` is the
/// loop's current count of admitted-but-unanswered classify requests (the
/// admission-control signal); `notify` is the completion callback a
/// pending classify must fire when its slot fills.
///
/// Finished (`Done`) requests land in the per-endpoint latency histogram
/// here; pending ones are recorded by [`finish_inflight`].
pub(crate) fn dispatch(
    request: &Request,
    ctx: &Ctx,
    inflight_now: usize,
    notify: Box<dyn FnOnce() + Send>,
) -> DispatchResult {
    let start = Instant::now();
    let endpoint = endpoint_label(request);
    metrics::counter_add(names::SERVE_HTTP_REQUESTS, 1);
    let keep_alive = request.keep_alive() && !ctx.shutdown.load(Ordering::SeqCst);
    let result = route(request, ctx, endpoint, inflight_now, keep_alive, notify);
    if let DispatchResult::Done { .. } = &result {
        metrics::latency_record_us(
            &names::serve_request_us(endpoint),
            start.elapsed().as_micros() as u64,
        );
    }
    result
}

fn route(
    request: &Request,
    ctx: &Ctx,
    endpoint: &'static str,
    inflight_now: usize,
    keep_alive: bool,
    notify: Box<dyn FnOnce() + Send>,
) -> DispatchResult {
    match (request.method.as_str(), request.path.as_str()) {
        // Health and metrics are answered straight off the fast path —
        // admission control and the batch queue never touch them, so
        // orchestrator probes keep working on a saturated server.
        ("GET", "/healthz") => done(
            json_bytes(200, "OK", &healthz_json(ctx), keep_alive),
            keep_alive,
        ),
        ("GET", "/metrics") => done(
            response_bytes(
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                metrics::to_text().as_bytes(),
                keep_alive,
            ),
            keep_alive,
        ),
        ("GET", "/v1/model") => done(
            json_bytes(200, "OK", &model_json(ctx), keep_alive),
            keep_alive,
        ),
        ("POST", "/v1/classify") => {
            classify_dispatch(request, ctx, endpoint, inflight_now, keep_alive, notify)
        }
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            let body = Json::Obj(vec![("status".into(), Json::Str("shutting down".into()))]);
            done(json_bytes(200, "OK", &body, false), false)
        }
        ("POST", "/admin/reload") => {
            let (status, reason, body) = admin_reload(request, ctx);
            done(json_bytes(status, reason, &body, keep_alive), keep_alive)
        }
        ("POST", "/admin/advance-time") => {
            let (status, reason, body) = admin_advance_time(request, ctx);
            done(json_bytes(status, reason, &body, keep_alive), keep_alive)
        }
        _ => {
            let body = error_json(&format!("no route {} {}", request.method, request.path));
            done(json_bytes(404, "Not Found", &body, keep_alive), keep_alive)
        }
    }
}

/// The `/healthz` body: liveness, queue depth, degradation counters, and
/// (when active) the drift-lifecycle status.
fn healthz_json(ctx: &Ctx) -> Json {
    // Degraded ≠ dead: tiles past the repair threshold lower the reported
    // health but the server keeps classifying, so probes still get HTTP
    // 200 and orchestrators can alert without restarting a model that is
    // merely less accurate.
    let meta = ctx.slot.meta();
    let status = if meta.is_degraded() { "degraded" } else { "ok" };
    let mut fields = vec![
        ("status".into(), Json::Str(status.into())),
        ("model".into(), Json::Str(meta.label.clone())),
        (
            "queue_depth".into(),
            Json::Num(ctx.batch_queue.depth() as f64),
        ),
        (
            "degraded_tiles".into(),
            Json::Num(meta.degraded_tiles as f64),
        ),
        (
            "repaired_columns".into(),
            Json::Num(meta.repaired_columns as f64),
        ),
        ("stuck_cells".into(), Json::Num(meta.stuck_cells as f64)),
    ];
    fields.extend(lifecycle_fields(ctx));
    Json::Obj(fields)
}

/// The `/v1/model` body: the artifact's mapping summary extended with the
/// serving-side fidelity-tier facts — the deployment's default tier, which
/// tiers the artifact carries, and the embedded surrogate's held-out
/// validation error when one is present.
fn model_json(ctx: &Ctx) -> Json {
    let meta = ctx.slot.meta();
    let Json::Obj(mut fields) = meta.summary_json() else {
        unreachable!("summary_json always returns an object");
    };
    fields.push((
        "fidelity_tier".into(),
        Json::Str(ctx.cfg.default_tier.as_str().into()),
    ));
    fields.push((
        "available_tiers".into(),
        Json::Arr(
            ctx.slot
                .available()
                .iter()
                .map(|t| Json::Str(t.as_str().into()))
                .collect(),
        ),
    ));
    if let Some(s) = &meta.surrogate {
        fields.push(("surrogate_val_max_err".into(), Json::Num(s.val_max_err)));
        fields.push(("surrogate_val_rms_err".into(), Json::Num(s.val_rms_err)));
    }
    fields.push(("model_version".into(), Json::Num(ctx.slot.version() as f64)));
    fields.extend(lifecycle_fields(ctx));
    Json::Obj(fields)
}

/// Drift-lifecycle fields shared by `/healthz` and `/v1/model`; empty when
/// the lifecycle is disabled, so static deployments keep their old bodies.
fn lifecycle_fields(ctx: &Ctx) -> Vec<(String, Json)> {
    let Some(controller) = &ctx.lifecycle else {
        return Vec::new();
    };
    let status = controller.status();
    vec![
        ("health_sweeps".into(), Json::Num(status.sweeps as f64)),
        (
            "last_sweep_unix_s".into(),
            status
                .last_sweep_unix_s
                .map_or(Json::Null, |t| Json::Num(t as f64)),
        ),
        ("probe_accuracy".into(), Json::Num(status.probe_accuracy)),
        ("probe_deviation".into(), Json::Num(status.probe_deviation)),
        (
            "probe_current_deviation".into(),
            Json::Num(status.probe_current_deviation),
        ),
        ("mitigation_rung".into(), Json::Num(f64::from(status.rung))),
        ("drift_elapsed_s".into(), Json::Num(status.drift_elapsed_s)),
        ("drift_mean_decay".into(), Json::Num(status.mean_decay)),
    ]
}

/// `POST /admin/reload` — hot artifact swap. Body `{"artifact": "<path>"}`
/// loads and swaps in that bundle (validated request-compatible); an empty
/// body re-programs the current artifact in place (a manual rung-3
/// recovery). In-flight requests finish on the old weights.
fn admin_reload(request: &Request, ctx: &Ctx) -> (u16, &'static str, Json) {
    let artifact = if request.body.is_empty() {
        None
    } else {
        match parse_body(&request.body) {
            Ok(json) => match json.get("artifact") {
                None | Some(Json::Null) => None,
                Some(Json::Str(path)) => Some(path.clone()),
                Some(other) => {
                    let msg = format!(
                        "\"artifact\" must be a path string, got {}",
                        other.to_json()
                    );
                    return (400, "Bad Request", error_json(&msg));
                }
            },
            Err(msg) => return (400, "Bad Request", error_json(&msg)),
        }
    };
    let result = match &ctx.lifecycle {
        Some(controller) => controller.reload(artifact.as_deref()),
        None => reload_without_lifecycle(&ctx.slot, artifact.as_deref()),
    };
    match result {
        Ok((version, label)) => (
            200,
            "OK",
            Json::Obj(vec![
                ("status".into(), Json::Str("reloaded".into())),
                ("model".into(), Json::Str(label)),
                ("model_version".into(), Json::Num(version as f64)),
            ]),
        ),
        Err(msg) => (409, "Conflict", error_json(&msg)),
    }
}

/// The slot-only reload path for deployments without a drift lifecycle:
/// still validates compatibility and swaps without dropping requests. The
/// artifact is mapped, not read — the tensor parser streams straight out
/// of the page cache.
fn reload_without_lifecycle(
    slot: &ModelSlot,
    artifact: Option<&str>,
) -> Result<(u64, String), String> {
    let (version, label) = match artifact {
        Some(path) => {
            let bundle = xbar_core::load_artifact_bundle_mmap(path)
                .map_err(|e| format!("cannot load artifact {path}: {e}"))?;
            let (models, meta) = TierModels::from_bundle(bundle);
            let label = meta.label.clone();
            (slot.publish_bundle(models, meta)?, label)
        }
        None => {
            // Nothing drifts without a lifecycle; republish as-is so the
            // endpoint still answers (and bumps the version) uniformly.
            let model = slot.exact_model();
            (slot.publish_exact(model), slot.meta().label)
        }
    };
    metrics::counter_add(names::SERVE_RELOADS, 1);
    Ok((version, label))
}

/// `POST /admin/advance-time` — test hook (404 unless enabled): advances
/// the simulated drift clock by `{"seconds": N}` and, with `"sweep": true`,
/// runs one synchronous health sweep so tests observe the mitigation
/// deterministically.
fn admin_advance_time(request: &Request, ctx: &Ctx) -> (u16, &'static str, Json) {
    if !ctx.cfg.lifecycle.test_hooks {
        // Hidden, not forbidden: indistinguishable from an unknown route.
        return (
            404,
            "Not Found",
            error_json(&format!("no route {} {}", request.method, request.path)),
        );
    }
    let Some(controller) = &ctx.lifecycle else {
        return (409, "Conflict", error_json("drift lifecycle is not active"));
    };
    let parsed = parse_body(&request.body).and_then(|json| {
        let seconds = json
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or("body needs \"seconds\" (number)")?;
        if !seconds.is_finite() || seconds < 0.0 {
            return Err(format!(
                "\"seconds\" must be finite and >= 0, got {seconds}"
            ));
        }
        let sweep = json.get("sweep").and_then(Json::as_bool).unwrap_or(false);
        Ok((seconds, sweep))
    });
    let (seconds, sweep) = match parsed {
        Ok(parsed) => parsed,
        Err(msg) => return (400, "Bad Request", error_json(&msg)),
    };
    let (elapsed, mean_decay) = controller.advance_time(seconds);
    let mut fields = vec![
        ("status".into(), Json::Str("advanced".into())),
        ("drift_elapsed_s".into(), Json::Num(elapsed)),
        ("drift_mean_decay".into(), Json::Num(mean_decay)),
    ];
    if sweep {
        let report = controller.sweep();
        fields.push((
            "sweep".into(),
            Json::Obj(vec![
                ("rung".into(), Json::Num(f64::from(report.rung))),
                ("pre_accuracy".into(), Json::Num(report.pre_accuracy)),
                ("post_accuracy".into(), Json::Num(report.post_accuracy)),
                (
                    "refreshed_cells".into(),
                    Json::Num(report.refreshed_cells as f64),
                ),
                (
                    "remapped_columns".into(),
                    Json::Num(report.remapped_columns as f64),
                ),
            ]),
        ));
    }
    (200, "OK", Json::Obj(fields))
}

/// Parses a classify body into JSON.
fn parse_body(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))
}

/// Resolves the request's fidelity tier: the optional `"tier"` body field,
/// falling back to the deployment default.
fn parse_tier(json: &Json, default: Tier) -> Result<Tier, String> {
    match json.get("tier") {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Str(name)) => Tier::parse(name),
        Some(other) => Err(format!(
            "\"tier\" must be a string (\"exact\", \"surrogate\", \
             \"ideal\"), got {}",
            other.to_json()
        )),
    }
}

/// Extracts the image from a classify body: `image` (JSON array of floats)
/// or `image_b64` (base64 little-endian f32 bytes).
fn parse_image(json: &Json, expected_len: usize) -> Result<Vec<f32>, String> {
    let image = if let Some(b64) = json.get("image_b64").and_then(Json::as_str) {
        base64::decode_f32(b64).map_err(|e| format!("image_b64: {e}"))?
    } else if let Some(values) = json.get("image").and_then(Json::as_arr) {
        values
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<Vec<f32>>>()
            .ok_or("\"image\" must be an array of numbers")?
    } else {
        return Err("body needs \"image\" (float array) or \"image_b64\" (LE f32 base64)".into());
    };
    if image.len() != expected_len {
        return Err(format!(
            "image has {} values, model expects {expected_len}",
            image.len()
        ));
    }
    if let Some(bad) = image.iter().find(|v| !v.is_finite()) {
        return Err(format!("image contains non-finite value {bad}"));
    }
    Ok(image)
}

/// Starts a classify request: admission control first (shed with 429
/// before any body parsing), then validation, then submission to the
/// batch queue with the completion notifier pre-registered.
fn classify_dispatch(
    request: &Request,
    ctx: &Ctx,
    endpoint: &'static str,
    inflight_now: usize,
    keep_alive: bool,
    notify: Box<dyn FnOnce() + Send>,
) -> DispatchResult {
    metrics::counter_add(names::SERVE_CLASSIFY_REQUESTS, 1);
    if inflight_now >= ctx.admission_limit {
        // Shed before spending anything on the body: the pipeline already
        // holds more work than it can finish inside the request timeout.
        metrics::counter_add(names::SERVE_ADMISSION_SHED, 1);
        let body = error_json(&format!(
            "admission limit reached ({inflight_now} requests in flight), retry later"
        ));
        return done(
            response_bytes(
                429,
                "Too Many Requests",
                "application/json",
                &retry_after_header(),
                body.to_json().as_bytes(),
                keep_alive,
            ),
            keep_alive,
        );
    }
    let req_start_us = trace::now_us();
    let sampled = ctx.sampler.sample();
    let meta = ctx.slot.meta();
    let parsed = parse_body(&request.body).and_then(|json| {
        let tier = parse_tier(&json, ctx.cfg.default_tier)?;
        let input = parse_image(&json, meta.input_len())?;
        Ok((tier, input))
    });
    let (tier, input) = match parsed {
        Ok(parsed) => parsed,
        Err(msg) => {
            metrics::counter_add(names::SERVE_CLASSIFY_BAD_INPUT, 1);
            return done(
                json_bytes(400, "Bad Request", &error_json(&msg), keep_alive),
                keep_alive,
            );
        }
    };
    let available_tiers = ctx.slot.available();
    if !available_tiers.contains(&tier) {
        // Never a silent fallback: the caller asked for a fidelity the
        // served artifact cannot honour.
        metrics::counter_add(names::SERVE_CLASSIFY_BAD_INPUT, 1);
        let body = error_json(&format!(
            "fidelity tier \"{tier}\" is not in the served artifact \
             (available: {}); rebuild the artifact with that tier or drop \
             the \"tier\" field",
            available_tiers
                .iter()
                .map(|t| t.as_str())
                .collect::<Vec<_>>()
                .join(", "),
        ));
        return done(json_bytes(409, "Conflict", &body, keep_alive), keep_alive);
    }
    metrics::counter_add(&names::serve_classify_tier(tier.as_str()), 1);
    let slot = ResponseSlot::new();
    // Notifier before submit: a fill can race ahead of this line otherwise
    // and the completion would never reach the event loop.
    slot.set_notifier(notify);
    let pending = Pending::for_tier(tier, input, Arc::clone(&slot));
    if let Err(e) = ctx.batch_queue.submit(pending) {
        metrics::counter_add(names::SERVE_CLASSIFY_REJECTED, 1);
        let detail = match e {
            SubmitError::QueueFull { cap } => format!("queue full ({cap} waiting), retry later"),
            SubmitError::Closed => "server is shutting down".into(),
        };
        return done(
            response_bytes(
                503,
                "Service Unavailable",
                "application/json",
                &retry_after_header(),
                error_json(&detail).to_json().as_bytes(),
                keep_alive,
            ),
            keep_alive,
        );
    }
    let now = Instant::now();
    DispatchResult::Pending(Box::new(InFlight {
        slot,
        tier,
        endpoint,
        req_start_us,
        started: now,
        deadline: now + ctx.cfg.request_timeout,
        sampled,
        keep_alive,
    }))
}

/// Finishes an in-flight classify: `None` means the request timed out
/// (504), `Some(Err)` an inference failure (500), `Some(Ok)` the answer.
/// Returns the response bytes and whether the connection stays open.
pub(crate) fn finish_inflight(
    inflight: InFlight,
    outcome: Option<Result<ClassifyOutcome, String>>,
    ctx: &Ctx,
) -> (Vec<u8>, bool) {
    let keep_alive = inflight.keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
    let bytes = match outcome {
        None => {
            metrics::counter_add(names::SERVE_CLASSIFY_TIMEOUT, 1);
            let body = error_json(&format!(
                "no result within {:?} — inference backlog",
                ctx.cfg.request_timeout
            ));
            json_bytes(504, "Gateway Timeout", &body, keep_alive)
        }
        Some(Err(msg)) => {
            metrics::counter_add(names::SERVE_CLASSIFY_FAILED, 1);
            json_bytes(500, "Internal Server Error", &error_json(&msg), keep_alive)
        }
        Some(Ok(outcome)) => {
            metrics::counter_add(names::SERVE_CLASSIFY_OK, 1);
            let respond_start_us = trace::now_us();
            let tier = inflight.tier;
            let mut fields = vec![
                ("tier".into(), Json::Str(tier.as_str().into())),
                ("class".into(), Json::Num(outcome.class as f64)),
                (
                    "scores".into(),
                    Json::Arr(
                        outcome
                            .scores
                            .iter()
                            .map(|&s| Json::Num(f64::from(s)))
                            .collect(),
                    ),
                ),
                ("batch_size".into(), Json::Num(outcome.batch_size as f64)),
                ("model".into(), ctx.slot.meta().summary_json()),
            ];
            // Finish the per-request trace. The `respond` stage and total
            // run to just before the socket write — the trace ID has to be
            // serialised into the very response it describes.
            let now_us = trace::now_us();
            let total_us = now_us.saturating_sub(inflight.req_start_us);
            metrics::latency_record_us(&names::serve_classify_tier_us(tier.as_str()), total_us);
            let slow = ctx.cfg.slow_ms > 0 && total_us > ctx.cfg.slow_ms * 1000;
            if inflight.sampled || slow {
                let mut rec =
                    RequestTrace::new(next_trace_id(), inflight.endpoint, inflight.req_start_us);
                rec.stages = outcome.stages.clone();
                rec.push_stage(
                    "respond",
                    respond_start_us,
                    now_us.saturating_sub(respond_start_us),
                );
                rec.total_us = total_us;
                if inflight.sampled {
                    metrics::counter_add(names::SERVE_TRACE_SAMPLED, 1);
                    rec.emit_spans();
                }
                if slow {
                    metrics::counter_add(names::SERVE_SLOW_REQUESTS, 1);
                    eprintln!("[serve] slow request: {}", rec.describe());
                }
                fields.push(("trace_id".into(), Json::Str(rec.id.to_string())));
                // Ring before write: a client that sees the ID can find it.
                ctx.trace_ring.push(rec);
            }
            json_bytes(200, "OK", &Json::Obj(fields), keep_alive)
        }
    };
    metrics::latency_record_us(
        &names::serve_request_us(inflight.endpoint),
        inflight.started.elapsed().as_micros() as u64,
    );
    (bytes, keep_alive)
}
