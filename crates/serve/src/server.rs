//! The HTTP inference server.
//!
//! Thread layout:
//!
//! ```text
//! accept thread ──► bounded ConnQueue ──► fixed pool of HTTP workers
//!                                              │ (parse, route)
//!                                              ▼
//!                                        bounded BatchQueue ──► inference
//!                                              ▲   workers (micro-batching,
//!                                              │   own model clone each)
//!                                        ResponseSlot per request
//! ```
//!
//! Backpressure is explicit at both queues: a full connection queue is
//! answered `503` before the socket joins the pool, and a full batch queue
//! is answered `503` by the HTTP worker. Shutdown (SIGTERM/SIGINT via
//! [`signals`], or `POST /admin/shutdown`) stops the accept loop, lets
//! in-flight requests finish, drains the batch queue, and joins every
//! thread.

use std::io::{self, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::base64;
use crate::batcher::{BatchQueue, Pending, ResponseSlot, SubmitError};
use crate::http::{read_request, write_response, write_response_with_headers, HttpError, Request};
use crate::lifecycle::{
    hot_swap_inference_loop, sweep_loop, DriftController, LifecycleConfig, ModelSlot,
};
use crate::tier::{Tier, TierModels};
use xbar_core::ArtifactMeta;
use xbar_nn::Sequential;
use xbar_obs::json::Json;
use xbar_obs::ring::{next_trace_id, RequestTrace, Sampler, TraceRing};
use xbar_obs::{metrics, names, trace};

/// POSIX signal handling without a libc crate: `std` already links libc on
/// unix, so declaring `signal(2)` ourselves is enough for a flag-setting
/// handler.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    /// Whether SIGTERM/SIGINT has been received since [`install`].
    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }

    /// Test hook: simulate a received signal.
    pub fn raise() {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() {
        extern "C" fn on_signal(_signum: i32) {
            // Async-signal-safe: a single atomic store.
            SIGNALLED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

/// Server tunables. `Default` suits tests and the demo; the `serve` binary
/// maps its flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Fixed HTTP worker pool size — also the keep-alive connection limit.
    pub http_workers: usize,
    /// Inference workers, each with its own model clone.
    pub infer_workers: usize,
    /// Micro-batch flush threshold.
    pub max_batch: usize,
    /// Micro-batch flush deadline (from first queued request).
    pub batch_deadline: Duration,
    /// Bounded batch-queue capacity (overflow ⇒ 503).
    pub queue_cap: usize,
    /// Per-request wait budget before the client gets a 504.
    pub request_timeout: Duration,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Trace 1-in-N classify requests (0 disables tracing). Sampled
    /// requests get a `trace_id` in the response and their queue → batch →
    /// solve → respond breakdown lands in the trace ring and span buffer.
    pub trace_sample: u64,
    /// Dump any classify request slower than this many milliseconds to
    /// stderr (with its stage breakdown) and keep it in the trace ring even
    /// when unsampled. 0 disables.
    pub slow_ms: u64,
    /// Capacity of the bounded ring of finished request traces.
    pub trace_ring_cap: usize,
    /// Fidelity tier classify requests run against when their body does
    /// not name one (`--fidelity` in the binary). Must be available in the
    /// served artifact.
    pub default_tier: Tier,
    /// Drift lifecycle: health sweeps, mitigation ladder, test hooks. The
    /// default disables it (no drift model, no sweep thread).
    pub lifecycle: LifecycleConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            http_workers: 64,
            infer_workers: 1,
            max_batch: 32,
            batch_deadline: Duration::from_millis(2),
            queue_cap: 256,
            request_timeout: Duration::from_secs(10),
            max_body: 32 << 20,
            trace_sample: 0,
            slow_ms: 0,
            trace_ring_cap: 1024,
            default_tier: Tier::Exact,
            lifecycle: LifecycleConfig::default(),
        }
    }
}

/// `Retry-After` seconds attached to backpressure `503`s (both queues):
/// micro-batches drain in milliseconds, so one second is a conservative
/// hint that still stops naive clients from hammering a saturated server.
const RETRY_AFTER_S: u64 = 1;

fn retry_after_header() -> [(&'static str, String); 1] {
    [("Retry-After", RETRY_AFTER_S.to_string())]
}

struct ConnState {
    conns: Vec<TcpStream>,
    closed: bool,
}

/// Bounded queue of accepted sockets feeding the HTTP worker pool.
struct ConnQueue {
    state: Mutex<ConnState>,
    cond: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Arc<Self> {
        Arc::new(ConnQueue {
            state: Mutex::new(ConnState {
                conns: Vec::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
        })
    }

    /// Hands the socket back on failure (queue full or closed) so the
    /// caller can turn it away with a 503.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        if state.closed || state.conns.len() >= self.cap {
            return Err(stream);
        }
        state.conns.push(stream);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next socket; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("conn queue poisoned");
        loop {
            if let Some(stream) = state.conns.pop() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.cond.wait(state).expect("conn queue poisoned");
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("conn queue poisoned");
        state.closed = true;
        self.cond.notify_all();
    }
}

/// Shared request-handling context for HTTP workers.
struct Ctx {
    /// Versioned, hot-swappable holder of the served networks and their
    /// metadata; `/admin/reload` and drift sweeps republish through it.
    slot: Arc<ModelSlot>,
    /// Drift lifecycle controller, present when the lifecycle is active.
    lifecycle: Option<Arc<DriftController>>,
    batch_queue: Arc<BatchQueue>,
    shutdown: Arc<AtomicBool>,
    cfg: ServeConfig,
    sampler: Sampler,
    trace_ring: Arc<TraceRing>,
}

/// A running server; drop-in handle for tests, the binary, and CI smoke.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    http_handles: Vec<JoinHandle<()>>,
    infer_handles: Vec<JoinHandle<()>>,
    sweep_handle: Option<JoinHandle<()>>,
    batch_queue: Arc<BatchQueue>,
    trace_ring: Arc<TraceRing>,
}

impl Server {
    /// Binds, spawns the thread pools, and returns immediately, serving
    /// only the exact tier (legacy single-model artifacts).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(model: Sequential, meta: ArtifactMeta, cfg: ServeConfig) -> io::Result<Server> {
        Server::start_tiered(TierModels::exact_only(model), meta, cfg)
    }

    /// Binds, spawns the thread pools, and returns immediately, serving
    /// every fidelity tier the artifact bundle carries.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `cfg.default_tier` is not among the loaded
    /// tiers; otherwise the bind error if the address is unavailable.
    pub fn start_tiered(
        models: TierModels,
        meta: ArtifactMeta,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        if !models.has(cfg.default_tier) {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                format!(
                    "default fidelity tier \"{}\" is not in the artifact \
                     (available: {}); rebuild the artifact with that tier \
                     or pick another --fidelity",
                    cfg.default_tier,
                    models
                        .available()
                        .iter()
                        .map(|t| t.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let batch_queue = BatchQueue::new(cfg.queue_cap);
        let conn_queue = ConnQueue::new(cfg.http_workers.max(1) * 2);

        let slot = Arc::new(ModelSlot::new(models, meta));
        let lifecycle = if cfg.lifecycle.active() {
            let controller = DriftController::new(cfg.lifecycle, Arc::clone(&slot))
                .map_err(|e| io::Error::new(ErrorKind::InvalidInput, e))?;
            Some(Arc::new(controller))
        } else {
            None
        };

        let infer_handles: Vec<JoinHandle<()>> = (0..cfg.infer_workers.max(1))
            .map(|i| {
                let worker_slot = Arc::clone(&slot);
                let queue = Arc::clone(&batch_queue);
                let max_batch = cfg.max_batch;
                let deadline = cfg.batch_deadline;
                thread::Builder::new()
                    .name(format!("xbar-infer-{i}"))
                    .spawn(move || {
                        hot_swap_inference_loop(&worker_slot, &queue, max_batch, deadline);
                    })
                    .expect("spawn inference worker")
            })
            .collect();

        let sweep_handle = match &lifecycle {
            Some(controller) if cfg.lifecycle.sweep_interval > Duration::ZERO => {
                let controller = Arc::clone(controller);
                let shutdown = Arc::clone(&shutdown);
                let interval = cfg.lifecycle.sweep_interval;
                Some(
                    thread::Builder::new()
                        .name("xbar-sweep".into())
                        .spawn(move || sweep_loop(&controller, &shutdown, interval))
                        .expect("spawn health-sweep thread"),
                )
            }
            _ => None,
        };

        let trace_ring = Arc::new(TraceRing::new(cfg.trace_ring_cap.max(1)));
        let ctx = Arc::new(Ctx {
            slot: Arc::clone(&slot),
            lifecycle,
            batch_queue: Arc::clone(&batch_queue),
            shutdown: Arc::clone(&shutdown),
            cfg: cfg.clone(),
            sampler: Sampler::new(cfg.trace_sample),
            trace_ring: Arc::clone(&trace_ring),
        });
        let http_handles: Vec<JoinHandle<()>> = (0..cfg.http_workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&conn_queue);
                let ctx = Arc::clone(&ctx);
                thread::Builder::new()
                    .name(format!("xbar-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            handle_connection(stream, &ctx);
                        }
                    })
                    .expect("spawn http worker")
            })
            .collect();

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let conn_queue = Arc::clone(&conn_queue);
            thread::Builder::new()
                .name("xbar-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &conn_queue, &shutdown);
                    conn_queue.close();
                })
                .expect("spawn accept thread")
        };

        metrics::gauge_set(names::SERVE_UP, 1.0);
        let meta = ctx.slot.meta();
        metrics::gauge_set(
            names::SERVE_DEGRADED,
            if meta.is_degraded() { 1.0 } else { 0.0 },
        );
        metrics::gauge_set(names::SERVE_DEGRADED_TILES, meta.degraded_tiles as f64);
        metrics::gauge_set(names::SERVE_STUCK_CELLS, meta.stuck_cells as f64);
        metrics::gauge_set(names::SERVE_REPAIRED_COLUMNS, meta.repaired_columns as f64);
        metrics::gauge_set(names::SERVE_MAX_FAULT_SCORE, meta.max_fault_score);
        metrics::gauge_set(names::SERVE_FIDELITY_TIER, cfg.default_tier.gauge_value());
        if let Some(s) = &meta.surrogate {
            metrics::gauge_set(names::SERVE_SURROGATE_VAL_MAX_ERR, s.val_max_err);
            metrics::gauge_set(names::SERVE_SURROGATE_VAL_RMS_ERR, s.val_rms_err);
        }
        Ok(Server {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            http_handles,
            infer_handles,
            sweep_handle,
            batch_queue,
            trace_ring,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bounded ring of finished request traces (sampled and slow
    /// requests land here; see [`ServeConfig::trace_sample`]).
    pub fn trace_ring(&self) -> Arc<TraceRing> {
        Arc::clone(&self.trace_ring)
    }

    /// A flag other threads (or the admin endpoint) can set to stop the
    /// server; [`Server::run_until_shutdown`] also watches process signals.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Blocks until a shutdown is requested (signal, admin endpoint, or
    /// [`Server::shutdown_handle`]), then drains gracefully.
    pub fn run_until_shutdown(self) {
        while !self.shutdown.load(Ordering::SeqCst) && !signals::signalled() {
            thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Graceful drain: stop accepting, finish in-flight requests, flush the
    /// batch queue, join every thread.
    pub fn join(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("accept thread panicked");
        }
        // The accept thread closed the connection queue; HTTP workers exit
        // after finishing their current connection.
        for handle in self.http_handles.drain(..) {
            handle.join().expect("http worker panicked");
        }
        // No producers remain: close the batch queue so inference workers
        // drain what is left and exit.
        self.batch_queue.close();
        for handle in self.infer_handles.drain(..) {
            handle.join().expect("inference worker panicked");
        }
        // The sweep thread polls the shutdown flag in short ticks.
        if let Some(handle) = self.sweep_handle.take() {
            handle.join().expect("health-sweep thread panicked");
        }
        // Final accounting: how much tracing data the bounded buffers shed.
        let ring_dropped = self.trace_ring.dropped();
        if ring_dropped > 0 {
            metrics::counter_add(names::SERVE_TRACE_SPANS_DROPPED, ring_dropped);
        }
        let (spans_dropped, events_dropped) = trace::dropped_counts();
        if spans_dropped + events_dropped > 0 {
            metrics::counter_add(
                names::OBS_TRACE_SPANS_DROPPED,
                spans_dropped + events_dropped,
            );
        }
        metrics::gauge_set(names::SERVE_UP, 0.0);
    }
}

fn accept_loop(listener: &TcpListener, conn_queue: &ConnQueue, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) && !signals::signalled() {
        match listener.accept() {
            Ok((stream, _)) => {
                metrics::counter_add(names::SERVE_CONNECTIONS, 1);
                if let Err(mut rejected) = conn_queue.push(stream) {
                    metrics::counter_add(names::SERVE_CONNECTIONS_REJECTED, 1);
                    respond_unavailable(&mut rejected, "connection queue full, retry later", false);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Waits for the next request on a keep-alive connection, polling the
/// shutdown flag between short peeks so idle connections release their
/// worker promptly at shutdown.
fn next_request(
    reader: &mut BufReader<TcpStream>,
    stream: &TcpStream,
    ctx: &Ctx,
) -> Result<Option<Request>, HttpError> {
    loop {
        if !reader.buffer().is_empty() {
            break;
        }
        if ctx.shutdown.load(Ordering::SeqCst) || signals::signalled() {
            return Ok(None);
        }
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) => return Err(e.into()),
        }
    }
    // A request has begun: allow the client a generous window to finish it.
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let request = read_request(reader, ctx.cfg.max_body);
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .ok();
    request
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let request = match next_request(&mut reader, &writer, ctx) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Bad(msg)) => {
                metrics::counter_add(names::SERVE_BAD_REQUESTS, 1);
                respond_error(&mut writer, 400, "Bad Request", &msg);
                return;
            }
            Err(HttpError::NeedsLength) => {
                respond_error(&mut writer, 411, "Length Required", "send Content-Length");
                return;
            }
            Err(HttpError::BodyTooLarge { limit }) => {
                respond_error(
                    &mut writer,
                    413,
                    "Payload Too Large",
                    &format!("body exceeds {limit} bytes"),
                );
                return;
            }
        };
        metrics::counter_add(names::SERVE_HTTP_REQUESTS, 1);
        let keep_alive = request.keep_alive() && !ctx.shutdown.load(Ordering::SeqCst);
        let ok = route(&mut writer, &request, keep_alive, ctx);
        if !ok || !keep_alive {
            return;
        }
    }
}

fn respond_json(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &Json,
    keep_alive: bool,
) -> bool {
    write_response(
        writer,
        status,
        reason,
        "application/json",
        body.to_json().as_bytes(),
        keep_alive,
    )
    .is_ok()
}

/// [`respond_json`] plus extra response headers (`Retry-After` on
/// backpressure 503s).
fn respond_json_with_headers(
    writer: &mut TcpStream,
    status: u16,
    reason: &str,
    headers: &[(&str, String)],
    body: &Json,
    keep_alive: bool,
) -> bool {
    write_response_with_headers(
        writer,
        status,
        reason,
        "application/json",
        headers,
        body.to_json().as_bytes(),
        keep_alive,
    )
    .is_ok()
}

fn respond_error(writer: &mut TcpStream, status: u16, reason: &str, detail: &str) {
    let body = Json::Obj(vec![("error".into(), Json::Str(detail.into()))]);
    respond_json(writer, status, reason, &body, false);
}

/// A `503` with a `Retry-After` hint, for both backpressure points (the
/// connection queue and the batch queue).
fn respond_unavailable(writer: &mut TcpStream, detail: &str, keep_alive: bool) -> bool {
    let body = Json::Obj(vec![("error".into(), Json::Str(detail.into()))]);
    respond_json_with_headers(
        writer,
        503,
        "Service Unavailable",
        &retry_after_header(),
        &body,
        keep_alive,
    )
}

/// Stable low-cardinality label for the per-endpoint latency series.
fn endpoint_label(request: &Request) -> &'static str {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/v1/model") => "model",
        ("POST", "/v1/classify") => "classify",
        ("POST", "/admin/shutdown") => "admin",
        ("POST", "/admin/reload") => "admin",
        ("POST", "/admin/advance-time") => "admin",
        _ => "other",
    }
}

/// Dispatches one request; returns `false` if the connection died. Every
/// request lands in the per-endpoint request-latency log histogram.
fn route(writer: &mut TcpStream, request: &Request, keep_alive: bool, ctx: &Ctx) -> bool {
    let start = Instant::now();
    let endpoint = endpoint_label(request);
    let ok = dispatch(writer, request, keep_alive, ctx, endpoint);
    metrics::latency_record_us(
        &names::serve_request_us(endpoint),
        start.elapsed().as_micros() as u64,
    );
    ok
}

fn dispatch(
    writer: &mut TcpStream,
    request: &Request,
    keep_alive: bool,
    ctx: &Ctx,
    endpoint: &'static str,
) -> bool {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            // Degraded ≠ dead: tiles past the repair threshold lower the
            // reported health but the server keeps classifying, so probes
            // still get HTTP 200 and orchestrators can alert without
            // restarting a model that is merely less accurate.
            let meta = ctx.slot.meta();
            let status = if meta.is_degraded() { "degraded" } else { "ok" };
            let mut fields = vec![
                ("status".into(), Json::Str(status.into())),
                ("model".into(), Json::Str(meta.label.clone())),
                (
                    "queue_depth".into(),
                    Json::Num(ctx.batch_queue.depth() as f64),
                ),
                (
                    "degraded_tiles".into(),
                    Json::Num(meta.degraded_tiles as f64),
                ),
                (
                    "repaired_columns".into(),
                    Json::Num(meta.repaired_columns as f64),
                ),
                ("stuck_cells".into(), Json::Num(meta.stuck_cells as f64)),
            ];
            fields.extend(lifecycle_fields(ctx));
            respond_json(writer, 200, "OK", &Json::Obj(fields), keep_alive)
        }
        ("GET", "/metrics") => write_response(
            writer,
            200,
            "OK",
            "text/plain; version=0.0.4",
            metrics::to_text().as_bytes(),
            keep_alive,
        )
        .is_ok(),
        ("GET", "/v1/model") => respond_json(writer, 200, "OK", &model_json(ctx), keep_alive),
        ("POST", "/v1/classify") => classify(writer, request, keep_alive, ctx, endpoint),
        ("POST", "/admin/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            let body = Json::Obj(vec![("status".into(), Json::Str("shutting down".into()))]);
            respond_json(writer, 200, "OK", &body, false)
        }
        ("POST", "/admin/reload") => admin_reload(writer, request, keep_alive, ctx),
        ("POST", "/admin/advance-time") => admin_advance_time(writer, request, keep_alive, ctx),
        _ => {
            let body = Json::Obj(vec![(
                "error".into(),
                Json::Str(format!("no route {} {}", request.method, request.path)),
            )]);
            respond_json(writer, 404, "Not Found", &body, keep_alive)
        }
    }
}

/// The `/v1/model` body: the artifact's mapping summary extended with the
/// serving-side fidelity-tier facts — the deployment's default tier, which
/// tiers the artifact carries, and the embedded surrogate's held-out
/// validation error when one is present.
fn model_json(ctx: &Ctx) -> Json {
    let meta = ctx.slot.meta();
    let Json::Obj(mut fields) = meta.summary_json() else {
        unreachable!("summary_json always returns an object");
    };
    fields.push((
        "fidelity_tier".into(),
        Json::Str(ctx.cfg.default_tier.as_str().into()),
    ));
    fields.push((
        "available_tiers".into(),
        Json::Arr(
            ctx.slot
                .available()
                .iter()
                .map(|t| Json::Str(t.as_str().into()))
                .collect(),
        ),
    ));
    if let Some(s) = &meta.surrogate {
        fields.push(("surrogate_val_max_err".into(), Json::Num(s.val_max_err)));
        fields.push(("surrogate_val_rms_err".into(), Json::Num(s.val_rms_err)));
    }
    fields.push(("model_version".into(), Json::Num(ctx.slot.version() as f64)));
    fields.extend(lifecycle_fields(ctx));
    Json::Obj(fields)
}

/// Drift-lifecycle fields shared by `/healthz` and `/v1/model`; empty when
/// the lifecycle is disabled, so static deployments keep their old bodies.
fn lifecycle_fields(ctx: &Ctx) -> Vec<(String, Json)> {
    let Some(controller) = &ctx.lifecycle else {
        return Vec::new();
    };
    let status = controller.status();
    vec![
        ("health_sweeps".into(), Json::Num(status.sweeps as f64)),
        (
            "last_sweep_unix_s".into(),
            status
                .last_sweep_unix_s
                .map_or(Json::Null, |t| Json::Num(t as f64)),
        ),
        ("probe_accuracy".into(), Json::Num(status.probe_accuracy)),
        ("probe_deviation".into(), Json::Num(status.probe_deviation)),
        (
            "probe_current_deviation".into(),
            Json::Num(status.probe_current_deviation),
        ),
        ("mitigation_rung".into(), Json::Num(f64::from(status.rung))),
        ("drift_elapsed_s".into(), Json::Num(status.drift_elapsed_s)),
        ("drift_mean_decay".into(), Json::Num(status.mean_decay)),
    ]
}

/// `POST /admin/reload` — hot artifact swap. Body `{"artifact": "<path>"}`
/// loads and swaps in that bundle (validated request-compatible); an empty
/// body re-programs the current artifact in place (a manual rung-3
/// recovery). In-flight requests finish on the old weights.
fn admin_reload(writer: &mut TcpStream, request: &Request, keep_alive: bool, ctx: &Ctx) -> bool {
    let artifact = if request.body.is_empty() {
        None
    } else {
        match parse_body(&request.body) {
            Ok(json) => match json.get("artifact") {
                None | Some(Json::Null) => None,
                Some(Json::Str(path)) => Some(path.clone()),
                Some(other) => {
                    let msg = format!(
                        "\"artifact\" must be a path string, got {}",
                        other.to_json()
                    );
                    let body = Json::Obj(vec![("error".into(), Json::Str(msg))]);
                    return respond_json(writer, 400, "Bad Request", &body, keep_alive);
                }
            },
            Err(msg) => {
                let body = Json::Obj(vec![("error".into(), Json::Str(msg))]);
                return respond_json(writer, 400, "Bad Request", &body, keep_alive);
            }
        }
    };
    let result = match &ctx.lifecycle {
        Some(controller) => controller.reload(artifact.as_deref()),
        None => reload_without_lifecycle(&ctx.slot, artifact.as_deref()),
    };
    match result {
        Ok((version, label)) => {
            let body = Json::Obj(vec![
                ("status".into(), Json::Str("reloaded".into())),
                ("model".into(), Json::Str(label)),
                ("model_version".into(), Json::Num(version as f64)),
            ]);
            respond_json(writer, 200, "OK", &body, keep_alive)
        }
        Err(msg) => {
            let body = Json::Obj(vec![("error".into(), Json::Str(msg))]);
            respond_json(writer, 409, "Conflict", &body, keep_alive)
        }
    }
}

/// The slot-only reload path for deployments without a drift lifecycle:
/// still validates compatibility and swaps without dropping requests.
fn reload_without_lifecycle(
    slot: &ModelSlot,
    artifact: Option<&str>,
) -> Result<(u64, String), String> {
    let (version, label) = match artifact {
        Some(path) => {
            let bundle = xbar_core::load_artifact_bundle_from_file(path)
                .map_err(|e| format!("cannot load artifact {path}: {e}"))?;
            let (models, meta) = TierModels::from_bundle(bundle);
            let label = meta.label.clone();
            (slot.publish_bundle(models, meta)?, label)
        }
        None => {
            // Nothing drifts without a lifecycle; republish as-is so the
            // endpoint still answers (and bumps the version) uniformly.
            let model = slot.exact_model();
            (slot.publish_exact(model), slot.meta().label)
        }
    };
    metrics::counter_add(names::SERVE_RELOADS, 1);
    Ok((version, label))
}

/// `POST /admin/advance-time` — test hook (404 unless enabled): advances
/// the simulated drift clock by `{"seconds": N}` and, with `"sweep": true`,
/// runs one synchronous health sweep so tests observe the mitigation
/// deterministically.
fn admin_advance_time(
    writer: &mut TcpStream,
    request: &Request,
    keep_alive: bool,
    ctx: &Ctx,
) -> bool {
    if !ctx.cfg.lifecycle.test_hooks {
        // Hidden, not forbidden: indistinguishable from an unknown route.
        let body = Json::Obj(vec![(
            "error".into(),
            Json::Str(format!("no route {} {}", request.method, request.path)),
        )]);
        return respond_json(writer, 404, "Not Found", &body, keep_alive);
    }
    let Some(controller) = &ctx.lifecycle else {
        let body = Json::Obj(vec![(
            "error".into(),
            Json::Str("drift lifecycle is not active".into()),
        )]);
        return respond_json(writer, 409, "Conflict", &body, keep_alive);
    };
    let parsed = parse_body(&request.body).and_then(|json| {
        let seconds = json
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or("body needs \"seconds\" (number)")?;
        if !seconds.is_finite() || seconds < 0.0 {
            return Err(format!(
                "\"seconds\" must be finite and >= 0, got {seconds}"
            ));
        }
        let sweep = json.get("sweep").and_then(Json::as_bool).unwrap_or(false);
        Ok((seconds, sweep))
    });
    let (seconds, sweep) = match parsed {
        Ok(parsed) => parsed,
        Err(msg) => {
            let body = Json::Obj(vec![("error".into(), Json::Str(msg))]);
            return respond_json(writer, 400, "Bad Request", &body, keep_alive);
        }
    };
    let (elapsed, mean_decay) = controller.advance_time(seconds);
    let mut fields = vec![
        ("status".into(), Json::Str("advanced".into())),
        ("drift_elapsed_s".into(), Json::Num(elapsed)),
        ("drift_mean_decay".into(), Json::Num(mean_decay)),
    ];
    if sweep {
        let report = controller.sweep();
        fields.push((
            "sweep".into(),
            Json::Obj(vec![
                ("rung".into(), Json::Num(f64::from(report.rung))),
                ("pre_accuracy".into(), Json::Num(report.pre_accuracy)),
                ("post_accuracy".into(), Json::Num(report.post_accuracy)),
                (
                    "refreshed_cells".into(),
                    Json::Num(report.refreshed_cells as f64),
                ),
                (
                    "remapped_columns".into(),
                    Json::Num(report.remapped_columns as f64),
                ),
            ]),
        ));
    }
    respond_json(writer, 200, "OK", &Json::Obj(fields), keep_alive)
}

/// Parses a classify body into JSON.
fn parse_body(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))
}

/// Resolves the request's fidelity tier: the optional `"tier"` body field,
/// falling back to the deployment default.
fn parse_tier(json: &Json, default: Tier) -> Result<Tier, String> {
    match json.get("tier") {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Str(name)) => Tier::parse(name),
        Some(other) => Err(format!(
            "\"tier\" must be a string (\"exact\", \"surrogate\", \
             \"ideal\"), got {}",
            other.to_json()
        )),
    }
}

/// Extracts the image from a classify body: `image` (JSON array of floats)
/// or `image_b64` (base64 little-endian f32 bytes).
fn parse_image(json: &Json, expected_len: usize) -> Result<Vec<f32>, String> {
    let image = if let Some(b64) = json.get("image_b64").and_then(Json::as_str) {
        base64::decode_f32(b64).map_err(|e| format!("image_b64: {e}"))?
    } else if let Some(values) = json.get("image").and_then(Json::as_arr) {
        values
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<Vec<f32>>>()
            .ok_or("\"image\" must be an array of numbers")?
    } else {
        return Err("body needs \"image\" (float array) or \"image_b64\" (LE f32 base64)".into());
    };
    if image.len() != expected_len {
        return Err(format!(
            "image has {} values, model expects {expected_len}",
            image.len()
        ));
    }
    if let Some(bad) = image.iter().find(|v| !v.is_finite()) {
        return Err(format!("image contains non-finite value {bad}"));
    }
    Ok(image)
}

fn classify(
    writer: &mut TcpStream,
    request: &Request,
    keep_alive: bool,
    ctx: &Ctx,
    endpoint: &'static str,
) -> bool {
    metrics::counter_add(names::SERVE_CLASSIFY_REQUESTS, 1);
    let req_start_us = trace::now_us();
    let sampled = ctx.sampler.sample();
    let meta = ctx.slot.meta();
    let parsed = parse_body(&request.body).and_then(|json| {
        let tier = parse_tier(&json, ctx.cfg.default_tier)?;
        let input = parse_image(&json, meta.input_len())?;
        Ok((tier, input))
    });
    let (tier, input) = match parsed {
        Ok(parsed) => parsed,
        Err(msg) => {
            metrics::counter_add(names::SERVE_CLASSIFY_BAD_INPUT, 1);
            let body = Json::Obj(vec![("error".into(), Json::Str(msg))]);
            return respond_json(writer, 400, "Bad Request", &body, keep_alive);
        }
    };
    let available_tiers = ctx.slot.available();
    if !available_tiers.contains(&tier) {
        // Never a silent fallback: the caller asked for a fidelity the
        // served artifact cannot honour.
        metrics::counter_add(names::SERVE_CLASSIFY_BAD_INPUT, 1);
        let body = Json::Obj(vec![(
            "error".into(),
            Json::Str(format!(
                "fidelity tier \"{tier}\" is not in the served artifact \
             (available: {}); rebuild the artifact with that tier or drop \
             the \"tier\" field",
                available_tiers
                    .iter()
                    .map(|t| t.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            )),
        )]);
        return respond_json(writer, 409, "Conflict", &body, keep_alive);
    }
    metrics::counter_add(&names::serve_classify_tier(tier.as_str()), 1);
    let slot = ResponseSlot::new();
    let pending = Pending::for_tier(tier, input, Arc::clone(&slot));
    if let Err(e) = ctx.batch_queue.submit(pending) {
        metrics::counter_add(names::SERVE_CLASSIFY_REJECTED, 1);
        let detail = match e {
            SubmitError::QueueFull { cap } => format!("queue full ({cap} waiting), retry later"),
            SubmitError::Closed => "server is shutting down".into(),
        };
        return respond_unavailable(writer, &detail, keep_alive);
    }
    match slot.wait(ctx.cfg.request_timeout) {
        None => {
            metrics::counter_add(names::SERVE_CLASSIFY_TIMEOUT, 1);
            let body = Json::Obj(vec![(
                "error".into(),
                Json::Str(format!(
                    "no result within {:?} — inference backlog",
                    ctx.cfg.request_timeout
                )),
            )]);
            respond_json(writer, 504, "Gateway Timeout", &body, keep_alive)
        }
        Some(Err(msg)) => {
            metrics::counter_add(names::SERVE_CLASSIFY_FAILED, 1);
            let body = Json::Obj(vec![("error".into(), Json::Str(msg))]);
            respond_json(writer, 500, "Internal Server Error", &body, keep_alive)
        }
        Some(Ok(outcome)) => {
            metrics::counter_add(names::SERVE_CLASSIFY_OK, 1);
            let respond_start_us = trace::now_us();
            let mut fields = vec![
                ("tier".into(), Json::Str(tier.as_str().into())),
                ("class".into(), Json::Num(outcome.class as f64)),
                (
                    "scores".into(),
                    Json::Arr(
                        outcome
                            .scores
                            .iter()
                            .map(|&s| Json::Num(f64::from(s)))
                            .collect(),
                    ),
                ),
                ("batch_size".into(), Json::Num(outcome.batch_size as f64)),
                ("model".into(), meta.summary_json()),
            ];
            // Finish the per-request trace. The `respond` stage and total
            // run to just before the socket write — the trace ID has to be
            // serialised into the very response it describes.
            let now_us = trace::now_us();
            let total_us = now_us.saturating_sub(req_start_us);
            metrics::latency_record_us(&names::serve_classify_tier_us(tier.as_str()), total_us);
            let slow = ctx.cfg.slow_ms > 0 && total_us > ctx.cfg.slow_ms * 1000;
            if sampled || slow {
                let mut rec = RequestTrace::new(next_trace_id(), endpoint, req_start_us);
                rec.stages = outcome.stages.clone();
                rec.push_stage(
                    "respond",
                    respond_start_us,
                    now_us.saturating_sub(respond_start_us),
                );
                rec.total_us = total_us;
                if sampled {
                    metrics::counter_add(names::SERVE_TRACE_SAMPLED, 1);
                    rec.emit_spans();
                }
                if slow {
                    metrics::counter_add(names::SERVE_SLOW_REQUESTS, 1);
                    eprintln!("[serve] slow request: {}", rec.describe());
                }
                fields.push(("trace_id".into(), Json::Str(rec.id.to_string())));
                // Ring before write: a client that sees the ID can find it.
                ctx.trace_ring.push(rec);
            }
            respond_json(writer, 200, "OK", &Json::Obj(fields), keep_alive)
        }
    }
}
