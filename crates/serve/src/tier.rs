//! Serving fidelity tiers.
//!
//! An `XBARMDL1` bundle can carry up to three weight sets for the same
//! network: the exact-solver-mapped `W'` (always present), the
//! surrogate-folded `W''`, and the pre-mapping software weights. Serving
//! picks between them per deployment (`--fidelity`, [`crate::ServeConfig`])
//! and per request (the `"tier"` classify field) — the tiers trade
//! mapping-time cost for fidelity to the non-ideal hardware, not
//! serving-time cost, so switching tiers is just switching weight sets.

use xbar_core::{ArtifactBundle, ArtifactMeta};
use xbar_nn::Sequential;

/// Which weight set a classify request runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The exact-solver-mapped `W'` model: every tile priced by a full
    /// circuit solve at mapping time. The fidelity reference.
    Exact,
    /// The surrogate-folded `W''` model: tiles priced by the embedded
    /// learned emulator instead of the circuit solver. Within the
    /// surrogate's recorded held-out validation error of exact.
    Surrogate,
    /// The pre-mapping software model — no non-ideality at all. The
    /// software-accuracy ceiling, useful as an A/B control.
    Ideal,
}

/// Every tier, in gauge-value order.
pub const ALL_TIERS: [Tier; 3] = [Tier::Exact, Tier::Surrogate, Tier::Ideal];

impl Tier {
    /// Stable low-cardinality label (`exact`, `surrogate`, `ideal`) used in
    /// request JSON, responses, and metric names.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Surrogate => "surrogate",
            Tier::Ideal => "ideal",
        }
    }

    /// Parses a request/CLI tier name.
    ///
    /// # Errors
    ///
    /// A descriptive message listing the valid tiers.
    pub fn parse(s: &str) -> Result<Tier, String> {
        match s {
            "exact" => Ok(Tier::Exact),
            "surrogate" => Ok(Tier::Surrogate),
            "ideal" => Ok(Tier::Ideal),
            other => Err(format!(
                "unknown fidelity tier {other:?}; valid tiers are \
                 \"exact\", \"surrogate\", \"ideal\""
            )),
        }
    }

    /// Encoding for the `serve/fidelity_tier` gauge.
    pub fn gauge_value(self) -> f64 {
        match self {
            Tier::Exact => 0.0,
            Tier::Surrogate => 1.0,
            Tier::Ideal => 2.0,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The weight sets a server instance can classify against, one
/// [`Sequential`] per available tier.
#[derive(Debug, Clone)]
pub struct TierModels {
    /// The `W'` model — every artifact has one.
    pub exact: Sequential,
    /// The surrogate-folded `W''` model, when the artifact embeds one.
    pub surrogate: Option<Sequential>,
    /// The pre-mapping software model, when the artifact embeds one.
    pub ideal: Option<Sequential>,
}

impl TierModels {
    /// A server that can only serve the exact tier (legacy artifacts).
    pub fn exact_only(model: Sequential) -> Self {
        TierModels {
            exact: model,
            surrogate: None,
            ideal: None,
        }
    }

    /// Splits a loaded artifact bundle into the servable weight sets and
    /// the metadata. The embedded surrogate *net* is mapping-time
    /// provenance, not a serving model, and is dropped here — its
    /// validation record stays in `meta.surrogate`.
    pub fn from_bundle(bundle: ArtifactBundle) -> (Self, ArtifactMeta) {
        (
            TierModels {
                exact: bundle.model,
                surrogate: bundle.surrogate_model,
                ideal: bundle.ideal_model,
            },
            bundle.meta,
        )
    }

    /// Whether `tier` can be served.
    pub fn has(&self, tier: Tier) -> bool {
        match tier {
            Tier::Exact => true,
            Tier::Surrogate => self.surrogate.is_some(),
            Tier::Ideal => self.ideal.is_some(),
        }
    }

    /// The servable tiers, in gauge-value order.
    pub fn available(&self) -> Vec<Tier> {
        ALL_TIERS.into_iter().filter(|&t| self.has(t)).collect()
    }

    /// Mutable access to a tier's model, `None` when the artifact does not
    /// carry that tier.
    pub fn model_mut(&mut self, tier: Tier) -> Option<&mut Sequential> {
        match tier {
            Tier::Exact => Some(&mut self.exact),
            Tier::Surrogate => self.surrogate.as_mut(),
            Tier::Ideal => self.ideal.as_mut(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::Linear;
    use xbar_nn::Layer;

    fn net(seed: u64) -> Sequential {
        Sequential::new(vec![Layer::Linear(Linear::new(4, 2, seed))])
    }

    #[test]
    fn parse_round_trips_and_rejects_unknown() {
        for tier in ALL_TIERS {
            assert_eq!(Tier::parse(tier.as_str()), Ok(tier));
        }
        let err = Tier::parse("EXACT").unwrap_err();
        assert!(err.contains("valid tiers"), "{err}");
        assert!(err.contains("\"EXACT\""), "{err}");
    }

    #[test]
    fn availability_tracks_embedded_models() {
        let mut models = TierModels::exact_only(net(1));
        assert_eq!(models.available(), vec![Tier::Exact]);
        assert!(!models.has(Tier::Surrogate));
        assert!(models.model_mut(Tier::Ideal).is_none());

        models.surrogate = Some(net(2));
        models.ideal = Some(net(3));
        assert_eq!(models.available(), ALL_TIERS.to_vec());
        assert!(models.model_mut(Tier::Surrogate).is_some());
    }
}
