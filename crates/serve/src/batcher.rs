//! Micro-batching request queue.
//!
//! Classify requests land in a bounded [`BatchQueue`]; an inference worker
//! pulls a batch — flushing as soon as either `max_batch` requests are
//! waiting or `batch_deadline` has passed since it started collecting — and
//! runs ONE [`Sequential::forward`] over the stacked `[n, C, H, W]` input.
//! Each request's [`ResponseSlot`] is then filled with its row of the
//! softmaxed logits.
//!
//! Batching is exact, not approximate: every layer in the workspace
//! processes batch rows independently (BatchNorm runs in `Eval` mode on its
//! running statistics, and the row-parallel matmul keeps per-row summation
//! order), so the logits for a request are bit-identical whether it rode in
//! a batch of 1 or 64. `micro_batching_matches_single_request_forward`
//! below pins this down.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::tier::{Tier, TierModels, ALL_TIERS};
use xbar_nn::{Mode, Sequential};
use xbar_obs::ring::StageTiming;
use xbar_obs::{metrics, names, trace};
use xbar_tensor::Tensor;

/// Bucket bounds for the `serve/batch_size` histogram.
const BATCH_SIZE_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Result of classifying one image.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyOutcome {
    /// Argmax class index.
    pub class: usize,
    /// Softmax probabilities, one per class.
    pub scores: Vec<f32>,
    /// How many requests shared the forward pass that produced this.
    pub batch_size: usize,
    /// Per-stage timings (`queue`, `batch`, `solve`) gathered on the
    /// inference side; the HTTP worker appends its own `respond` stage and
    /// feeds the lot into request tracing when the request is sampled.
    pub stages: Vec<StageTiming>,
}

type SlotState = Option<Result<ClassifyOutcome, String>>;

/// One-shot rendezvous between request submission and the inference
/// worker that computes the answer. Callers either block on [`wait`]
/// (thread-per-request style, used by tests) or register a [`notifier`]
/// and poll [`take`] (the event loop's completion path).
///
/// [`wait`]: ResponseSlot::wait
/// [`take`]: ResponseSlot::take
/// [`notifier`]: ResponseSlot::set_notifier
#[derive(Default)]
pub struct ResponseSlot {
    state: Mutex<SlotState>,
    cond: Condvar,
    notify: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl ResponseSlot {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a one-shot callback invoked (once) right after the slot
    /// is filled. The event loop uses this to get woken through its wake
    /// pipe instead of blocking a thread per request. Register *before*
    /// submitting the request, or the fill can race past the registration
    /// and the callback will never run.
    pub fn set_notifier(&self, f: impl FnOnce() + Send + 'static) {
        *self.notify.lock().expect("slot notifier poisoned") = Some(Box::new(f));
    }

    /// Fills the slot and wakes the waiter. Second fills are ignored.
    pub fn fill(&self, value: Result<ClassifyOutcome, String>) {
        let filled = {
            let mut state = self.state.lock().expect("slot lock poisoned");
            if state.is_none() {
                *state = Some(value);
                self.cond.notify_all();
                true
            } else {
                false
            }
        };
        if filled {
            // Run the notifier outside the state lock: it typically locks
            // the event loop's completion list.
            let notify = self.notify.lock().expect("slot notifier poisoned").take();
            if let Some(f) = notify {
                f();
            }
        }
    }

    /// Non-blocking read: returns the outcome if the slot has been filled,
    /// consuming it. `None` means not ready yet.
    pub fn take(&self) -> Option<Result<ClassifyOutcome, String>> {
        self.state.lock().expect("slot lock poisoned").take()
    }

    /// Blocks until the slot is filled or `timeout` elapses; `None` means
    /// the request timed out (the caller answers 504).
    pub fn wait(&self, timeout: Duration) -> Option<Result<ClassifyOutcome, String>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("slot lock poisoned");
        while state.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .cond
                .wait_timeout(state, deadline - now)
                .expect("slot lock poisoned");
            state = next;
        }
        state.take()
    }
}

/// A queued classify request: flattened `C·H·W` input plus where to
/// deliver the answer.
pub struct Pending {
    pub input: Vec<f32>,
    pub slot: Arc<ResponseSlot>,
    /// Which weight set to classify against. Mixed-tier micro-batches are
    /// split into per-tier sub-batches by the inference worker.
    pub tier: Tier,
    /// When the request entered the batch queue (trace-epoch µs); the
    /// inference worker turns the gap to batch start into the `queue`
    /// stage timing.
    pub enqueued_us: u64,
}

impl Pending {
    /// Builds an exact-tier pending request stamped with the current
    /// trace-epoch time.
    pub fn new(input: Vec<f32>, slot: Arc<ResponseSlot>) -> Self {
        Pending::for_tier(Tier::Exact, input, slot)
    }

    /// Builds a pending request against a specific fidelity tier.
    pub fn for_tier(tier: Tier, input: Vec<f32>, slot: Arc<ResponseSlot>) -> Self {
        Pending {
            input,
            slot,
            tier,
            enqueued_us: trace::now_us(),
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — backpressure, answer 503.
    QueueFull { cap: usize },
    /// The server is shutting down — answer 503.
    Closed,
}

struct QueueState {
    items: VecDeque<Pending>,
    closed: bool,
}

/// Bounded MPMC queue of pending classify requests.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    cap: usize,
}

impl BatchQueue {
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(BatchQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            cap: cap.max(1),
        })
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Closed`]
    /// after [`BatchQueue::close`].
    pub fn submit(&self, pending: Pending) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("batch queue poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.items.len() >= self.cap {
            metrics::counter_add(names::SERVE_QUEUE_REJECTIONS, 1);
            return Err(SubmitError::QueueFull { cap: self.cap });
        }
        state.items.push_back(pending);
        metrics::gauge_set(names::SERVE_QUEUE_DEPTH, state.items.len() as f64);
        self.cond.notify_one();
        Ok(())
    }

    /// Number of requests currently waiting.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("batch queue poisoned").items.len()
    }

    /// Marks the queue closed and wakes all workers. Already-queued
    /// requests are still drained by `next_batch`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("batch queue poisoned");
        state.closed = true;
        self.cond.notify_all();
    }

    /// Collects the next micro-batch: blocks for the first request, then
    /// keeps collecting until `max_batch` requests are in hand or
    /// `deadline` has passed since the first arrived. Returns `None` once
    /// the queue is closed *and* drained — the worker's exit signal.
    pub fn next_batch(&self, max_batch: usize, deadline: Duration) -> Option<Vec<Pending>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("batch queue poisoned");
        while state.items.is_empty() {
            if state.closed {
                return None;
            }
            state = self.cond.wait(state).expect("batch queue poisoned");
        }
        let flush_at = Instant::now() + deadline;
        loop {
            if state.items.len() >= max_batch || state.closed {
                break;
            }
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            let (next, wait) = self
                .cond
                .wait_timeout(state, flush_at - now)
                .expect("batch queue poisoned");
            state = next;
            if wait.timed_out() {
                break;
            }
        }
        let n = state.items.len().min(max_batch);
        let batch = state.items.drain(..n).collect();
        metrics::gauge_set(names::SERVE_QUEUE_DEPTH, state.items.len() as f64);
        Some(batch)
    }
}

/// Numerically stable softmax over one logit row.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let total: f32 = exps.iter().sum();
    if total > 0.0 {
        exps.iter().map(|&e| e / total).collect()
    } else {
        vec![1.0 / logits.len().max(1) as f32; logits.len()]
    }
}

/// Runs one batch through the model and fills every slot.
///
/// Exposed (not just used by the worker loop) so tests can compare batched
/// against single-request execution on the same model instance.
pub fn classify_batch(model: &mut Sequential, input_shape: &[usize], batch: Vec<Pending>) {
    let n = batch.len();
    let batch_start_us = trace::now_us();
    let per_example: usize = input_shape.iter().product();
    let mut stacked = Vec::with_capacity(n * per_example);
    for pending in &batch {
        stacked.extend_from_slice(&pending.input);
    }
    let mut shape = Vec::with_capacity(1 + input_shape.len());
    shape.push(n);
    shape.extend_from_slice(input_shape);
    let solve_start_us = trace::now_us();
    let start = Instant::now();
    let result = Tensor::from_vec(stacked, &shape)
        .and_then(|x| model.forward(&x, Mode::Eval))
        .map_err(|e| format!("forward failed: {e}"));
    let solve_us = start.elapsed().as_micros() as u64;
    metrics::latency_record_us(names::SERVE_INFER_US, solve_us);
    metrics::histogram_record(names::SERVE_BATCH_SIZE, n as f64, BATCH_SIZE_BOUNDS);
    metrics::counter_add(names::SERVE_BATCHES, 1);
    // queue: enqueue → batch assembly; batch: stacking; solve: the shared
    // forward pass. Start offsets are absolute (trace epoch) so the stages
    // line up with HTTP-side spans in exports.
    let stages_for = |enqueued_us: u64| {
        vec![
            StageTiming {
                stage: "queue",
                start_us: enqueued_us,
                duration_us: batch_start_us.saturating_sub(enqueued_us),
            },
            StageTiming {
                stage: "batch",
                start_us: batch_start_us,
                duration_us: solve_start_us.saturating_sub(batch_start_us),
            },
            StageTiming {
                stage: "solve",
                start_us: solve_start_us,
                duration_us: solve_us,
            },
        ]
    };
    match result {
        Ok(logits) => {
            let classes = logits.shape().last().copied().unwrap_or(0).max(1);
            let rows = logits.as_slice().chunks_exact(classes);
            for (pending, row) in batch.iter().zip(rows) {
                let scores = softmax(row);
                let class = scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                pending.slot.fill(Ok(ClassifyOutcome {
                    class,
                    scores,
                    batch_size: n,
                    stages: stages_for(pending.enqueued_us),
                }));
            }
        }
        Err(msg) => {
            for pending in &batch {
                pending.slot.fill(Err(msg.clone()));
            }
        }
    }
}

/// Inference worker loop: pulls micro-batches until the queue closes.
/// Each worker owns its own [`TierModels`] clone, so multiple loops can
/// run concurrently without locking the networks. A pulled batch may mix
/// fidelity tiers; it is split into per-tier sub-batches, each sharing one
/// forward pass through that tier's weight set.
pub fn inference_loop(
    mut models: TierModels,
    input_shape: &[usize],
    queue: &BatchQueue,
    max_batch: usize,
    deadline: Duration,
) {
    while let Some(batch) = queue.next_batch(max_batch, deadline) {
        run_tier_batches(&mut models, input_shape, batch);
    }
}

/// Splits one pulled batch into per-tier sub-batches and runs each through
/// the matching model. Shared between [`inference_loop`] and the hot-swap
/// worker loop in [`crate::lifecycle`].
pub fn run_tier_batches(models: &mut TierModels, input_shape: &[usize], batch: Vec<Pending>) {
    let mut groups: [Vec<Pending>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for pending in batch {
        let slot = ALL_TIERS
            .iter()
            .position(|&t| t == pending.tier)
            .expect("every tier is in ALL_TIERS");
        groups[slot].push(pending);
    }
    for (tier, group) in ALL_TIERS.into_iter().zip(groups) {
        if group.is_empty() {
            continue;
        }
        match models.model_mut(tier) {
            Some(model) => classify_batch(model, input_shape, group),
            // The HTTP side rejects unavailable tiers with 409 before
            // enqueueing; reaching here means a logic error, so answer
            // the requests instead of hanging them into a 504.
            None => {
                for pending in &group {
                    pending
                        .slot
                        .fill(Err(format!("fidelity tier {tier:?} has no model loaded")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::Layer;

    fn tiny_model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 4, 3, 1, 1, 7)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4 * 4 * 4, 3, 9)),
        ])
    }

    fn image(seed: usize) -> Vec<f32> {
        (0..64)
            .map(|i| ((i * 31 + seed * 7) % 13) as f32 / 13.0 - 0.5)
            .collect()
    }

    #[test]
    fn micro_batching_matches_single_request_forward() {
        let shape = [1usize, 8, 8];
        // Batched: five requests through one forward pass.
        let mut model = tiny_model();
        let slots: Vec<Arc<ResponseSlot>> = (0..5).map(|_| ResponseSlot::new()).collect();
        let batch: Vec<Pending> = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| Pending::new(image(i), Arc::clone(slot)))
            .collect();
        classify_batch(&mut model, &shape, batch);
        // Singles: each request through its own forward pass.
        for (i, slot) in slots.iter().enumerate() {
            let batched = slot
                .wait(Duration::from_secs(1))
                .expect("slot filled")
                .expect("classify ok");
            assert_eq!(batched.batch_size, 5);
            let single_slot = ResponseSlot::new();
            classify_batch(
                &mut tiny_model(),
                &shape,
                vec![Pending::new(image(i), Arc::clone(&single_slot))],
            );
            let single = single_slot
                .wait(Duration::from_secs(1))
                .expect("slot filled")
                .expect("classify ok");
            assert_eq!(
                batched.scores, single.scores,
                "request {i}: micro-batched scores must be bit-identical"
            );
            assert_eq!(batched.class, single.class);
        }
    }

    #[test]
    fn queue_flushes_on_batch_size() {
        let queue = BatchQueue::new(16);
        for i in 0..4 {
            queue
                .submit(Pending::new(image(i), ResponseSlot::new()))
                .unwrap();
        }
        // Deadline far away: the size trigger must flush immediately.
        let batch = queue.next_batch(4, Duration::from_secs(60)).unwrap();
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn queue_flushes_on_deadline_with_partial_batch() {
        let queue = BatchQueue::new(16);
        queue
            .submit(Pending::new(image(0), ResponseSlot::new()))
            .unwrap();
        let start = Instant::now();
        let batch = queue.next_batch(64, Duration::from_millis(30)).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline flush must not hang"
        );
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let queue = BatchQueue::new(2);
        for i in 0..2 {
            queue
                .submit(Pending::new(image(i), ResponseSlot::new()))
                .unwrap();
        }
        let err = queue
            .submit(Pending::new(image(2), ResponseSlot::new()))
            .unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { cap: 2 });
    }

    #[test]
    fn closed_queue_drains_then_stops() {
        let queue = BatchQueue::new(4);
        queue
            .submit(Pending::new(image(0), ResponseSlot::new()))
            .unwrap();
        queue.close();
        assert!(matches!(
            queue.submit(Pending::new(image(1), ResponseSlot::new())),
            Err(SubmitError::Closed)
        ));
        let drained = queue.next_batch(8, Duration::from_millis(1)).unwrap();
        assert_eq!(drained.len(), 1);
        assert!(queue.next_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn slot_times_out_when_never_filled() {
        let slot = ResponseSlot::new();
        assert!(slot.wait(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn slot_notifier_fires_once_on_fill_and_take_consumes() {
        let slot = ResponseSlot::new();
        let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        assert!(slot.take().is_none(), "empty slot yields nothing");
        {
            let fired = Arc::clone(&fired);
            slot.set_notifier(move || {
                fired.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
        slot.fill(Err("first".into()));
        slot.fill(Err("second fill is ignored".into()));
        assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 1);
        let outcome = slot.take().expect("filled");
        assert_eq!(outcome.unwrap_err(), "first");
        assert!(slot.take().is_none(), "take consumes the outcome");
    }

    #[test]
    fn mixed_tier_batch_splits_into_per_tier_sub_batches() {
        // Exact and ideal carry different weights (different seeds), so a
        // request routed to the wrong tier would produce the wrong scores.
        let models = TierModels {
            exact: tiny_model(),
            surrogate: None,
            ideal: Some(Sequential::new(vec![
                Layer::Conv2d(Conv2d::new(1, 4, 3, 1, 1, 21)),
                Layer::ReLU(ReLU::new()),
                Layer::MaxPool2d(MaxPool2d::new(2, 2)),
                Layer::Flatten(Flatten::new()),
                Layer::Linear(Linear::new(4 * 4 * 4, 3, 23)),
            ])),
        };
        let mut reference = models.clone();
        let queue = BatchQueue::new(16);
        let worker = {
            let queue = Arc::clone(&queue);
            let models = models.clone();
            thread::spawn(move || {
                inference_loop(models, &[1, 8, 8], &queue, 16, Duration::from_millis(20));
            })
        };
        // 2 exact + 2 ideal requests land in one pulled batch.
        let tiers = [Tier::Exact, Tier::Ideal, Tier::Exact, Tier::Ideal];
        let slots: Vec<Arc<ResponseSlot>> = (0..4).map(|_| ResponseSlot::new()).collect();
        for (i, (tier, slot)) in tiers.iter().zip(&slots).enumerate() {
            queue
                .submit(Pending::for_tier(*tier, image(i), Arc::clone(slot)))
                .unwrap();
        }
        for (i, (tier, slot)) in tiers.iter().zip(&slots).enumerate() {
            let outcome = slot
                .wait(Duration::from_secs(5))
                .expect("filled")
                .expect("ok");
            // Ground truth: the same input through that tier's model alone.
            let single = ResponseSlot::new();
            classify_batch(
                reference.model_mut(*tier).unwrap(),
                &[1, 8, 8],
                vec![Pending::for_tier(*tier, image(i), Arc::clone(&single))],
            );
            let expected = single
                .wait(Duration::from_secs(5))
                .expect("filled")
                .expect("ok");
            assert_eq!(
                outcome.scores, expected.scores,
                "request {i} must run on the {tier} weights"
            );
            assert!(
                outcome.batch_size <= 2,
                "sub-batch holds at most the requests of its own tier, \
                 got {}",
                outcome.batch_size
            );
        }
        queue.close();
        worker.join().unwrap();
    }

    #[test]
    fn unavailable_tier_fails_the_request_instead_of_hanging() {
        let models = TierModels::exact_only(tiny_model());
        let queue = BatchQueue::new(4);
        let slot = ResponseSlot::new();
        queue
            .submit(Pending::for_tier(
                Tier::Surrogate,
                image(0),
                Arc::clone(&slot),
            ))
            .unwrap();
        queue.close();
        inference_loop(models, &[1, 8, 8], &queue, 4, Duration::from_millis(1));
        let err = slot
            .wait(Duration::from_secs(1))
            .expect("filled")
            .expect_err("no surrogate model loaded");
        assert!(err.contains("no model loaded"), "{err}");
    }

    #[test]
    fn worker_thread_serves_submissions_until_close() {
        let queue = BatchQueue::new(8);
        let meta_shape = [1usize, 8, 8];
        let worker = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut model = tiny_model();
                while let Some(batch) = queue.next_batch(4, Duration::from_millis(5)) {
                    classify_batch(&mut model, &meta_shape, batch);
                }
            })
        };
        let slot = ResponseSlot::new();
        queue
            .submit(Pending::new(image(3), Arc::clone(&slot)))
            .unwrap();
        let outcome = slot
            .wait(Duration::from_secs(5))
            .expect("filled")
            .expect("ok");
        assert_eq!(outcome.scores.len(), 3);
        let total: f32 = outcome.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "softmax sums to 1, got {total}");
        queue.close();
        worker.join().unwrap();
    }
}
