//! Minimal blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Exists so the `loadgen` bench binary, the e2e tests, and the CI smoke
//! job all exercise the server the same way without an external HTTP
//! library. [`RetryingClient`] layers capped exponential-backoff retries
//! (connection resets, refused connects, `503` backpressure, and `429`
//! admission sheds) on top of the bare [`Client`], so callers survive
//! server restarts and transient overload without hand-rolled reconnect
//! loops.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A response: status code plus raw body bytes.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    /// Parsed `Retry-After` header (delay-seconds form), if present — the
    /// server attaches it to backpressure `503`s and admission-shed
    /// `429`s.
    pub retry_after: Option<u64>,
}

impl Response {
    /// Body as UTF-8 (lossy) — convenient for JSON endpoints.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a timeout on connect and on each read.
    ///
    /// # Errors
    ///
    /// Propagates resolution/connect/socket-option failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads the response (keep-alive: the
    /// connection stays usable afterwards).
    ///
    /// # Errors
    ///
    /// Socket failures, or `InvalidData` for an unparsable response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: xbar-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET` without a body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, b"")
    }

    /// `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_json(&mut self, path: &str, json: &str) -> io::Result<Response> {
        self.request("POST", path, json.as_bytes())
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut retry_after = None;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad content-length {value:?}"),
                        )
                    })?;
                } else if name.trim().eq_ignore_ascii_case("retry-after") {
                    // Only the delay-seconds form; an HTTP-date (which this
                    // server never sends) parses as absent.
                    retry_after = value.trim().parse().ok();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status,
            body,
            retry_after,
        })
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) sleeps `base_delay · 2ⁿ` (capped at `max_delay`)
/// scaled by a jitter factor in `[1 − jitter, 1 + jitter]` drawn from a
/// seeded xorshift stream — runs are reproducible, yet concurrent clients
/// with different seeds desynchronise instead of retrying in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retries).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Ceiling on any single sleep.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a factor in
    /// `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based), advancing the
    /// caller-held jitter state.
    pub fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return exp;
        }
        // xorshift64* — deterministic, no external RNG needed.
        let mut x = (*jitter_state).max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *jitter_state = x;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 + jitter * (2.0 * unit - 1.0);
        exp.mul_f64(factor)
    }
}

/// Whether an I/O failure is worth a reconnect-and-retry: the connection
/// died underneath us or the server was not there yet — as opposed to a
/// protocol error or local misconfiguration, which retries cannot fix.
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
    )
}

/// A [`Client`] that reconnects and retries on connection failures,
/// `503 Service Unavailable` (the server's explicit backpressure answer),
/// and `429 Too Many Requests` (its admission-control shed), with capped
/// exponential backoff between attempts — honouring any `Retry-After`
/// hint over the local schedule.
///
/// Connects lazily: construction never touches the network, so a client
/// can be created before its server is up.
pub struct RetryingClient {
    addr: String,
    timeout: Duration,
    policy: RetryPolicy,
    jitter_state: u64,
    conn: Option<Client>,
    /// Sleeps actually taken, for tests and loadgen reporting.
    retries: u64,
}

impl RetryingClient {
    /// Creates a client for `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn new(addr: impl Into<String>, timeout: Duration, policy: RetryPolicy) -> RetryingClient {
        let jitter_state = policy.seed ^ 0x9E37_79B9_7F4A_7C15;
        RetryingClient {
            addr: addr.into(),
            timeout,
            policy,
            jitter_state,
            conn: None,
            retries: 0,
        }
    }

    /// Retries performed so far (sleep-then-reattempt cycles).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends a request, reconnecting and retrying per the policy. Returns
    /// the final response — which may still be a `503`/`429` if the server
    /// stayed saturated through every attempt — or the last connection
    /// error once attempts are exhausted.
    ///
    /// Requests are assumed idempotent from the server's point of view
    /// (true of every endpoint here: classify is pure inference).
    ///
    /// # Errors
    ///
    /// The last I/O error when all attempts fail to produce a response;
    /// non-retryable errors (bad address, unparsable response) immediately.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err: Option<io::Error> = None;
        let mut last_overload: Option<Response> = None;
        let mut server_hint: Option<Duration> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                // A Retry-After hint from the previous 503/429 overrides
                // the exponential backoff: the server knows its drain rate
                // better than our schedule does. Still capped by max_delay.
                let sleep = match server_hint.take() {
                    Some(hint) => hint.min(self.policy.max_delay),
                    None => self.policy.backoff(attempt - 1, &mut self.jitter_state),
                };
                std::thread::sleep(sleep);
                self.retries += 1;
            }
            let conn = match self.conn.as_mut() {
                Some(conn) => conn,
                None => match Client::connect(&*self.addr, self.timeout) {
                    Ok(conn) => self.conn.insert(conn),
                    Err(e) if retryable(&e) => {
                        last_err = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            match conn.request(method, path, body) {
                Ok(resp) if matches!(resp.status, 503 | 429) => {
                    // Explicit overload: 503 backpressure (queue full) or
                    // 429 admission shed. A shed keeps the connection
                    // alive — reuse it; a 503 often closes it, so start
                    // the next attempt on a fresh socket.
                    if resp.status == 503 {
                        self.conn = None;
                    }
                    server_hint = resp.retry_after.map(Duration::from_secs);
                    last_overload = Some(resp);
                }
                Ok(resp) => return Ok(resp),
                Err(e) if retryable(&e) => {
                    self.conn = None;
                    last_err = Some(e);
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        if let Some(resp) = last_overload {
            return Ok(resp);
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::other("retry budget exhausted without a response")))
    }

    /// `GET` with retries (see [`RetryingClient::request`]).
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::request`].
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, b"")
    }

    /// `POST` JSON with retries (see [`RetryingClient::request`]).
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::request`].
    pub fn post_json(&mut self, path: &str, json: &str) -> io::Result<Response> {
        self.request("POST", path, json.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn fast_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter: 0.5,
            seed: 42,
        }
    }

    /// Reads one request's header block (ignoring any body — the tests only
    /// send bodyless GETs) so the response does not race the request.
    fn read_headers(stream: &mut TcpStream) {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            if line == "\r\n" || line == "\n" {
                break;
            }
            line.clear();
        }
    }

    /// A listener that sabotages the first `failures` connections — odd
    /// ones dropped before responding (reset/EOF at the client), even ones
    /// answered `503` — then serves `200 ok` forever.
    fn flaky_server(failures: usize) -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let served = Arc::new(AtomicUsize::new(0));
        let served_clone = Arc::clone(&served);
        std::thread::spawn(move || {
            let mut seen = 0usize;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                seen += 1;
                if seen <= failures {
                    if seen % 2 == 1 {
                        drop(stream); // connection reset / EOF
                    } else {
                        read_headers(&mut stream);
                        stream
                            .write_all(
                                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                            )
                            .ok();
                    }
                    continue;
                }
                read_headers(&mut stream);
                // Count before responding: the client observes the response
                // and asserts on `served` immediately, so incrementing after
                // the write races the assertion.
                served_clone.fetch_add(1, Ordering::SeqCst);
                stream
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                    .ok();
                return; // one success is all the tests need
            }
        });
        (addr, served)
    }

    #[test]
    fn retries_through_resets_and_503s_to_success() {
        let (addr, served) = flaky_server(3); // drop, 503, drop, then 200
        let mut client = RetryingClient::new(addr, Duration::from_secs(2), fast_policy(6));
        let resp = client
            .get("/healthz")
            .expect("should succeed after retries");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "ok");
        assert_eq!(served.load(Ordering::SeqCst), 1);
        assert!(
            client.retries() >= 3,
            "three sabotaged connections need three retries, saw {}",
            client.retries()
        );
    }

    #[test]
    fn gives_up_after_capped_attempts() {
        // Nothing listens here: bind a port, then drop the listener.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let mut client = RetryingClient::new(addr, Duration::from_millis(200), fast_policy(3));
        let err = client.get("/healthz").expect_err("no server to talk to");
        assert!(retryable(&err), "should surface the connect failure: {err}");
        assert_eq!(client.retries(), 2, "3 attempts = 2 retries");
    }

    #[test]
    fn persistent_503_is_returned_not_swallowed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                read_headers(&mut stream);
                stream
                    .write_all(
                        b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                    )
                    .ok();
            }
        });
        let mut client = RetryingClient::new(addr, Duration::from_secs(2), fast_policy(3));
        let resp = client.get("/healthz").expect("a 503 is a response");
        assert_eq!(resp.status, 503, "caller sees the backpressure answer");
    }

    #[test]
    fn retry_after_header_is_parsed_into_the_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            if let Some(Ok(mut stream)) = listener.incoming().next() {
                read_headers(&mut stream);
                stream
                    .write_all(
                        b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nRetry-After: 7\r\nConnection: close\r\n\r\n",
                    )
                    .ok();
            }
        });
        let mut client = Client::connect(&*addr, Duration::from_secs(2)).unwrap();
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(7));
    }

    #[test]
    fn shed_429s_are_retried_on_the_same_connection() {
        // The server sheds twice with `429` + `Retry-After: 0` on a
        // keep-alive connection, then answers `200` — all on ONE socket.
        // The retrying client must honour the hint, keep the connection,
        // and surface the eventual success.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let conns = Arc::new(AtomicUsize::new(0));
        let conns_clone = Arc::clone(&conns);
        std::thread::spawn(move || {
            if let Some(Ok(mut stream)) = listener.incoming().next() {
                conns_clone.fetch_add(1, Ordering::SeqCst);
                for _ in 0..2 {
                    read_headers(&mut stream);
                    stream
                        .write_all(
                            b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 0\r\nRetry-After: 0\r\n\r\n",
                        )
                        .ok();
                }
                read_headers(&mut stream);
                stream
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                    .ok();
            }
        });
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_secs(3600),
            max_delay: Duration::from_secs(3600),
            jitter: 0.0,
            seed: 3,
        };
        let start = std::time::Instant::now();
        let mut client = RetryingClient::new(addr, Duration::from_secs(2), policy);
        let resp = client.get("/v1/classify").expect("should reach the 200");
        assert_eq!(resp.status, 200);
        assert_eq!(client.retries(), 2, "two sheds = two retries");
        assert_eq!(
            conns.load(Ordering::SeqCst),
            1,
            "a 429 keeps the connection: no reconnects expected"
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "the Retry-After hint must replace the hour-long backoff, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn retry_after_hint_overrides_the_backoff_schedule() {
        // Every connection is 503'd with `Retry-After: 0` until the third,
        // which succeeds. The policy's base delay is far beyond the test
        // timeout, so finishing quickly proves the hint took precedence.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut seen = 0usize;
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                seen += 1;
                read_headers(&mut stream);
                if seen < 3 {
                    stream
                        .write_all(
                            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nRetry-After: 0\r\nConnection: close\r\n\r\n",
                        )
                        .ok();
                } else {
                    stream
                        .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
                        .ok();
                    return;
                }
            }
        });
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_secs(3600),
            max_delay: Duration::from_secs(3600),
            jitter: 0.0,
            seed: 1,
        };
        let start = std::time::Instant::now();
        let mut client = RetryingClient::new(addr, Duration::from_secs(2), policy);
        let resp = client.get("/healthz").expect("should reach the 200");
        assert_eq!(resp.status, 200);
        assert_eq!(client.retries(), 2);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "hinted sleeps must replace the hour-long backoff, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn backoff_grows_is_capped_and_jitters_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter: 0.0,
            seed: 7,
        };
        let mut state = 1;
        assert_eq!(policy.backoff(0, &mut state), Duration::from_millis(10));
        assert_eq!(policy.backoff(1, &mut state), Duration::from_millis(20));
        assert_eq!(policy.backoff(2, &mut state), Duration::from_millis(40));
        assert_eq!(policy.backoff(5, &mut state), Duration::from_millis(100));
        assert_eq!(policy.backoff(31, &mut state), Duration::from_millis(100));
        // With jitter, same seed ⇒ same sleeps; sleeps stay within bounds.
        let jittered = RetryPolicy {
            jitter: 0.5,
            ..policy
        };
        let (mut s1, mut s2) = (99u64, 99u64);
        for attempt in 0..6 {
            let a = jittered.backoff(attempt, &mut s1);
            let b = jittered.backoff(attempt, &mut s2);
            assert_eq!(a, b, "same state must give the same jitter");
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(100));
            assert!(a >= exp.mul_f64(0.5) && a <= exp.mul_f64(1.5), "{a:?}");
        }
    }
}
