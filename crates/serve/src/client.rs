//! Minimal blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Exists so the `loadgen` bench binary, the e2e tests, and the CI smoke
//! job all exercise the server the same way without an external HTTP
//! library.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A response: status code plus raw body bytes.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (lossy) — convenient for JSON endpoints.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects with a timeout on connect and on each read.
    ///
    /// # Errors
    ///
    /// Propagates resolution/connect/socket-option failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads the response (keep-alive: the
    /// connection stays usable afterwards).
    ///
    /// # Errors
    ///
    /// Socket failures, or `InvalidData` for an unparsable response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: xbar-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET` without a body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, b"")
    }

    /// `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_json(&mut self, path: &str, json: &str) -> io::Result<Response> {
        self.request("POST", path, json.as_bytes())
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad content-length {value:?}"),
                        )
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, body })
    }
}
