//! `serve` — host a mapped-model artifact over HTTP.
//!
//! ```text
//! serve --artifact results/vgg11.xbarmdl [--addr 127.0.0.1:7878]
//!       [--fidelity exact|surrogate|ideal] [--threads N]
//!       [--replicas N] [--max-connections N] [--admission-limit N]
//!       [--batch-size N] [--batch-deadline-ms N] [--queue-cap N]
//!       [--timeout-ms N] [--trace-sample N] [--slow-ms N]
//!       [--trace-out PATH]
//!       [--sweep-interval-ms N] [--probe-count N]
//!       [--drift-tau-fast S] [--drift-tau-slow S] [--drift-test-hooks]
//! ```
//!
//! `--replicas` sets the inference replica count (each pulls its own
//! snapshot of the served model); `--max-connections` caps the epoll set;
//! `--admission-limit` caps admitted-but-unanswered classify requests
//! (0 auto-sizes to the pipeline capacity). The legacy `--infer-workers`
//! flag is an alias for `--replicas`, and `--http-workers` is accepted
//! and ignored (the event loop replaced the HTTP worker pool).
//!
//! `--fidelity` picks the default weight set classify requests run
//! against (requests can override it per call with a `"tier"` body
//! field); the artifact must carry that tier. Legacy artifacts carry only
//! `exact`.
//!
//! `--threads` (or the `XBAR_THREADS` environment variable) bounds the
//! compute worker pool used by the tensor kernels — the same knob the
//! offline pipeline uses; `--threads 0` resets to auto-detection. Exits
//! gracefully on SIGTERM/SIGINT or `POST /admin/shutdown`.
//!
//! Tracing: `--trace-sample N` traces one classify request in N (the
//! response carries a `trace_id` and the queue → batch → solve → respond
//! spans land in the trace buffer); `--slow-ms N` dumps any slower request
//! to stderr with its stage breakdown; `--trace-out PATH` writes the JSONL
//! observability sink (spans + metrics) at shutdown, ready for
//! `obs-report`.
//!
//! Drift lifecycle: `--sweep-interval-ms N` turns on periodic health
//! sweeps over a deterministic probe set, with the re-program → re-map →
//! hot-swap mitigation ladder behind them; `--drift-tau-fast`/`--drift-tau-slow`
//! set the retention time-constant range (seconds); `--drift-test-hooks`
//! enables `POST /admin/advance-time` for CI drift smoke tests.

use std::process::ExitCode;
use std::time::Duration;
use xbar_serve::{signals, ServeConfig, Server, Tier, TierModels};

struct Args {
    artifact: String,
    cfg: ServeConfig,
    threads: Option<usize>,
    trace_out: Option<String>,
}

fn usage() -> &'static str {
    "usage: serve --artifact <path.xbarmdl> [--addr HOST:PORT] [--threads N]\n\
     \x20             [--fidelity exact|surrogate|ideal]\n\
     \x20             [--replicas N] [--max-connections N] [--admission-limit N]\n\
     \x20             [--batch-size N]\n\
     \x20             [--batch-deadline-ms N] [--queue-cap N] [--timeout-ms N]\n\
     \x20             [--trace-sample N] [--slow-ms N] [--trace-out PATH]\n\
     \x20             [--sweep-interval-ms N] [--probe-count N]\n\
     \x20             [--drift-tau-fast S] [--drift-tau-slow S] [--drift-test-hooks]\n\
     \x20 --threads 0 resets the compute-thread budget to auto-detection\n\
     \x20 --fidelity picks the default serving tier (default exact)\n\
     \x20 --replicas N inference replicas (--infer-workers is an alias)\n\
     \x20 --max-connections caps concurrently open connections\n\
     \x20 --admission-limit caps in-flight classifies (0 = auto-size)\n\
     \x20 --trace-sample N traces 1-in-N classify requests (0 = off)\n\
     \x20 --slow-ms N dumps requests slower than N ms to stderr (0 = off)\n\
     \x20 --trace-out PATH writes the JSONL observability sink at shutdown\n\
     \x20 --sweep-interval-ms N runs a drift health sweep every N ms (0 = off)\n\
     \x20 --probe-count N sets the health-sweep probe set size\n\
     \x20 --drift-tau-fast/--drift-tau-slow set retention tau range (seconds)\n\
     \x20 --drift-test-hooks enables POST /admin/advance-time (tests only)"
}

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, name: &str) -> Result<&'a str, String> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| format!("{name} needs a value"))
}

fn next_usize(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<usize, String> {
    let raw = next_value(it, name)?;
    raw.parse::<usize>()
        .map_err(|_| format!("{name}: {raw:?} is not a non-negative integer"))
}

fn next_f64(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<f64, String> {
    let raw = next_value(it, name)?;
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
        _ => Err(format!("{name}: {raw:?} is not a positive number")),
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut artifact = None;
    let mut threads = None;
    let mut trace_out = None;
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServeConfig::default()
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--artifact" => artifact = Some(next_value(&mut it, "--artifact")?.to_string()),
            "--addr" => cfg.addr = next_value(&mut it, "--addr")?.to_string(),
            "--fidelity" => {
                cfg.default_tier = Tier::parse(next_value(&mut it, "--fidelity")?)?;
            }
            "--threads" => threads = Some(next_usize(&mut it, "--threads")?),
            "--replicas" | "--infer-workers" => {
                cfg.replicas = next_usize(&mut it, flag)?.max(1);
            }
            "--http-workers" => {
                // Obsolete (the event loop replaced the worker pool);
                // accepted so existing launch scripts keep working.
                let _ = next_usize(&mut it, "--http-workers")?;
            }
            "--max-connections" => {
                cfg.max_connections = next_usize(&mut it, "--max-connections")?.max(1);
            }
            "--admission-limit" => {
                cfg.admission_limit = next_usize(&mut it, "--admission-limit")?;
            }
            "--batch-size" => {
                cfg.max_batch = next_usize(&mut it, "--batch-size")?.max(1);
            }
            "--batch-deadline-ms" => {
                cfg.batch_deadline =
                    Duration::from_millis(next_usize(&mut it, "--batch-deadline-ms")? as u64);
            }
            "--queue-cap" => {
                cfg.queue_cap = next_usize(&mut it, "--queue-cap")?.max(1);
            }
            "--timeout-ms" => {
                cfg.request_timeout =
                    Duration::from_millis(next_usize(&mut it, "--timeout-ms")?.max(1) as u64);
            }
            "--trace-sample" => {
                cfg.trace_sample = next_usize(&mut it, "--trace-sample")? as u64;
            }
            "--slow-ms" => {
                cfg.slow_ms = next_usize(&mut it, "--slow-ms")? as u64;
            }
            "--trace-out" => {
                trace_out = Some(next_value(&mut it, "--trace-out")?.to_string());
            }
            "--sweep-interval-ms" => {
                cfg.lifecycle.sweep_interval =
                    Duration::from_millis(next_usize(&mut it, "--sweep-interval-ms")? as u64);
            }
            "--probe-count" => {
                cfg.lifecycle.probe_count = next_usize(&mut it, "--probe-count")?.max(1);
            }
            "--drift-tau-fast" => {
                cfg.lifecycle.tau_fast = next_f64(&mut it, "--drift-tau-fast")?;
            }
            "--drift-tau-slow" => {
                cfg.lifecycle.tau_slow = next_f64(&mut it, "--drift-tau-slow")?;
            }
            "--drift-test-hooks" => cfg.lifecycle.test_hooks = true,
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    let artifact = artifact.ok_or_else(|| format!("--artifact is required\n{}", usage()))?;
    Ok(Args {
        artifact,
        cfg,
        threads,
        trace_out,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = args.threads {
        xbar_tensor::threads::set_max_threads(n);
    }
    // mmap, not read: weights deserialise straight out of the page cache.
    let bundle = match xbar_core::load_artifact_bundle_mmap(&args.artifact) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("cannot load artifact {:?}: {e}", args.artifact);
            return ExitCode::FAILURE;
        }
    };
    let (models, meta) = TierModels::from_bundle(bundle);
    let tiers: Vec<&str> = models.available().iter().map(|t| t.as_str()).collect();
    eprintln!(
        "loaded {:?}: {} ({} classes, input {:?}, {} crossbars of {}x{}, method {}, mean NF {:.4}, tiers [{}], default {})",
        args.artifact,
        meta.label,
        meta.num_classes,
        meta.input_shape,
        meta.crossbar_count,
        meta.rows,
        meta.cols,
        meta.method,
        meta.mean_nf,
        tiers.join(", "),
        args.cfg.default_tier,
    );
    if let Some(s) = &meta.surrogate {
        eprintln!(
            "embedded surrogate: {}x{} tiles, held-out max err {:.4}, rms err {:.4} ({} pairs)",
            s.rows, s.cols, s.val_max_err, s.val_rms_err, s.train_pairs,
        );
    }
    if args.cfg.lifecycle.active() {
        eprintln!(
            "drift lifecycle: sweep interval {:?}, {} probes, tau [{:.0}, {:.0}] s{}",
            args.cfg.lifecycle.sweep_interval,
            args.cfg.lifecycle.probe_count,
            args.cfg.lifecycle.tau_fast,
            args.cfg.lifecycle.tau_slow,
            if args.cfg.lifecycle.test_hooks {
                ", test hooks on"
            } else {
                ""
            },
        );
    }
    signals::install();
    let trace_sample = args.cfg.trace_sample;
    let server = match Server::start_tiered(models, meta, args.cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // CI and scripts parse this line for the resolved port.
    println!("listening on http://{}", server.local_addr());
    server.run_until_shutdown();
    if let Some(path) = args.trace_out {
        let run = xbar_obs::sink::RunInfo::new("serve")
            .config("artifact", &args.artifact)
            .config("trace_sample", trace_sample);
        match xbar_obs::sink::write_jsonl(&path, &run) {
            Ok(()) => eprintln!("wrote trace sink to {path:?}"),
            Err(e) => eprintln!("cannot write trace sink {path:?}: {e}"),
        }
    }
    eprintln!("shutdown complete");
    ExitCode::SUCCESS
}
