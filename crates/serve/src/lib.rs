//! # xbar-serve
//!
//! Batched non-ideal inference serving over persisted mapped-model
//! artifacts (`XBARMDL1`, see `xbar_core::artifact`).
//!
//! The paper's Fig. 2 pipeline prices every mapped layer in circuit
//! solves; serving amortises that one-off cost across requests. This crate
//! loads a mapped `W'` network once and exposes it over HTTP/1.1 built
//! directly on `std::net` (the workspace builds hermetically — no external
//! dependencies):
//!
//! * `POST /v1/classify` — one image (JSON float array or base64 LE f32),
//!   answered with the argmax class, softmax scores, the fidelity tier it
//!   ran on, the micro-batch size the request rode in, and the mapping
//!   provenance; an optional `"tier"` field picks the weight set
//!   (`exact` / `surrogate` / `ideal`) per request — unknown tiers are
//!   answered `400`, tiers the artifact does not carry `409`, never a
//!   silent fallback;
//! * `GET /healthz` — liveness plus queue depth;
//! * `GET /metrics` — the process-wide `xbar_obs` metrics registry in
//!   Prometheus text format;
//! * `GET /v1/model` — the artifact's mapping summary, the available and
//!   default fidelity tiers, and the embedded surrogate's held-out
//!   validation error when one is present;
//! * `POST /admin/shutdown` — CI-friendly graceful stop (SIGTERM and
//!   SIGINT do the same);
//! * `POST /admin/reload` — hot artifact swap through the versioned model
//!   slot ([`lifecycle`]): in-flight requests finish on the old weights,
//!   nothing is dropped;
//! * `POST /admin/advance-time` — test-only drift fast-forward (enabled by
//!   [`lifecycle::LifecycleConfig::test_hooks`], otherwise `404`).
//!
//! All sockets live on a single readiness-driven event loop
//! (`event_loop`): raw `epoll` on Linux (a portable short-poll fallback
//! elsewhere), non-blocking accept/read/write, and a per-connection state
//! machine instead of a thread per connection, so thousands of keep-alive
//! connections cost file descriptors rather than stacks.
//! `/healthz`, `/metrics`, and `/v1/model` are answered directly on that
//! fast path and are never shed. Artifacts load zero-copy via `mmap`.
//!
//! Concurrent classify requests are micro-batched ([`batcher`]) and
//! executed by a pool of [`server::ServeConfig::replicas`] inference
//! threads: requests share one `Sequential::forward` whenever they arrive
//! within the flush window, and both batching and replication are
//! bit-exact with respect to single-replica single-request execution.
//!
//! Overload is layered and always an explicit answer, never a silent
//! drop: admission control sheds classifies *before* body parsing with a
//! cheap `429` + `Retry-After` once admitted-but-unanswered requests reach
//! [`server::ServeConfig::admission_limit`] (the connection stays open);
//! the bounded batch queue behind it answers `503` on overflow; requests
//! that out-wait their deadline are answered `504`.
//! [`client::RetryingClient`] honours the `Retry-After` hint for both
//! `429` and `503`.
//!
//! [`lifecycle`] adds the device-drift story: a deterministic retention
//! model of the served conductances, periodic health sweeps over a probe
//! set, and a re-program → re-map → hot-swap mitigation ladder.
//!
//! Start a server with [`server::Server::start`]; drive one with
//! [`client::Client`] or the `loadgen` binary in `crates/bench`.

pub mod base64;
pub mod batcher;
pub mod client;
pub(crate) mod event_loop;
pub mod http;
pub mod lifecycle;
pub mod server;
pub mod tier;

pub use batcher::{BatchQueue, ClassifyOutcome, Pending, ResponseSlot, SubmitError};
pub use client::{Client, RetryPolicy, RetryingClient};
pub use lifecycle::{DriftController, LifecycleConfig, LifecycleStatus, ModelSlot, SweepReport};
pub use server::{signals, ServeConfig, Server};
pub use tier::{Tier, TierModels, ALL_TIERS};
