//! Minimal HTTP/1.1 message framing over any `BufRead`/`Write` pair.
//!
//! Supports exactly what the inference endpoints need: request-line +
//! headers + `Content-Length` bodies, keep-alive, and fixed-length
//! responses. Chunked transfer encoding is rejected with `411 Length
//! Required` semantics (the caller maps [`HttpError::NeedsLength`]).

use std::io::{self, BufRead, Write};

/// Upper bound on a single header line (and the request line).
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string retained, fragment-free).
    pub path: String,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Error while reading a request.
#[derive(Debug)]
pub enum HttpError {
    /// Socket failure or timeout — close the connection silently.
    Io(io::Error),
    /// The bytes are not valid HTTP — answer 400 and close.
    Bad(String),
    /// A body was sent without `Content-Length` — answer 411 and close.
    NeedsLength,
    /// The declared body exceeds the server's limit — answer 413 and close.
    BodyTooLarge { limit: usize },
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Bad("connection closed mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(
                        String::from_utf8(line)
                            .map_err(|_| HttpError::Bad("non-UTF-8 header data".into()))?,
                    ));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::Bad(format!(
                        "header line exceeds {MAX_LINE} bytes"
                    )));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads one request. `Ok(None)` means the client closed the connection
/// cleanly before sending another request (normal keep-alive end).
///
/// # Errors
///
/// See [`HttpError`] for the caller's response obligations.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let request_line = match read_line(reader)? {
        None => return Ok(None),
        Some(line) if line.is_empty() => {
            // Tolerate a stray CRLF between pipelined requests.
            match read_line(reader)? {
                None => return Ok(None),
                Some(line) => line,
            }
        }
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Bad(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| HttpError::Bad("connection closed inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Bad(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::NeedsLength);
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Bad(format!("bad content-length {len:?}")))?;
        if len > max_body {
            return Err(HttpError::BodyTooLarge { limit: max_body });
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// Pulls one complete line (up to `\n`, CRLF-trimmed) out of `buf`
/// starting at `*pos`, advancing `*pos` past the terminator. `Ok(None)`
/// means the line is still incomplete — wait for more bytes.
fn try_take_line<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Option<&'a str>, HttpError> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(nl) => {
            if nl > MAX_LINE {
                return Err(HttpError::Bad(format!(
                    "header line exceeds {MAX_LINE} bytes"
                )));
            }
            let mut line = &rest[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            *pos += nl + 1;
            std::str::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Bad("non-UTF-8 header data".into()))
        }
        None if rest.len() > MAX_LINE => Err(HttpError::Bad(format!(
            "header line exceeds {MAX_LINE} bytes"
        ))),
        None => Ok(None),
    }
}

/// Non-blocking counterpart of [`read_request`]: parses one request out of
/// an in-memory byte buffer. Returns `Ok(Some((request, consumed)))` when a
/// complete request (head and body) is present, `Ok(None)` when the buffer
/// holds only a prefix of a request and more bytes must arrive first.
///
/// Semantics match [`read_request`]: one stray empty line before the
/// request line is tolerated, header names are lower-cased, chunked bodies
/// are refused with [`HttpError::NeedsLength`], and a declared
/// `Content-Length` beyond `max_body` fails with
/// [`HttpError::BodyTooLarge`] as soon as the head is complete — before
/// the body ever arrives.
///
/// # Errors
///
/// See [`HttpError`] for the caller's response obligations.
pub fn try_parse_request(
    buf: &[u8],
    max_body: usize,
) -> Result<Option<(Request, usize)>, HttpError> {
    let mut pos = 0usize;
    let request_line = match try_take_line(buf, &mut pos)? {
        None => return Ok(None),
        Some("") => {
            // Tolerate a stray CRLF between pipelined requests.
            match try_take_line(buf, &mut pos)? {
                None => return Ok(None),
                Some(line) => line,
            }
        }
        Some(line) => line,
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Bad(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!("unsupported version {version:?}")));
    }
    let (method, path) = (method.to_ascii_uppercase(), path.to_string());
    let mut headers = Vec::new();
    loop {
        let line = match try_take_line(buf, &mut pos)? {
            None => return Ok(None),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Bad(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::NeedsLength);
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Bad(format!("bad content-length {len:?}")))?;
        if len > max_body {
            return Err(HttpError::BodyTooLarge { limit: max_body });
        }
        if buf.len() - pos < len {
            return Ok(None);
        }
        request.body = buf[pos..pos + len].to_vec();
        pos += len;
    }
    Ok(Some((request, pos)))
}

/// Writes a fixed-length response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with_headers(writer, status, reason, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After` on
/// backpressure 503s). Each entry is one `name: value` pair; names must be
/// valid header tokens.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response_with_headers<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1 << 20)
    }

    #[test]
    fn parses_get_and_keep_alive_default() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.keep_alive());
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_post_body_and_connection_close() {
        let req = parse(
            "POST /v1/classify HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"hello");
        assert!(!req.keep_alive());
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn garbage_is_bad_request() {
        assert!(matches!(parse("NOT HTTP\r\n\r\n"), Err(HttpError::Bad(_))));
    }

    #[test]
    fn chunked_needs_length() {
        let raw = "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::NeedsLength)));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let err = read_request(&mut BufReader::new(raw.as_bytes()), 10).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 10 }));
    }

    #[test]
    fn two_pipelined_requests_parse_in_sequence() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let a = read_request(&mut reader, 1024).unwrap().unwrap();
        let b = read_request(&mut reader, 1024).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str()), ("/a", "/b"));
        assert!(read_request(&mut reader, 1024).unwrap().is_none());
    }

    #[test]
    fn try_parse_reports_partial_heads_and_bodies_as_incomplete() {
        let full = "POST /v1/classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..full.len() {
            let partial = try_parse_request(&full.as_bytes()[..cut], 1 << 20).unwrap();
            assert!(partial.is_none(), "prefix of {cut} bytes must be partial");
        }
        let (req, consumed) = try_parse_request(full.as_bytes(), 1 << 20)
            .unwrap()
            .expect("complete request parses");
        assert_eq!(consumed, full.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/classify");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn try_parse_consumes_pipelined_requests_one_at_a_time() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (a, used_a) = try_parse_request(raw, 1024).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        let (b, used_b) = try_parse_request(&raw[used_a..], 1024).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert_eq!(used_a + used_b, raw.len());
        assert!(try_parse_request(&raw[used_a + used_b..], 1024)
            .unwrap()
            .is_none());
    }

    #[test]
    fn try_parse_tolerates_one_stray_crlf_between_requests() {
        let raw = b"\r\nGET /a HTTP/1.1\r\n\r\n";
        let (req, consumed) = try_parse_request(raw, 1024).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn try_parse_rejects_oversized_bodies_before_they_arrive() {
        // Head only — the declared length alone triggers the rejection.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let err = try_parse_request(raw, 10).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 10 }));
    }

    #[test]
    fn try_parse_rejects_chunked_and_garbage() {
        let chunked = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            try_parse_request(chunked, 1024),
            Err(HttpError::NeedsLength)
        ));
        assert!(matches!(
            try_parse_request(b"NOT HTTP\r\n\r\n", 1024),
            Err(HttpError::Bad(_))
        ));
        let runaway = vec![b'a'; MAX_LINE + 2];
        assert!(matches!(
            try_parse_request(&runaway, 1024),
            Err(HttpError::Bad(_))
        ));
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn extra_headers_land_before_the_blank_line() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            503,
            "Service Unavailable",
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("\r\nRetry-After: 1"), "{text}");
        assert!(head.contains("Connection: close"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
