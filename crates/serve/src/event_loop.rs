//! The non-blocking connection engine: one thread, one `epoll` set, every
//! socket.
//!
//! Readiness-driven instead of thread-per-connection: the loop owns the
//! listener and all accepted sockets, each wrapped in a small state
//! machine ([`Conn`]) of buffered reads, incremental parses
//! (`http::try_parse_request`), and buffered writes. Classify requests are
//! handed to the inference replicas through the batch queue; their
//! [`ResponseSlot`] notifiers push the connection's token onto a shared
//! completion list and poke a **wake pipe** registered with the poller, so
//! results re-enter the loop without blocking any thread on a condvar.
//!
//! The `epoll` syscalls are declared directly (`std` already links libc on
//! unix — the same trick as [`crate::server::signals`]). On non-Linux
//! targets a portable fallback poller reports every registered handle
//! ready after a short sleep; that is merely less efficient, not less
//! correct, because the sockets are non-blocking and the loop tolerates
//! spurious readiness by design (level-triggered semantics).
//!
//! [`ResponseSlot`]: crate::batcher::ResponseSlot

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::try_parse_request;
use crate::server::{self, signals, Ctx, DispatchResult, InFlight};
use xbar_obs::{metrics, names};

/// Poll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poll token of the wake pipe's read end.
const TOKEN_WAKE: u64 = 1;
/// First connection token; tokens are monotonic and never reused, so a
/// late completion can never be misdelivered to a recycled connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Longest the loop sleeps in the poller: bounds shutdown-flag latency.
const TICK: Duration = Duration::from_millis(25);

/// Read chunk per `read(2)`; level-triggered readiness re-reports anything
/// left unread.
const READ_CHUNK: usize = 64 << 10;

#[cfg(unix)]
pub(crate) type Handle = std::os::fd::RawFd;
#[cfg(not(unix))]
pub(crate) type Handle = u64;

#[cfg(unix)]
fn handle_of(x: &impl std::os::fd::AsRawFd) -> Handle {
    x.as_raw_fd()
}
#[cfg(not(unix))]
fn handle_of<T>(_x: &T) -> Handle {
    0
}

#[cfg(target_os = "linux")]
mod poll {
    //! `epoll(7)` via direct declarations — no libc crate.

    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
    use std::sync::Arc;
    use std::time::Duration;

    use super::Handle;

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    /// Matches the kernel's `struct epoll_event`, which is packed on
    /// x86-64 only.
    #[derive(Clone, Copy)]
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
    }

    pub struct Poller {
        epfd: OwnedFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let fd = unsafe { epoll_create1(0) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: Vec::with_capacity(256),
            })
        }

        fn ctl(&self, op: i32, fd: Handle, token: u64, writable: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | if writable { EPOLLOUT } else { 0 },
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        /// Adds `fd` with read interest (always) and optional write
        /// interest, tagged with `token`.
        pub fn register(&mut self, fd: Handle, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, writable)
        }

        pub fn modify(&mut self, fd: Handle, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, writable)
        }

        pub fn deregister(&mut self, fd: Handle, _token: u64) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Fills `out` with `(token, readable, writable)` readiness.
        /// Errors and hangups report as both so the owning state machine
        /// discovers them on its next read/write.
        pub fn wait(
            &mut self,
            timeout: Duration,
            out: &mut Vec<(u64, bool, bool)>,
        ) -> io::Result<()> {
            out.clear();
            self.buf.clear();
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.capacity() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    // Our own SIGTERM/SIGINT handler interrupting the
                    // wait; the loop re-checks the flag every iteration.
                    return Ok(());
                }
                return Err(err);
            }
            // Sound: the kernel initialised the first `n` entries.
            unsafe { self.buf.set_len(n as usize) };
            for ev in &self.buf {
                let events = ev.events;
                let token = ev.data;
                out.push((
                    token,
                    events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                ));
            }
            Ok(())
        }
    }

    /// Self-pipe that lets inference replicas interrupt an `epoll_wait`.
    pub struct WakePipe {
        read: std::fs::File,
        write: Arc<std::fs::File>,
    }

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakePipe {
                read: unsafe { std::fs::File::from_raw_fd(fds[0]) },
                write: Arc::new(unsafe { std::fs::File::from_raw_fd(fds[1]) }),
            })
        }

        pub fn handle(&self) -> Handle {
            self.read.as_raw_fd()
        }

        pub fn waker(&self) -> Waker {
            Waker {
                file: Arc::clone(&self.write),
            }
        }

        /// Swallows pending wake bytes. Reads once (blocking is safe: only
        /// called when the poller reported the pipe readable); anything
        /// beyond one chunk re-reports level-triggered.
        pub fn drain(&self) {
            use std::io::Read;
            let mut buf = [0u8; 4096];
            let _ = (&self.read).read(&mut buf);
        }
    }

    #[derive(Clone)]
    pub struct Waker {
        file: Arc<std::fs::File>,
    }

    impl Waker {
        pub fn wake(&self) {
            use std::io::Write;
            let _ = (&*self.file).write(&[1u8]);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod poll {
    //! Portable fallback: a short sleep, then report every registered
    //! token ready. Spurious readiness is harmless — the sockets are
    //! non-blocking and the state machines treat `WouldBlock` as "not
    //! yet" — it just costs a few wake-ups per millisecond.

    use std::io;
    use std::time::Duration;

    use super::Handle;

    pub struct Poller {
        tokens: Vec<u64>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { tokens: Vec::new() })
        }

        pub fn register(&mut self, _fd: Handle, token: u64, _writable: bool) -> io::Result<()> {
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, _fd: Handle, _token: u64, _writable: bool) -> io::Result<()> {
            Ok(())
        }

        pub fn deregister(&mut self, _fd: Handle, token: u64) {
            self.tokens.retain(|&t| t != token);
        }

        pub fn wait(
            &mut self,
            timeout: Duration,
            out: &mut Vec<(u64, bool, bool)>,
        ) -> io::Result<()> {
            out.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(5)));
            out.extend(self.tokens.iter().map(|&t| (t, true, true)));
            Ok(())
        }
    }

    /// No pipe needed: the fallback poller wakes itself every few
    /// milliseconds, which bounds completion latency without a signal.
    pub struct WakePipe;

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            Ok(WakePipe)
        }

        pub fn handle(&self) -> Handle {
            0
        }

        pub fn waker(&self) -> Waker {
            Waker
        }

        pub fn drain(&self) {}
    }

    #[derive(Clone)]
    pub struct Waker;

    impl Waker {
        pub fn wake(&self) {}
    }
}

/// Where inference replicas deposit finished request tokens for the loop
/// to collect; every push pokes the wake pipe so a parked `epoll_wait`
/// returns promptly.
pub(crate) struct Completions {
    list: Mutex<Vec<u64>>,
    waker: poll::Waker,
}

impl Completions {
    fn new(waker: poll::Waker) -> Arc<Completions> {
        Arc::new(Completions {
            list: Mutex::new(Vec::new()),
            waker,
        })
    }

    pub(crate) fn push(&self, token: u64) {
        self.list
            .lock()
            .expect("completion list poisoned")
            .push(token);
        self.waker.wake();
    }

    fn take(&self) -> Vec<u64> {
        std::mem::take(&mut *self.list.lock().expect("completion list poisoned"))
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (may hold pipelined requests).
    read_buf: Vec<u8>,
    /// Response bytes not yet flushed to the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// The admitted classify request this connection is waiting on, if
    /// any; while set, pipelined bytes stay buffered unparsed.
    inflight: Option<InFlight>,
    /// Close once `write_buf` drains (non-keep-alive or erroring reply).
    close_after_write: bool,
    /// Whether the poller currently watches this socket for writability.
    want_write: bool,
    /// The socket failed; tear down at the next sync point.
    broken: bool,
}

/// The single-threaded engine owning every socket. Built on the caller's
/// thread so setup errors surface from `Server::start_tiered`, then moved
/// into the `xbar-eventloop` thread and [`run`](EventLoop::run).
pub(crate) struct EventLoop {
    listener: Option<TcpListener>,
    ctx: Arc<Ctx>,
    poller: poll::Poller,
    wake: poll::WakePipe,
    completions: Arc<Completions>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Admitted classify requests not yet answered — the admission-control
    /// signal. Loop-local: only this thread admits or finishes requests.
    inflight_count: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
    read_scratch: Vec<u8>,
    events: Vec<(u64, bool, bool)>,
}

impl EventLoop {
    pub(crate) fn new(listener: TcpListener, ctx: Arc<Ctx>) -> std::io::Result<EventLoop> {
        let mut poller = poll::Poller::new()?;
        let wake = poll::WakePipe::new()?;
        poller.register(handle_of(&listener), TOKEN_LISTENER, false)?;
        poller.register(wake.handle(), TOKEN_WAKE, false)?;
        let completions = Completions::new(wake.waker());
        Ok(EventLoop {
            listener: Some(listener),
            ctx,
            poller,
            wake,
            completions,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            inflight_count: 0,
            draining: false,
            drain_deadline: None,
            read_scratch: vec![0u8; READ_CHUNK],
            events: Vec::new(),
        })
    }

    pub(crate) fn run(mut self) {
        loop {
            if !self.draining && (self.ctx.shutdown.load(Ordering::SeqCst) || signals::signalled())
            {
                self.begin_drain();
            }
            if self.draining
                && (self.conns.is_empty()
                    || self.drain_deadline.is_some_and(|d| Instant::now() >= d))
            {
                break;
            }
            let timeout = self.next_timeout();
            let mut events = std::mem::take(&mut self.events);
            if let Err(e) = self.poller.wait(timeout, &mut events) {
                // A dead poller cannot make progress; bail out rather
                // than spin.
                eprintln!("[serve] event loop poller failed: {e}");
                break;
            }
            for &(token, readable, writable) in &events {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake.drain(),
                    _ => {
                        if readable {
                            self.read_ready(token);
                        }
                        if writable {
                            self.write_ready(token);
                        }
                    }
                }
            }
            self.events = events;
            // Completions are drained every iteration regardless of the
            // wake pipe, so a missed wake only costs one tick of latency.
            for token in self.completions.take() {
                self.complete(token);
            }
            self.expire_inflight();
        }
        // Drain deadline passed (or poller died): drop whatever is left.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    /// Sleep no longer than the nearest in-flight deadline (so 504s are
    /// timely) or one tick (so shutdown is).
    fn next_timeout(&self) -> Duration {
        let mut timeout = TICK;
        if self.inflight_count > 0 {
            let now = Instant::now();
            for conn in self.conns.values() {
                if let Some(inflight) = &conn.inflight {
                    timeout = timeout.min(inflight.deadline.saturating_duration_since(now));
                }
            }
        }
        timeout.max(Duration::from_millis(1))
    }

    /// Accepts until the backlog is dry (level-triggered readiness).
    fn accept_ready(&mut self) {
        loop {
            if self.draining {
                return;
            }
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    metrics::counter_add(names::SERVE_CONNECTIONS, 1);
                    if self.conns.len() >= self.ctx.cfg.max_connections {
                        metrics::counter_add(names::SERVE_CONNECTIONS_REJECTED, 1);
                        server::reject_connection(stream, self.ctx.cfg.max_connections);
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(handle_of(&stream), token, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            written: 0,
                            inflight: None,
                            close_after_write: false,
                            want_write: false,
                            broken: false,
                        },
                    );
                    metrics::gauge_set(names::SERVE_OPEN_CONNECTIONS, self.conns.len() as f64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Pulls available bytes into the connection's read buffer, then
    /// advances its state machine.
    fn read_ready(&mut self, token: u64) {
        // Headroom above max_body covers the head and modest pipelining; a
        // connection that outruns an unanswered request by this much is
        // abusive, not unlucky.
        let max_buf = self.ctx.cfg.max_body + (1 << 20);
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                match conn.stream.read(&mut self.read_scratch) {
                    Ok(0) => {
                        conn.broken = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&self.read_scratch[..n]);
                        if conn.read_buf.len() > max_buf {
                            conn.broken = true;
                            break;
                        }
                        if n < self.read_scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.broken = true;
                        break;
                    }
                }
            }
        }
        self.advance(token);
    }

    fn write_ready(&mut self, token: u64) {
        self.flush(token);
        self.sync(token);
    }

    /// Parses and dispatches buffered requests (one in flight at a time),
    /// then flushes and reconciles poller interest.
    fn advance(&mut self, token: u64) {
        loop {
            let draining = self.draining;
            let inflight_now = self.inflight_count;
            let ctx = Arc::clone(&self.ctx);
            let completions = Arc::clone(&self.completions);
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.broken
                || conn.inflight.is_some()
                || conn.close_after_write
                || conn.read_buf.is_empty()
            {
                break;
            }
            match try_parse_request(&conn.read_buf, ctx.cfg.max_body) {
                Ok(None) => break,
                Ok(Some((request, consumed))) => {
                    conn.read_buf.drain(..consumed);
                    if draining {
                        let bytes = server::shutting_down_response();
                        conn.write_buf.extend_from_slice(&bytes);
                        conn.close_after_write = true;
                        break;
                    }
                    let notify: Box<dyn FnOnce() + Send> =
                        Box::new(move || completions.push(token));
                    match server::dispatch(&request, &ctx, inflight_now, notify) {
                        DispatchResult::Done { bytes, keep_alive } => {
                            conn.write_buf.extend_from_slice(&bytes);
                            if !keep_alive {
                                conn.close_after_write = true;
                                break;
                            }
                        }
                        DispatchResult::Pending(inflight) => {
                            conn.inflight = Some(*inflight);
                            self.inflight_count += 1;
                            metrics::gauge_set(names::SERVE_INFLIGHT, self.inflight_count as f64);
                            break;
                        }
                    }
                }
                Err(e) => {
                    let bytes = server::http_error_response(&e);
                    if bytes.is_empty() {
                        conn.broken = true;
                    } else {
                        conn.write_buf.extend_from_slice(&bytes);
                        conn.close_after_write = true;
                    }
                    break;
                }
            }
        }
        self.flush(token);
        self.sync(token);
    }

    /// Writes as much buffered response as the socket accepts.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while conn.written < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => {
                    conn.broken = true;
                    break;
                }
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.broken = true;
                    break;
                }
            }
        }
        if conn.written > 0 && conn.written == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.written = 0;
        }
    }

    /// Reconciles the connection's poller interest with its buffers, and
    /// tears it down when it is broken or finished.
    fn sync(&mut self, token: u64) {
        let (close, interest) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let pending_write = conn.written < conn.write_buf.len();
            if conn.broken || (!pending_write && conn.close_after_write) {
                (true, None)
            } else if pending_write != conn.want_write {
                conn.want_write = pending_write;
                (false, Some(pending_write))
            } else {
                (false, None)
            }
        };
        if close {
            self.close_conn(token);
        } else if let Some(writable) = interest {
            let handle = handle_of(&self.conns[&token].stream);
            self.poller.modify(handle, token, writable).ok();
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.poller.deregister(handle_of(&conn.stream), token);
        if conn.inflight.is_some() {
            // The answer, if it ever lands, has nowhere to go; its late
            // completion will find the token missing and no-op.
            self.inflight_count = self.inflight_count.saturating_sub(1);
            metrics::gauge_set(names::SERVE_INFLIGHT, self.inflight_count as f64);
        }
        metrics::gauge_set(names::SERVE_OPEN_CONNECTIONS, self.conns.len() as f64);
    }

    /// Delivers a filled response slot back onto its connection.
    fn complete(&mut self, token: u64) {
        let ctx = Arc::clone(&self.ctx);
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                // Connection closed while the request was in flight.
                return;
            };
            let Some(inflight) = &conn.inflight else {
                // Already finished (e.g. timed out last tick); stale wake.
                return;
            };
            match inflight.slot.take() {
                Some(outcome) => outcome,
                None => return, // spurious notification, not filled yet
            }
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let inflight = conn.inflight.take().expect("checked above");
        let (bytes, keep_alive) = server::finish_inflight(inflight, Some(outcome), &ctx);
        conn.write_buf.extend_from_slice(&bytes);
        if !keep_alive {
            conn.close_after_write = true;
        }
        self.inflight_count = self.inflight_count.saturating_sub(1);
        metrics::gauge_set(names::SERVE_INFLIGHT, self.inflight_count as f64);
        // A pipelined follow-up may be parseable now; advance also
        // flushes and re-syncs interest.
        self.advance(token);
    }

    /// Turns overdue in-flight requests into 504s (unless their result
    /// raced in at the last instant, which still wins).
    fn expire_inflight(&mut self) {
        if self.inflight_count == 0 {
            return;
        }
        let now = Instant::now();
        let ctx = Arc::clone(&self.ctx);
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.inflight.as_ref().is_some_and(|f| now >= f.deadline))
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(inflight) = conn.inflight.take() else {
                continue;
            };
            let outcome = inflight.slot.take();
            let (bytes, keep_alive) = server::finish_inflight(inflight, outcome, &ctx);
            conn.write_buf.extend_from_slice(&bytes);
            if !keep_alive {
                conn.close_after_write = true;
            }
            self.inflight_count = self.inflight_count.saturating_sub(1);
            metrics::gauge_set(names::SERVE_INFLIGHT, self.inflight_count as f64);
            self.advance(token);
        }
    }

    /// Shutdown observed: stop accepting, give in-flight requests one
    /// request-timeout (plus slack) to finish, close idle connections now.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(handle_of(&listener), TOKEN_LISTENER);
        }
        self.drain_deadline =
            Some(Instant::now() + self.ctx.cfg.request_timeout + Duration::from_secs(1));
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.inflight.is_none() && c.written == c.write_buf.len())
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }
}
