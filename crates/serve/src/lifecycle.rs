//! Device-drift lifecycle: hot-swappable model slot, online health sweeps,
//! and the re-program → re-map → hot-swap mitigation ladder.
//!
//! The serving process holds its networks in a versioned [`ModelSlot`].
//! Inference workers run [`hot_swap_inference_loop`]: each owns a private
//! [`TierModels`] clone and re-clones from the slot *between* micro-batches
//! whenever the published version moves — an in-flight batch always finishes
//! on the weights it started with, so a swap can never fail a request.
//!
//! A [`DriftController`] models retention drift of the programmed exact-tier
//! conductances (`xbar_core::ModelDriftState`) and periodically re-simulates
//! a small deterministic probe set against the pristine model's answers.
//! When probe agreement drops past configured thresholds the controller
//! climbs the mitigation ladder:
//!
//! | rung | trigger (probe-accuracy drop) | action |
//! |------|-------------------------------|--------|
//! | 1    | ≥ `refresh_drop`              | program-and-verify refresh of drifted cells |
//! | 2    | ≥ `remap_drop`                | spare-column remap of the worst columns, then refresh |
//! | 3    | ≥ `reload_drop`               | full re-map (counts as a reload) |
//!
//! Every sweep republishes the post-mitigation snapshot through the slot, so
//! classify traffic always sees the weights the drift state says the
//! hardware currently reads. `/admin/reload` reuses the same slot to swap in
//! a whole new artifact without dropping in-flight requests.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use xbar_core::{load_artifact_bundle_mmap, ArtifactMeta, DriftModel, ModelDriftState};
use xbar_nn::{Mode, Sequential};
use xbar_obs::{metrics, names};
use xbar_tensor::Tensor;

use crate::batcher::{run_tier_batches, softmax, BatchQueue};
use crate::tier::{Tier, TierModels};

/// Odd splitmix constant for deriving per-probe seeds.
const PROBE_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of the drift lifecycle. `Default` disables it entirely
/// (no controller, plain static serving).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// Interval between background health sweeps; `Duration::ZERO` disables
    /// the sweep thread.
    pub sweep_interval: Duration,
    /// Number of deterministic probe inputs in the health-sweep set.
    pub probe_count: usize,
    /// Fastest per-cell retention time constant (seconds).
    pub tau_fast: f64,
    /// Slowest per-cell retention time constant (seconds).
    pub tau_slow: f64,
    /// Probe-accuracy drop that triggers rung 1 (refresh).
    pub refresh_drop: f64,
    /// Probe-accuracy drop that triggers rung 2 (spare-column remap).
    pub remap_drop: f64,
    /// Probe-accuracy drop that triggers rung 3 (full re-map / reload).
    pub reload_drop: f64,
    /// Per-cell decay fraction above which rung 1 rewrites a cell.
    pub refresh_tolerance: f64,
    /// Per-column mean decay above which rung 2 remaps a column.
    pub remap_column_decay: f64,
    /// Extra seed folded into the artifact's mapping seed for the per-device
    /// retention constants.
    pub seed: u64,
    /// Enables the test-only `POST /admin/advance-time` endpoint that
    /// fast-forwards the drift clock (hidden — 404 — when false).
    pub test_hooks: bool,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self {
            sweep_interval: Duration::ZERO,
            probe_count: 16,
            tau_fast: 3.6e3,
            tau_slow: 1.0e7,
            refresh_drop: 0.02,
            remap_drop: 0.10,
            reload_drop: 0.30,
            refresh_tolerance: 0.01,
            remap_column_decay: 0.25,
            seed: 0,
            test_hooks: false,
        }
    }
}

impl LifecycleConfig {
    /// Whether a [`DriftController`] should exist at all: either background
    /// sweeps are on, or the test hooks want a drift clock to fast-forward.
    pub fn active(&self) -> bool {
        self.sweep_interval > Duration::ZERO || self.test_hooks
    }
}

/// Point-in-time lifecycle summary surfaced on `/healthz` and `/v1/model`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleStatus {
    /// Completed health sweeps.
    pub sweeps: u64,
    /// Unix time (seconds) of the last completed sweep, if any.
    pub last_sweep_unix_s: Option<u64>,
    /// Probe-set agreement with the pristine model at the last measurement.
    pub probe_accuracy: f64,
    /// Mean |score − reference score| over the probe set.
    pub probe_deviation: f64,
    /// Relative deviation of batched probe column currents against pristine
    /// devices — the circuit-level drift signal (0 when pristine).
    pub probe_current_deviation: f64,
    /// Mitigation rung applied by the last sweep (0 = none).
    pub rung: u8,
    /// Seconds of simulated drift since (re)programming.
    pub drift_elapsed_s: f64,
    /// Mean per-cell conductance decay fraction.
    pub mean_decay: f64,
}

impl Default for LifecycleStatus {
    fn default() -> Self {
        Self {
            sweeps: 0,
            last_sweep_unix_s: None,
            probe_accuracy: 1.0,
            probe_deviation: 0.0,
            probe_current_deviation: 0.0,
            rung: 0,
            drift_elapsed_s: 0.0,
            mean_decay: 0.0,
        }
    }
}

/// What one health sweep measured and did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepReport {
    /// Probe agreement before mitigation.
    pub pre_accuracy: f64,
    /// Probe agreement after mitigation (equals `pre_accuracy` on rung 0).
    pub post_accuracy: f64,
    /// Mean score deviation after mitigation.
    pub post_deviation: f64,
    /// Circuit-level probe current deviation after mitigation.
    pub post_current_deviation: f64,
    /// Ladder rung applied (0 = none).
    pub rung: u8,
    /// Cells rewritten by the refresh pass.
    pub refreshed_cells: usize,
    /// Columns relocated onto spare devices.
    pub remapped_columns: usize,
    /// Seconds of simulated drift at measurement time.
    pub drift_elapsed_s: f64,
    /// Mean per-cell decay fraction after mitigation.
    pub mean_decay: f64,
}

struct SlotInner {
    models: TierModels,
    meta: ArtifactMeta,
}

/// A versioned, hot-swappable holder of the served networks and their
/// metadata. Readers snapshot (clone) under a short lock; publishers bump
/// the version so worker loops know to re-clone between batches.
pub struct ModelSlot {
    version: AtomicU64,
    inner: Mutex<SlotInner>,
}

impl ModelSlot {
    /// Wraps the initial artifact. The version starts at 1.
    pub fn new(models: TierModels, meta: ArtifactMeta) -> Self {
        Self {
            version: AtomicU64::new(1),
            inner: Mutex::new(SlotInner { models, meta }),
        }
    }

    /// Current publish version (cheap atomic load — safe to poll per batch).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Clones the current networks together with the version they belong to.
    pub fn snapshot(&self) -> (u64, TierModels) {
        let inner = self.inner.lock().expect("model slot poisoned");
        (self.version.load(Ordering::SeqCst), inner.models.clone())
    }

    /// Clones the current artifact metadata.
    pub fn meta(&self) -> ArtifactMeta {
        self.inner.lock().expect("model slot poisoned").meta.clone()
    }

    /// Clones the current exact-tier network.
    pub fn exact_model(&self) -> Sequential {
        self.inner
            .lock()
            .expect("model slot poisoned")
            .models
            .exact
            .clone()
    }

    /// Fidelity tiers the current artifact can serve.
    pub fn available(&self) -> Vec<Tier> {
        self.inner
            .lock()
            .expect("model slot poisoned")
            .models
            .available()
    }

    /// Replaces the exact-tier network (drift snapshot or mitigation
    /// result), keeping metadata and the other tiers. Returns the new
    /// version.
    pub fn publish_exact(&self, model: Sequential) -> u64 {
        let mut inner = self.inner.lock().expect("model slot poisoned");
        inner.models.exact = model;
        self.version.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Swaps in a whole new artifact. The replacement must be
    /// request-compatible with what is being served — same input shape and
    /// class count — so in-flight and queued requests stay valid.
    ///
    /// # Errors
    ///
    /// Returns a description if the shapes are incompatible.
    pub fn publish_bundle(
        &self,
        models: TierModels,
        meta: ArtifactMeta,
    ) -> std::result::Result<u64, String> {
        let mut inner = self.inner.lock().expect("model slot poisoned");
        if meta.input_shape != inner.meta.input_shape {
            return Err(format!(
                "input shape mismatch: serving {:?}, artifact has {:?}",
                inner.meta.input_shape, meta.input_shape
            ));
        }
        if meta.num_classes != inner.meta.num_classes {
            return Err(format!(
                "class count mismatch: serving {}, artifact has {}",
                inner.meta.num_classes, meta.num_classes
            ));
        }
        metrics::gauge_set(
            names::SERVE_DEGRADED,
            if meta.is_degraded() { 1.0 } else { 0.0 },
        );
        metrics::gauge_set(names::SERVE_DEGRADED_TILES, meta.degraded_tiles as f64);
        metrics::gauge_set(names::SERVE_STUCK_CELLS, meta.stuck_cells as f64);
        metrics::gauge_set(names::SERVE_REPAIRED_COLUMNS, meta.repaired_columns as f64);
        metrics::gauge_set(names::SERVE_MAX_FAULT_SCORE, meta.max_fault_score);
        inner.models = models;
        inner.meta = meta;
        Ok(self.version.fetch_add(1, Ordering::SeqCst) + 1)
    }
}

/// Inference worker loop with hot-swap support: like
/// [`crate::batcher::inference_loop`] but re-clones from the [`ModelSlot`]
/// between micro-batches whenever the published version moves. In-flight
/// batches always complete on the clone they started with, which is what
/// makes artifact swaps lossless.
pub fn hot_swap_inference_loop(
    slot: &ModelSlot,
    queue: &BatchQueue,
    max_batch: usize,
    deadline: Duration,
) {
    replica_inference_loop(slot, queue, max_batch, deadline, None);
}

/// [`hot_swap_inference_loop`] for one replica of the serving pool: same
/// semantics, plus every request it executes is counted on that replica's
/// `serve/replica_requests/<id>` series so replica fairness is observable
/// (and testable) from `/metrics`.
pub fn replica_inference_loop(
    slot: &ModelSlot,
    queue: &BatchQueue,
    max_batch: usize,
    deadline: Duration,
    replica: Option<usize>,
) {
    // Reloads are validated shape-compatible, so the input shape is stable
    // for the life of the process.
    let input_shape = slot.meta().input_shape.clone();
    let counter = replica.map(names::serve_replica_requests);
    let (mut version, mut models) = slot.snapshot();
    while let Some(batch) = queue.next_batch(max_batch, deadline) {
        if slot.version() != version {
            let (v, m) = slot.snapshot();
            version = v;
            models = m;
        }
        if let Some(name) = &counter {
            metrics::counter_add(name, batch.len() as u64);
        }
        run_tier_batches(&mut models, &input_shape, batch);
    }
}

struct ProbeReference {
    classes: Vec<usize>,
    scores: Vec<Vec<f32>>,
}

struct ControllerState {
    drift: ModelDriftState,
    /// Monotone salt so successive rung-2 remaps draw fresh devices.
    remap_salt: u64,
}

/// Owns the drift model of the served exact tier, the probe set, and the
/// mitigation ladder. All methods take `&self`; internal state is locked.
pub struct DriftController {
    cfg: LifecycleConfig,
    slot: Arc<ModelSlot>,
    input_shape: Vec<usize>,
    probes: Vec<Vec<f32>>,
    reference: Mutex<ProbeReference>,
    state: Mutex<ControllerState>,
    status: Mutex<LifecycleStatus>,
}

impl DriftController {
    /// Programs the slot's (pristine) exact model onto drifting devices and
    /// records the pristine probe answers as the health reference.
    ///
    /// # Errors
    ///
    /// Returns a description if the drift model is inconsistent or the probe
    /// forward pass fails.
    pub fn new(cfg: LifecycleConfig, slot: Arc<ModelSlot>) -> std::result::Result<Self, String> {
        let meta = slot.meta();
        let input_shape = meta.input_shape.clone();
        let drift_model = DriftModel::new(cfg.tau_fast, cfg.tau_slow);
        let drift =
            ModelDriftState::with_defaults(&slot.exact_model(), drift_model, cfg.seed ^ meta.seed)?;
        let probes = probe_inputs(cfg.probe_count.max(1), &input_shape, cfg.seed ^ meta.seed);
        let (classes, scores) = probe_forward(slot.exact_model(), &input_shape, &probes)?;
        metrics::gauge_set(names::SERVE_PROBE_ACCURACY, 1.0);
        metrics::gauge_set(names::SERVE_PROBE_DEVIATION, 0.0);
        metrics::gauge_set(names::SERVE_MITIGATION_RUNG, 0.0);
        metrics::gauge_set(names::SERVE_DRIFT_ELAPSED_S, 0.0);
        metrics::gauge_set(names::SERVE_DRIFT_MEAN_DECAY, 0.0);
        Ok(Self {
            cfg,
            slot,
            input_shape,
            probes,
            reference: Mutex::new(ProbeReference { classes, scores }),
            state: Mutex::new(ControllerState {
                drift,
                remap_salt: 0,
            }),
            status: Mutex::new(LifecycleStatus::default()),
        })
    }

    /// The lifecycle configuration in force.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// Snapshot of the lifecycle status for `/healthz` and `/v1/model`.
    pub fn status(&self) -> LifecycleStatus {
        *self.status.lock().expect("lifecycle status poisoned")
    }

    /// Probe agreement and score deviation of `model` against the pristine
    /// reference. The deviation is the mean (over probes) total-variation
    /// distance between softmax rows — the probability mass displaced per
    /// probe, in `[0, 1]` — rather than a mean over individual score
    /// elements, which dilutes the signal by the class count and can sit
    /// below the refresh threshold even at full decay.
    fn probe_eval(&self, model: Sequential) -> std::result::Result<(f64, f64), String> {
        let (classes, scores) = probe_forward(model, &self.input_shape, &self.probes)?;
        let reference = self.reference.lock().expect("probe reference poisoned");
        let agree = classes
            .iter()
            .zip(&reference.classes)
            .filter(|(a, b)| a == b)
            .count();
        let accuracy = agree as f64 / classes.len().max(1) as f64;
        let mut dev_sum = 0.0f64;
        let mut dev_n = 0usize;
        for (row, ref_row) in scores.iter().zip(&reference.scores) {
            let l1: f64 = row
                .iter()
                .zip(ref_row)
                .map(|(s, r)| f64::from((s - r).abs()))
                .sum();
            dev_sum += 0.5 * l1;
            dev_n += 1;
        }
        Ok((accuracy, dev_sum / dev_n.max(1) as f64))
    }

    /// Fast-forwards the simulated drift clock by `dt` seconds and publishes
    /// the decayed snapshot so classify traffic sees it. Returns
    /// `(elapsed, mean_decay)`.
    pub fn advance_time(&self, dt: f64) -> (f64, f64) {
        let mut state = self.state.lock().expect("lifecycle state poisoned");
        state.drift.advance_time(dt);
        let elapsed = state.drift.elapsed();
        let mean_decay = state.drift.mean_decay();
        let model = state.drift.snapshot_model();
        drop(state);
        self.slot.publish_exact(model);
        metrics::gauge_set(names::SERVE_DRIFT_ELAPSED_S, elapsed);
        metrics::gauge_set(names::SERVE_DRIFT_MEAN_DECAY, mean_decay);
        let mut status = self.status.lock().expect("lifecycle status poisoned");
        status.drift_elapsed_s = elapsed;
        status.mean_decay = mean_decay;
        (elapsed, mean_decay)
    }

    /// One health sweep: measure probe agreement of the drifted weights,
    /// climb the mitigation ladder if it has dropped, republish, and
    /// re-measure.
    pub fn sweep(&self) -> SweepReport {
        let start = Instant::now();
        let mut state = self.state.lock().expect("lifecycle state poisoned");
        let (pre_accuracy, pre_deviation) = self
            .probe_eval(state.drift.snapshot_model())
            .unwrap_or((0.0, 1.0));
        // Argmax agreement alone is blind to drift when the probe set is
        // degenerate (a model that answers one class for every probe keeps
        // agreeing with itself at any decay); the score deviation is the
        // current-deviation signal that still moves, so the ladder climbs
        // on whichever is worse.
        let drop_frac = (1.0 - pre_accuracy).max(pre_deviation);
        let rung: u8 = if drop_frac >= self.cfg.reload_drop {
            3
        } else if drop_frac >= self.cfg.remap_drop {
            2
        } else if drop_frac >= self.cfg.refresh_drop {
            1
        } else {
            0
        };
        let mut refreshed = 0usize;
        let mut remapped = 0usize;
        match rung {
            1 => refreshed = state.drift.refresh(self.cfg.refresh_tolerance),
            2 => {
                state.remap_salt += 1;
                let salt = state.remap_salt;
                remapped = state
                    .drift
                    .remap_worst_columns(self.cfg.remap_column_decay, salt);
                refreshed = state.drift.refresh(self.cfg.refresh_tolerance);
            }
            3 => {
                // Full re-map: every device rewritten — the on-device
                // equivalent of reloading the artifact.
                state.drift.reprogram_all();
                metrics::counter_add(names::SERVE_RELOADS, 1);
            }
            _ => {}
        }
        let model = state.drift.snapshot_model();
        let drift_elapsed_s = state.drift.elapsed();
        let mean_decay = state.drift.mean_decay();
        let (post_accuracy, post_deviation) = if rung == 0 {
            (pre_accuracy, pre_deviation)
        } else {
            self.probe_eval(model.clone()).unwrap_or((0.0, 1.0))
        };
        // Hardware-level cross-check: the probe micro-batch read straight
        // off the drifted devices through batched circuit solves. Catches
        // decay the logits hide (saturated softmax, degenerate probe sets).
        let post_current_deviation = state
            .drift
            .circuit_probe_deviation(self.cfg.probe_count.clamp(1, 8), self.cfg.seed)
            .unwrap_or(1.0);
        drop(state);
        self.slot.publish_exact(model);

        metrics::counter_add(names::SERVE_HEALTH_SWEEPS, 1);
        metrics::latency_record_us(names::SERVE_SWEEP_US, start.elapsed().as_micros() as u64);
        metrics::gauge_set(names::SERVE_PROBE_ACCURACY, post_accuracy);
        metrics::gauge_set(names::SERVE_PROBE_DEVIATION, post_deviation);
        metrics::gauge_set(names::SERVE_PROBE_CURRENT_DEVIATION, post_current_deviation);
        metrics::gauge_set(names::SERVE_MITIGATION_RUNG, f64::from(rung));
        metrics::gauge_set(names::SERVE_DRIFT_ELAPSED_S, drift_elapsed_s);
        metrics::gauge_set(names::SERVE_DRIFT_MEAN_DECAY, mean_decay);
        if refreshed > 0 {
            metrics::counter_add(names::SERVE_DRIFT_REFRESHED_CELLS, refreshed as u64);
        }
        if remapped > 0 {
            metrics::counter_add(names::SERVE_DRIFT_REMAPPED_COLUMNS, remapped as u64);
        }

        let mut status = self.status.lock().expect("lifecycle status poisoned");
        status.sweeps += 1;
        status.last_sweep_unix_s = unix_time_s();
        status.probe_accuracy = post_accuracy;
        status.probe_deviation = post_deviation;
        status.probe_current_deviation = post_current_deviation;
        status.rung = rung;
        status.drift_elapsed_s = drift_elapsed_s;
        status.mean_decay = mean_decay;

        SweepReport {
            pre_accuracy,
            post_accuracy,
            post_deviation,
            post_current_deviation,
            rung,
            refreshed_cells: refreshed,
            remapped_columns: remapped,
            drift_elapsed_s,
            mean_decay,
        }
    }

    /// `POST /admin/reload`: with a path, loads that artifact, validates it
    /// is request-compatible, swaps it in, and re-programs the drift state
    /// onto it; without one, re-programs the current artifact in place (a
    /// rung-3 recovery by hand). Returns `(version, label)`.
    ///
    /// # Errors
    ///
    /// Returns a description if the artifact cannot be loaded or is not
    /// compatible with what is being served.
    pub fn reload(&self, artifact: Option<&str>) -> std::result::Result<(u64, String), String> {
        let mut state = self.state.lock().expect("lifecycle state poisoned");
        let (version, label) = match artifact {
            Some(path) => {
                let bundle = load_artifact_bundle_mmap(path)
                    .map_err(|e| format!("cannot load artifact {path}: {e}"))?;
                let (models, meta) = TierModels::from_bundle(bundle);
                let label = meta.label.clone();
                let drift_model = DriftModel::new(self.cfg.tau_fast, self.cfg.tau_slow);
                let drift = ModelDriftState::with_defaults(
                    &models.exact,
                    drift_model,
                    self.cfg.seed ^ meta.seed,
                )?;
                let (classes, scores) =
                    probe_forward(models.exact.clone(), &self.input_shape, &self.probes)?;
                let version = self.slot.publish_bundle(models, meta)?;
                state.drift = drift;
                state.remap_salt = 0;
                let mut reference = self.reference.lock().expect("probe reference poisoned");
                reference.classes = classes;
                reference.scores = scores;
                (version, label)
            }
            None => {
                state.drift.reprogram_all();
                let model = state.drift.snapshot_model();
                let version = self.slot.publish_exact(model);
                (version, self.slot.meta().label)
            }
        };
        let elapsed = state.drift.elapsed();
        drop(state);
        metrics::counter_add(names::SERVE_RELOADS, 1);
        metrics::gauge_set(names::SERVE_DRIFT_ELAPSED_S, elapsed);
        metrics::gauge_set(names::SERVE_DRIFT_MEAN_DECAY, 0.0);
        metrics::gauge_set(names::SERVE_PROBE_ACCURACY, 1.0);
        metrics::gauge_set(names::SERVE_PROBE_DEVIATION, 0.0);
        metrics::gauge_set(names::SERVE_MITIGATION_RUNG, 0.0);
        metrics::gauge_set(names::SERVE_PROBE_CURRENT_DEVIATION, 0.0);
        let mut status = self.status.lock().expect("lifecycle status poisoned");
        status.probe_accuracy = 1.0;
        status.probe_deviation = 0.0;
        status.probe_current_deviation = 0.0;
        status.rung = 0;
        status.drift_elapsed_s = elapsed;
        status.mean_decay = 0.0;
        Ok((version, label))
    }
}

/// Runs periodic health sweeps until `shutdown` is raised. Sleeps in short
/// ticks so shutdown is honored promptly even with long intervals.
pub fn sweep_loop(controller: &DriftController, shutdown: &AtomicBool, interval: Duration) {
    let tick = Duration::from_millis(20).min(interval);
    let mut next = Instant::now() + interval;
    while !shutdown.load(Ordering::SeqCst) {
        if Instant::now() >= next {
            controller.sweep();
            next = Instant::now() + interval;
        }
        std::thread::sleep(tick);
    }
}

fn unix_time_s() -> Option<u64> {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .ok()
        .map(|d| d.as_secs())
}

/// Deterministic pseudo-input probe set: `count` examples of `shape`, each
/// from its own xorshift64* stream, values in `[0, 1)`.
fn probe_inputs(count: usize, shape: &[usize], seed: u64) -> Vec<Vec<f32>> {
    let len: usize = shape.iter().product();
    (0..count)
        .map(|i| {
            let mut x = seed.wrapping_add((i as u64 + 1).wrapping_mul(PROBE_SEED_MIX)) | 1;
            (0..len)
                .map(|_| {
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    (bits >> 40) as f32 / (1u64 << 24) as f32
                })
                .collect()
        })
        .collect()
}

/// Runs the probe set through `model`, returning argmax classes and softmax
/// score rows.
fn probe_forward(
    mut model: Sequential,
    input_shape: &[usize],
    probes: &[Vec<f32>],
) -> std::result::Result<(Vec<usize>, Vec<Vec<f32>>), String> {
    let n = probes.len();
    let per_example: usize = input_shape.iter().product();
    let mut stacked = Vec::with_capacity(n * per_example);
    for p in probes {
        stacked.extend_from_slice(p);
    }
    let mut shape = Vec::with_capacity(1 + input_shape.len());
    shape.push(n);
    shape.extend_from_slice(input_shape);
    let logits = Tensor::from_vec(stacked, &shape)
        .and_then(|x| model.forward(&x, Mode::Eval))
        .map_err(|e| format!("probe forward failed: {e}"))?;
    let classes_per_row = logits.shape().last().copied().unwrap_or(0).max(1);
    let mut classes = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);
    for row in logits.as_slice().chunks_exact(classes_per_row) {
        let s = softmax(row);
        let class = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        classes.push(class);
        scores.push(s);
    }
    Ok((classes, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::Layer;

    const INPUT_SHAPE: [usize; 3] = [1, 8, 8];
    const CLASSES: usize = 4;

    fn tiny_model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(1, 4, 3, 1, 1, seed)),
            Layer::ReLU(ReLU::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4 * 4 * 4, CLASSES, seed + 1)),
        ])
    }

    fn meta_for(label: &str) -> ArtifactMeta {
        ArtifactMeta {
            label: label.into(),
            num_classes: CLASSES,
            input_shape: INPUT_SHAPE.to_vec(),
            rows: 16,
            cols: 16,
            method: "None".into(),
            rearrange: None,
            scale: "PerLayerMax".into(),
            solve: "LineRelaxation".into(),
            seed: 11,
            crossbar_count: 1,
            mean_nf: 0.0,
            solver_iterations: 0,
            non_converged: 0,
            software_accuracy: None,
            crossbar_accuracy: None,
            stuck_cells: 0,
            repaired_columns: 0,
            corrected_cells: 0,
            degraded_tiles: 0,
            max_fault_score: 0.0,
            surrogate: None,
            surrogate_accuracy: None,
        }
    }

    fn slot(seed: u64) -> Arc<ModelSlot> {
        Arc::new(ModelSlot::new(
            TierModels::exact_only(tiny_model(seed)),
            meta_for("lifecycle-test"),
        ))
    }

    fn drifting_cfg() -> LifecycleConfig {
        LifecycleConfig {
            tau_fast: 10.0,
            tau_slow: 1e5,
            test_hooks: true,
            ..LifecycleConfig::default()
        }
    }

    #[test]
    fn publish_exact_bumps_version_and_swaps_weights() {
        let slot = slot(5);
        assert_eq!(slot.version(), 1);
        let replacement = tiny_model(99);
        let v = slot.publish_exact(replacement);
        assert_eq!(v, 2);
        let (v2, _models) = slot.snapshot();
        assert_eq!(v2, 2);
    }

    #[test]
    fn publish_bundle_rejects_incompatible_shapes() {
        let slot = slot(5);
        let mut bad_meta = meta_for("wrong-classes");
        bad_meta.num_classes = CLASSES + 1;
        let err = slot
            .publish_bundle(TierModels::exact_only(tiny_model(6)), bad_meta)
            .unwrap_err();
        assert!(err.contains("class count mismatch"), "{err}");
        let mut bad_shape = meta_for("wrong-shape");
        bad_shape.input_shape = vec![3, 8, 8];
        let err = slot
            .publish_bundle(TierModels::exact_only(tiny_model(6)), bad_shape)
            .unwrap_err();
        assert!(err.contains("input shape mismatch"), "{err}");
        assert_eq!(slot.version(), 1, "failed publishes must not bump");
    }

    #[test]
    fn pristine_sweep_is_rung_zero_and_perfectly_accurate() {
        let slot = slot(7);
        let ctl = DriftController::new(drifting_cfg(), Arc::clone(&slot)).unwrap();
        let report = ctl.sweep();
        assert_eq!(report.rung, 0);
        assert_eq!(report.pre_accuracy, 1.0);
        assert_eq!(report.post_accuracy, 1.0);
        let status = ctl.status();
        assert_eq!(status.sweeps, 1);
        assert!(status.last_sweep_unix_s.is_some());
    }

    #[test]
    fn heavy_drift_triggers_mitigation_and_recovers_probe_accuracy() {
        let slot = slot(7);
        let cfg = drifting_cfg();
        let ctl = DriftController::new(cfg, Arc::clone(&slot)).unwrap();
        // Far past the slowest time constant: conductances have collapsed
        // toward G_off and the probe answers degenerate.
        let (elapsed, mean_decay) = ctl.advance_time(1e7);
        assert_eq!(elapsed, 1e7);
        assert!(mean_decay > 0.5);
        let before = slot.version();
        let report = ctl.sweep();
        assert!(
            report.rung >= 1,
            "decay {mean_decay} must climb the ladder, got rung {}",
            report.rung
        );
        assert!(
            report.post_accuracy >= report.pre_accuracy,
            "mitigation must not lose probe accuracy: {} -> {}",
            report.pre_accuracy,
            report.post_accuracy
        );
        assert_eq!(report.post_accuracy, 1.0, "refresh restores the answers");
        assert!(slot.version() > before, "sweep must republish");
    }

    #[test]
    fn reload_in_place_reprograms_and_resets_status() {
        let slot = slot(3);
        let ctl = DriftController::new(drifting_cfg(), Arc::clone(&slot)).unwrap();
        ctl.advance_time(1e7);
        let (version, label) = ctl.reload(None).unwrap();
        assert!(version > 1);
        assert_eq!(label, "lifecycle-test");
        let status = ctl.status();
        assert_eq!(status.rung, 0);
        assert_eq!(status.mean_decay, 0.0);
        // The drift clock keeps running from `elapsed`; the devices are
        // simply rewritten, so immediately after reload nothing has decayed.
        let report = ctl.sweep();
        assert_eq!(report.pre_accuracy, 1.0);
    }

    #[test]
    fn probe_inputs_are_deterministic_and_in_range() {
        let a = probe_inputs(4, &INPUT_SHAPE, 42);
        let b = probe_inputs(4, &INPUT_SHAPE, 42);
        assert_eq!(a, b);
        let c = probe_inputs(4, &INPUT_SHAPE, 43);
        assert_ne!(a, c);
        for probe in &a {
            assert_eq!(probe.len(), 64);
            assert!(probe.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }
}
