//! End-to-end server tests: map a tiny model to crossbars, persist it as
//! an `XBARMDL1` artifact, serve it, and drive it over real sockets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use xbar_core::pipeline::{map_to_crossbars, MapConfig};
use xbar_core::{load_artifact_from_file, save_artifact_to_file, ArtifactBundle, ArtifactMeta};
use xbar_nn::arch::{build_from_spec, LayerSpec};
use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
use xbar_nn::{Layer, Mode, Sequential};
use xbar_obs::json::Json;
use xbar_serve::{Client, LifecycleConfig, ServeConfig, Server, Tier, TierModels};
use xbar_sim::params::CrossbarParams;
use xbar_tensor::Tensor;

const INPUT_SHAPE: [usize; 3] = [1, 8, 8];
const CLASSES: usize = 4;

fn tiny_model() -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, 1)),
        Layer::ReLU(ReLU::new()),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(8 * 4 * 4, CLASSES, 2)),
    ])
}

/// Maps the tiny model and returns (mapped model, meta) via a real
/// artifact file round-trip, exactly like production serving.
fn mapped_via_artifact(tag: &str) -> (Sequential, ArtifactMeta) {
    let model = tiny_model();
    let mut params = CrossbarParams::with_size(16);
    params.sigma_variation = 0.0;
    let cfg = MapConfig {
        params,
        ..Default::default()
    };
    let (mut noisy, report) = map_to_crossbars(&model, &cfg).expect("mapping succeeds");
    let mut meta = ArtifactMeta::from_mapping("e2e tiny model", &cfg, &report);
    meta.input_shape = INPUT_SHAPE.to_vec();
    let dir = std::env::temp_dir().join(format!("xbar_serve_e2e_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.xbarmdl");
    save_artifact_to_file(&mut noisy, &meta, &path).expect("save artifact");
    let loaded = load_artifact_from_file(&path).expect("load artifact");
    std::fs::remove_dir_all(&dir).ok();
    loaded
}

fn image(seed: usize) -> Vec<f32> {
    (0..INPUT_SHAPE.iter().product::<usize>())
        .map(|i| ((i * 31 + seed * 7) % 13) as f32 / 13.0 - 0.5)
        .collect()
}

fn image_json(seed: usize) -> String {
    let values: Vec<String> = image(seed).iter().map(|v| format!("{v}")).collect();
    format!("{{\"image\":[{}]}}", values.join(","))
}

fn start_server(cfg: ServeConfig) -> (Server, String) {
    let (model, meta) = mapped_via_artifact("shared");
    let server = Server::start(model, meta, cfg).expect("server starts");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(20)).expect("client connects")
}

#[test]
fn classify_healthz_metrics_and_graceful_shutdown() {
    let (server, addr) = start_server(ServeConfig::default());
    let mut client = connect(&addr);

    // healthz
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200, "{}", health.text());
    let health_json = Json::parse(&health.text()).expect("healthz is JSON");
    assert_eq!(health_json.get("status").and_then(Json::as_str), Some("ok"));

    // model summary
    let model_info = client.get("/v1/model").expect("model");
    assert_eq!(model_info.status, 200);
    let info = Json::parse(&model_info.text()).expect("model JSON");
    assert_eq!(
        info.get("label").and_then(Json::as_str),
        Some("e2e tiny model")
    );

    // classify (JSON array form) matches a local forward pass.
    let response = client
        .post_json("/v1/classify", &image_json(3))
        .expect("classify");
    assert_eq!(response.status, 200, "{}", response.text());
    let body = Json::parse(&response.text()).expect("classify JSON");
    let served_class = body.get("class").and_then(Json::as_u64).expect("class");
    let scores = body.get("scores").and_then(Json::as_arr).expect("scores");
    assert_eq!(scores.len(), CLASSES);
    let (mut local_model, _) = mapped_via_artifact("local");
    let x = Tensor::from_vec(image(3), &[1, 1, 8, 8]).unwrap();
    let logits = local_model.forward(&x, Mode::Eval).unwrap();
    let expected_class = logits
        .as_slice()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i as u64)
        .unwrap();
    assert_eq!(served_class, expected_class);
    assert!(body.get("model").and_then(|m| m.get("mean_nf")).is_some());

    // classify (base64 form) gives the same class.
    let b64_body = format!(
        "{{\"image_b64\":\"{}\"}}",
        xbar_serve::base64::encode_f32(&image(3))
    );
    let b64_response = client.post_json("/v1/classify", &b64_body).expect("b64");
    assert_eq!(b64_response.status, 200, "{}", b64_response.text());
    let b64_json = Json::parse(&b64_response.text()).unwrap();
    assert_eq!(
        b64_json.get("class").and_then(Json::as_u64),
        Some(expected_class)
    );

    // bad input: wrong length
    let bad = client
        .post_json("/v1/classify", "{\"image\":[1,2,3]}")
        .expect("bad classify");
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("expects"), "{}", bad.text());

    // unknown route
    let missing = client.get("/nope").expect("404");
    assert_eq!(missing.status, 404);

    // metrics expose the request counters and the batch-size histogram.
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("serve_classify_ok"), "{text}");
    assert!(text.contains("serve_http_requests"), "{text}");
    assert!(text.contains("serve_batch_size_bucket"), "{text}");

    // graceful shutdown via the admin endpoint.
    let stop = client.post_json("/admin/shutdown", "{}").expect("shutdown");
    assert_eq!(stop.status, 200);
    server.run_until_shutdown();
}

#[test]
fn concurrent_clients_share_batches_and_agree_with_serial_answers() {
    let (server, addr) = start_server(ServeConfig {
        max_batch: 8,
        batch_deadline: Duration::from_millis(20),
        ..ServeConfig::default()
    });

    // Serial ground truth over one connection.
    let mut serial = connect(&addr);
    let mut expected = Vec::new();
    for seed in 0..12 {
        let response = serial
            .post_json("/v1/classify", &image_json(seed))
            .expect("serial classify");
        assert_eq!(response.status, 200);
        let json = Json::parse(&response.text()).unwrap();
        expected.push(json.get("class").and_then(Json::as_u64).unwrap());
    }

    // 12 concurrent clients, one request each, all in the same flush window.
    let addr = Arc::new(addr);
    let handles: Vec<_> = (0..12)
        .map(|seed| {
            let addr = Arc::clone(&addr);
            thread::spawn(move || {
                let mut client = connect(&addr);
                let response = client
                    .post_json("/v1/classify", &image_json(seed))
                    .expect("concurrent classify");
                assert_eq!(response.status, 200, "{}", response.text());
                let json = Json::parse(&response.text()).unwrap();
                (
                    json.get("class").and_then(Json::as_u64).unwrap(),
                    json.get("batch_size").and_then(Json::as_u64).unwrap(),
                )
            })
        })
        .collect();
    let mut saw_shared_batch = false;
    for (seed, handle) in handles.into_iter().enumerate() {
        let (class, batch_size) = handle.join().expect("client thread");
        assert_eq!(
            class, expected[seed],
            "request {seed}: batched answer must match serial answer"
        );
        saw_shared_batch |= batch_size > 1;
    }
    // With a 20ms flush window and 12 simultaneous clients, at least one
    // batch must have carried more than one request.
    assert!(saw_shared_batch, "micro-batching never aggregated requests");
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn faulted_repaired_model_serves_degraded_but_alive() {
    // Map with stuck-device faults and repair enabled, with a fault
    // threshold so strict that some tiles stay flagged after repair: the
    // server must report degraded health (HTTP 200, not an error) while
    // continuing to answer classify requests.
    let model = tiny_model();
    let mut params = CrossbarParams::with_size(16);
    params.sigma_variation = 0.0;
    params.faults = xbar_sim::FaultModel {
        stuck_at_gmin: 0.02,
        stuck_at_gmax: 0.01,
    };
    let cfg = MapConfig {
        params,
        // No digital correction and a near-zero threshold: residual faults
        // the spares cannot cover must flag tiles as degraded.
        repair: Some(xbar_core::RepairConfig {
            tile_fault_threshold: 1e-9,
            digital_correction: false,
            ..xbar_core::RepairConfig::default()
        }),
        ..Default::default()
    };
    let (mut noisy, report) = map_to_crossbars(&model, &cfg).expect("faulted mapping succeeds");
    assert!(report.stuck_cells() > 0, "3% faults must hit some devices");
    let mut meta = ArtifactMeta::from_mapping("e2e faulted model", &cfg, &report);
    meta.input_shape = INPUT_SHAPE.to_vec();
    assert!(meta.is_degraded(), "threshold 1e-9 must flag tiles");

    // Full artifact round-trip, like production.
    let dir = std::env::temp_dir().join(format!("xbar_serve_e2e_{}_faulted", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.xbarmdl");
    save_artifact_to_file(&mut noisy, &meta, &path).expect("save artifact");
    let (model, meta) = load_artifact_from_file(&path).expect("load artifact");
    std::fs::remove_dir_all(&dir).ok();
    assert!(meta.is_degraded(), "degradation must survive the artifact");

    let server = Server::start(model, meta, ServeConfig::default()).expect("server starts");
    let addr = server.local_addr().to_string();
    let mut client = connect(&addr);

    // Degraded, not dead: 200 with status "degraded" and fault counts.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200, "{}", health.text());
    let health_json = Json::parse(&health.text()).expect("healthz is JSON");
    assert_eq!(
        health_json.get("status").and_then(Json::as_str),
        Some("degraded"),
        "{}",
        health.text()
    );
    assert!(
        health_json
            .get("degraded_tiles")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "{}",
        health.text()
    );
    assert!(
        health_json
            .get("stuck_cells")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "{}",
        health.text()
    );

    // The model summary exposes the fault/repair provenance.
    let info = client.get("/v1/model").expect("model");
    let info_json = Json::parse(&info.text()).expect("model JSON");
    assert!(
        info_json
            .get("degraded_tiles")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "{}",
        info.text()
    );

    // Classification still works.
    let response = client
        .post_json("/v1/classify", &image_json(5))
        .expect("classify on degraded server");
    assert_eq!(response.status, 200, "{}", response.text());
    let body = Json::parse(&response.text()).expect("classify JSON");
    assert!(body.get("class").and_then(Json::as_u64).is_some());

    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn sampled_classify_requests_carry_joinable_trace_ids() {
    let (server, addr) = start_server(ServeConfig {
        trace_sample: 1, // trace every classify request
        ..ServeConfig::default()
    });
    let ring = server.trace_ring();
    let mut client = connect(&addr);

    let mut ids = Vec::new();
    for seed in 0..3 {
        let response = client
            .post_json("/v1/classify", &image_json(seed))
            .expect("classify");
        assert_eq!(response.status, 200, "{}", response.text());
        let body = Json::parse(&response.text()).expect("classify JSON");
        let id_text = body
            .get("trace_id")
            .and_then(Json::as_str)
            .expect("sampled response carries trace_id")
            .to_string();
        let id = xbar_obs::TraceId::parse(&id_text).expect("well-formed trace id");
        ids.push(id);
    }

    // Every ID is in the ring with the full stage breakdown.
    for id in &ids {
        let trace = ring.find(*id).expect("trace id found in ring");
        assert_eq!(trace.endpoint, "classify");
        let stages: Vec<&str> = trace.stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec!["queue", "batch", "solve", "respond"],
            "stage breakdown for {id}"
        );
        assert!(trace.total_us > 0, "total time recorded");
    }

    // The spans emitted into the global buffer join on the same IDs.
    // (`Watch` is per-thread; these spans come from HTTP worker threads,
    // so read the global buffer and join on the unique trace IDs.)
    let spans = xbar_obs::trace::all_spans();
    for id in &ids {
        let hex = id.to_string();
        let tagged: Vec<&str> = spans
            .iter()
            .filter(|s| {
                s.fields.iter().any(|(k, v)| {
                    *k == "trace_id" && matches!(v, xbar_obs::FieldValue::Str(h) if *h == hex)
                })
            })
            .map(|s| s.name)
            .collect();
        for stage in ["queue", "batch", "solve", "respond", "request"] {
            assert!(
                tagged.contains(&stage),
                "span {stage:?} missing for trace {id}: got {tagged:?}"
            );
        }
    }

    // /metrics is valid Prometheus text and includes the per-endpoint
    // latency histogram plus the sampling counter.
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    let samples = xbar_obs::metrics::parse_prometheus_text(&text).expect("exposition parses");
    assert!(!samples.is_empty());
    assert!(text.contains("serve_request_us_classify_bucket"), "{text}");
    assert!(text.contains("serve_trace_sampled"), "{text}");

    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn full_batch_queue_is_backpressure_not_an_error() {
    // One inference replica, tiny queue, long deadline: the queue fills,
    // and the auto-sized admission limit (queue + replica capacity = 2)
    // sheds the overflow with 429 before it even reaches the queue.
    let (server, addr) = start_server(ServeConfig {
        replicas: 1,
        max_batch: 1,
        batch_deadline: Duration::from_millis(200),
        queue_cap: 1,
        request_timeout: Duration::from_secs(20),
        ..ServeConfig::default()
    });
    let addr = Arc::new(addr);
    let handles: Vec<_> = (0..8)
        .map(|seed| {
            let addr = Arc::clone(&addr);
            thread::spawn(move || {
                let mut client = connect(&addr);
                client
                    .post_json("/v1/classify", &image_json(seed))
                    .expect("classify under pressure")
                    .status
            })
        })
        .collect();
    let statuses: Vec<u16> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    assert!(
        statuses.iter().all(|s| *s == 200 || *s == 503 || *s == 429),
        "only success, backpressure, or admission shed allowed, got {statuses:?}"
    );
    assert!(
        statuses.contains(&200),
        "some requests must still get through: {statuses:?}"
    );
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

/// Builds a full fidelity-tier bundle around the tiny model: `W'` from a
/// real mapping, the software weights as the ideal tier, a perturbed copy
/// as the surrogate-folded tier, and an embedded surrogate net matching
/// the mapped tile shape.
fn tiered_bundle_via_artifact(tag: &str) -> ArtifactBundle {
    let software = tiny_model();
    let mut params = CrossbarParams::with_size(16);
    params.sigma_variation = 0.0;
    let cfg = MapConfig {
        params,
        ..Default::default()
    };
    let (noisy, report) = map_to_crossbars(&software, &cfg).expect("mapping succeeds");
    let mut meta = ArtifactMeta::from_mapping("e2e tiered model", &cfg, &report);
    meta.input_shape = INPUT_SHAPE.to_vec();
    let in_dim = xbar_core::artifact::surrogate_input_dim(16, 16);
    let arch = vec![
        LayerSpec::Linear {
            in_f: in_dim,
            out_f: 8,
        },
        LayerSpec::ReLU,
        LayerSpec::Linear { in_f: 8, out_f: 16 },
    ];
    meta.surrogate = Some(xbar_core::SurrogateMeta {
        rows: 16,
        cols: 16,
        g_min: 1e-6,
        g_max: 1e-5,
        v_read: 0.25,
        val_max_err: 0.031,
        val_rms_err: 0.004,
        train_pairs: 256,
        seed: 17,
        arch: arch.clone(),
    });
    let mut bundle = ArtifactBundle {
        model: noisy.clone(),
        meta,
        ideal_model: Some(software),
        surrogate_model: Some(noisy),
        surrogate_net: Some(build_from_spec(&arch)),
    };
    let dir = std::env::temp_dir().join(format!("xbar_serve_e2e_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.xbarmdl");
    xbar_core::save_artifact_bundle_to_file(&mut bundle, &path).expect("save bundle");
    let loaded = xbar_core::load_artifact_bundle_from_file(&path).expect("load bundle");
    std::fs::remove_dir_all(&dir).ok();
    loaded
}

#[test]
fn fidelity_tiers_select_weight_sets_and_reject_bad_requests() {
    let bundle = tiered_bundle_via_artifact("tiers");
    let (models, meta) = TierModels::from_bundle(bundle);
    let server = Server::start_tiered(models, meta, ServeConfig::default()).expect("server starts");
    let addr = server.local_addr().to_string();
    let mut client = connect(&addr);

    // /v1/model reports the tier inventory and the surrogate's recorded
    // validation error.
    let info = client.get("/v1/model").expect("model");
    assert_eq!(info.status, 200);
    let info_json = Json::parse(&info.text()).expect("model JSON");
    assert_eq!(
        info_json.get("fidelity_tier").and_then(Json::as_str),
        Some("exact"),
        "{}",
        info.text()
    );
    let tiers: Vec<&str> = info_json
        .get("available_tiers")
        .and_then(Json::as_arr)
        .expect("available_tiers")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert_eq!(
        tiers,
        vec!["exact", "surrogate", "ideal"],
        "{}",
        info.text()
    );
    assert_eq!(
        info_json
            .get("surrogate_val_max_err")
            .and_then(Json::as_f64),
        Some(0.031),
        "{}",
        info.text()
    );

    // The ideal tier answers with the software model's class.
    let mut software = tiny_model();
    let x = Tensor::from_vec(image(3), &[1, 1, 8, 8]).unwrap();
    let logits = software.forward(&x, Mode::Eval).unwrap();
    let software_class = logits
        .as_slice()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i as u64)
        .unwrap();
    let ideal = client
        .post_json(
            "/v1/classify",
            &image_json(3).replacen('{', "{\"tier\":\"ideal\",", 1),
        )
        .expect("ideal classify");
    assert_eq!(ideal.status, 200, "{}", ideal.text());
    let ideal_json = Json::parse(&ideal.text()).unwrap();
    assert_eq!(ideal_json.get("tier").and_then(Json::as_str), Some("ideal"));
    assert_eq!(
        ideal_json.get("class").and_then(Json::as_u64),
        Some(software_class),
        "ideal tier must serve the software weights: {}",
        ideal.text()
    );

    // Default (no "tier" field) runs exact; the surrogate tier answers too.
    let exact = client
        .post_json("/v1/classify", &image_json(3))
        .expect("exact classify");
    assert_eq!(exact.status, 200, "{}", exact.text());
    let exact_json = Json::parse(&exact.text()).unwrap();
    assert_eq!(exact_json.get("tier").and_then(Json::as_str), Some("exact"));
    let surrogate = client
        .post_json(
            "/v1/classify",
            &image_json(3).replacen('{', "{\"tier\":\"surrogate\",", 1),
        )
        .expect("surrogate classify");
    assert_eq!(surrogate.status, 200, "{}", surrogate.text());

    // Unknown tier name: 400 naming the valid tiers.
    let bad = client
        .post_json(
            "/v1/classify",
            &image_json(3).replacen('{', "{\"tier\":\"turbo\",", 1),
        )
        .expect("bad tier");
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("valid tiers"), "{}", bad.text());

    // Per-tier counters moved for every tier exercised.
    let metrics = client.get("/metrics").expect("metrics");
    let text = metrics.text();
    for tier in ["exact", "surrogate", "ideal"] {
        assert!(
            text.contains(&format!("serve_classify_tier_{tier}")),
            "missing per-tier counter for {tier}: {text}"
        );
        assert!(
            text.contains(&format!("serve_classify_tier_us_{tier}")),
            "missing per-tier latency for {tier}: {text}"
        );
    }
    assert!(text.contains("serve_fidelity_tier"), "{text}");
    assert!(text.contains("serve_surrogate_val_max_err"), "{text}");

    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn requesting_a_tier_the_artifact_lacks_is_a_descriptive_conflict() {
    // A legacy exact-only artifact: surrogate and ideal must be refused
    // with 409 and a message naming what *is* available — never silently
    // served from the wrong weights.
    let (server, addr) = start_server(ServeConfig::default());
    let mut client = connect(&addr);
    for tier in ["surrogate", "ideal"] {
        let resp = client
            .post_json(
                "/v1/classify",
                &image_json(1).replacen('{', &format!("{{\"tier\":\"{tier}\","), 1),
            )
            .expect("classify");
        assert_eq!(resp.status, 409, "{tier}: {}", resp.text());
        assert!(
            resp.text().contains("available: exact"),
            "{tier}: {}",
            resp.text()
        );
    }
    // The default tier still works on the same connection.
    let ok = client
        .post_json("/v1/classify", &image_json(1))
        .expect("classify");
    assert_eq!(ok.status, 200, "{}", ok.text());
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

/// Saves the tiny model as an artifact under `label` and returns the
/// directory (caller removes it) plus the file path. Unlike
/// `mapped_via_artifact`, the file stays on disk so the running server can
/// load it through `POST /admin/reload`.
fn saved_artifact(tag: &str, label: &str) -> (std::path::PathBuf, String) {
    let model = tiny_model();
    let mut params = CrossbarParams::with_size(16);
    params.sigma_variation = 0.0;
    let cfg = MapConfig {
        params,
        ..Default::default()
    };
    let (mut noisy, report) = map_to_crossbars(&model, &cfg).expect("mapping succeeds");
    let mut meta = ArtifactMeta::from_mapping(label, &cfg, &report);
    meta.input_shape = INPUT_SHAPE.to_vec();
    let dir = std::env::temp_dir().join(format!("xbar_serve_e2e_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.xbarmdl");
    save_artifact_to_file(&mut noisy, &meta, &path).expect("save artifact");
    (dir, path.to_string_lossy().into_owned())
}

#[test]
fn admin_reload_hot_swaps_without_dropping_in_flight_requests() {
    let (server, addr) = start_server(ServeConfig::default());
    let (dir, artifact_path) = saved_artifact("reload_target", "e2e reload target");

    // Sustained classify traffic across 4 connections while the artifact
    // is swapped underneath them: every single request must succeed —
    // in-flight batches finish on the old weights, new ones pick up the
    // published version.
    let stop = Arc::new(AtomicBool::new(false));
    let addr = Arc::new(addr);
    let workers: Vec<_> = (0..4)
        .map(|seed| {
            let addr = Arc::clone(&addr);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = connect(&addr);
                let mut okay = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let resp = client
                        .post_json("/v1/classify", &image_json(seed))
                        .expect("classify during reload");
                    assert_eq!(
                        resp.status,
                        200,
                        "in-flight classify must never fail during a hot swap: {}",
                        resp.text()
                    );
                    okay += 1;
                }
                okay
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(100));
    let mut admin = connect(&addr);
    // Swap repeatedly while traffic flows — each reload bumps the version.
    for round in 0..3 {
        let resp = admin
            .post_json(
                "/admin/reload",
                &format!("{{\"artifact\":\"{artifact_path}\"}}"),
            )
            .expect("reload");
        assert_eq!(resp.status, 200, "round {round}: {}", resp.text());
        let body = Json::parse(&resp.text()).unwrap();
        assert_eq!(
            body.get("status").and_then(Json::as_str),
            Some("reloaded"),
            "{}",
            resp.text()
        );
        thread::sleep(Duration::from_millis(50));
    }

    // The served model identity switched and the slot version advanced.
    let info = admin.get("/v1/model").expect("model");
    let info_json = Json::parse(&info.text()).expect("model JSON");
    assert_eq!(
        info_json.get("label").and_then(Json::as_str),
        Some("e2e reload target"),
        "{}",
        info.text()
    );
    assert!(
        info_json
            .get("model_version")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 4,
        "three reloads must leave version >= 4: {}",
        info.text()
    );

    thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    let total: u64 = workers
        .into_iter()
        .map(|h| h.join().expect("traffic thread"))
        .sum();
    assert!(total > 0, "traffic threads must have classified something");

    // Without test hooks the drift fast-forward endpoint does not exist.
    let hidden = admin
        .post_json("/admin/advance-time", "{\"seconds\":1}")
        .expect("advance-time");
    assert_eq!(hidden.status, 404, "{}", hidden.text());

    // Reload counter is visible on /metrics.
    let metrics = admin.get("/metrics").expect("metrics");
    assert!(
        metrics.text().contains("serve_reloads"),
        "{}",
        metrics.text()
    );

    std::fs::remove_dir_all(&dir).ok();
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn drift_lifecycle_fast_forward_sweeps_and_climbs_the_mitigation_ladder() {
    // Short retention taus so a simulated 1e7 s horizon decays the mapped
    // conductances essentially completely; test hooks expose the clock.
    let (server, addr) = start_server(ServeConfig {
        lifecycle: LifecycleConfig {
            test_hooks: true,
            tau_fast: 10.0,
            tau_slow: 1e5,
            ..LifecycleConfig::default()
        },
        ..ServeConfig::default()
    });
    let mut client = connect(&addr);

    // Pristine state: drift fields present, nothing swept yet.
    let health = client.get("/healthz").expect("healthz");
    let health_json = Json::parse(&health.text()).expect("healthz JSON");
    assert_eq!(
        health_json.get("health_sweeps").and_then(Json::as_u64),
        Some(0),
        "{}",
        health.text()
    );
    assert_eq!(
        health_json.get("probe_accuracy").and_then(Json::as_f64),
        Some(1.0),
        "{}",
        health.text()
    );
    assert_eq!(
        health_json.get("mitigation_rung").and_then(Json::as_u64),
        Some(0),
        "{}",
        health.text()
    );

    // Fast-forward far past tau_slow and run one synchronous sweep: the
    // probe accuracy collapse must trigger a mitigation rung, and the
    // mitigation must restore the probe set.
    let resp = client
        .post_json("/admin/advance-time", "{\"seconds\":1e7,\"sweep\":true}")
        .expect("advance-time");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = Json::parse(&resp.text()).expect("advance JSON");
    assert!(
        body.get("drift_mean_decay")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.9,
        "1e7 s against tau_slow 1e5 must decay nearly everything: {}",
        resp.text()
    );
    let sweep = body.get("sweep").expect("synchronous sweep report");
    let rung = sweep.get("rung").and_then(Json::as_u64).expect("rung");
    let pre = sweep
        .get("pre_accuracy")
        .and_then(Json::as_f64)
        .expect("pre_accuracy");
    let post = sweep
        .get("post_accuracy")
        .and_then(Json::as_f64)
        .expect("post_accuracy");
    assert!(
        rung >= 1,
        "collapsed probes must trigger mitigation: {}",
        resp.text()
    );
    assert!(
        post >= pre && (post - 1.0).abs() < 1e-9,
        "mitigation must restore the probe set (pre {pre}, post {post}): {}",
        resp.text()
    );

    // The sweep and its outcome are visible on /healthz and /v1/model.
    let health = client.get("/healthz").expect("healthz after sweep");
    let health_json = Json::parse(&health.text()).unwrap();
    assert_eq!(
        health_json.get("health_sweeps").and_then(Json::as_u64),
        Some(1),
        "{}",
        health.text()
    );
    assert!(
        health_json
            .get("last_sweep_unix_s")
            .and_then(Json::as_u64)
            .is_some(),
        "{}",
        health.text()
    );
    assert_eq!(
        health_json.get("mitigation_rung").and_then(Json::as_u64),
        Some(rung),
        "{}",
        health.text()
    );
    let info = client.get("/v1/model").expect("model");
    let info_json = Json::parse(&info.text()).unwrap();
    assert!(
        info_json
            .get("probe_accuracy")
            .and_then(Json::as_f64)
            .is_some(),
        "{}",
        info.text()
    );

    // Drift metrics landed in the registry.
    let metrics = client.get("/metrics").expect("metrics");
    let text = metrics.text();
    for name in [
        "serve_health_sweeps",
        "serve_drift_elapsed_s",
        "serve_drift_mean_decay",
        "serve_probe_accuracy",
        "serve_mitigation_rung",
    ] {
        assert!(text.contains(name), "missing {name}: {text}");
    }

    // Classification still answers after the mitigation republished.
    let ok = client
        .post_json("/v1/classify", &image_json(2))
        .expect("classify after mitigation");
    assert_eq!(ok.status, 200, "{}", ok.text());

    // A manual in-place reload (rung 3 by hand) resets the ladder.
    let reload = client.post_json("/admin/reload", "").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.text());
    let health = client.get("/healthz").expect("healthz after reload");
    let health_json = Json::parse(&health.text()).unwrap();
    assert_eq!(
        health_json.get("mitigation_rung").and_then(Json::as_u64),
        Some(0),
        "{}",
        health.text()
    );
    assert_eq!(
        health_json.get("probe_accuracy").and_then(Json::as_f64),
        Some(1.0),
        "{}",
        health.text()
    );

    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn backpressure_503_carries_a_retry_after_hint() {
    // One worker, queue of one, a large batch target and a long flush
    // deadline: the first request parks in the queue for the whole window,
    // so a second connection's request must be refused with 503 and the
    // Retry-After hint the retrying client honours.
    let (server, addr) = start_server(ServeConfig {
        replicas: 1,
        max_batch: 64,
        batch_deadline: Duration::from_millis(500),
        queue_cap: 1,
        request_timeout: Duration::from_secs(20),
        ..ServeConfig::default()
    });
    let first_addr = addr.clone();
    let first = thread::spawn(move || {
        let mut client = connect(&first_addr);
        client
            .post_json("/v1/classify", &image_json(0))
            .expect("queued classify")
            .status
    });
    // Let the first request land in the batch queue, then overflow it.
    thread::sleep(Duration::from_millis(150));
    let mut client = connect(&addr);
    let refused = client
        .post_json("/v1/classify", &image_json(1))
        .expect("refused classify");
    assert_eq!(refused.status, 503, "{}", refused.text());
    assert_eq!(
        refused.retry_after,
        Some(1),
        "backpressure must carry a Retry-After hint: {}",
        refused.text()
    );
    assert_eq!(first.join().expect("first client"), 200);
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

/// Parses a counter's value out of the Prometheus exposition text.
fn counter_value(metrics_text: &str, name: &str) -> f64 {
    metrics_text
        .lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .unwrap_or(0.0)
}

/// Extracts the softmax scores from a classify response body.
fn scores_of(body: &str) -> Vec<f64> {
    Json::parse(body)
        .expect("classify JSON")
        .get("scores")
        .and_then(Json::as_arr)
        .expect("scores array")
        .iter()
        .map(|v| v.as_f64().expect("score is a number"))
        .collect()
}

#[test]
fn saturated_admission_sheds_429_but_health_and_inflight_requests_survive() {
    // One replica collecting a 64-wide batch for 400 ms with an admission
    // limit of one: the first classify parks in flight for the whole
    // window. During it, health endpoints must keep answering 200 and a
    // second classify must be shed with 429 + Retry-After — and the
    // parked request must still complete, bit-identical to an
    // unsaturated run of the same image.
    let (server, addr) = start_server(ServeConfig {
        replicas: 1,
        max_batch: 64,
        batch_deadline: Duration::from_millis(400),
        queue_cap: 1,
        admission_limit: 1,
        request_timeout: Duration::from_secs(20),
        ..ServeConfig::default()
    });
    let parked_addr = addr.clone();
    let parked = thread::spawn(move || {
        let mut client = connect(&parked_addr);
        let resp = client
            .post_json("/v1/classify", &image_json(2))
            .expect("parked classify");
        (resp.status, resp.text())
    });
    // Let the first request get admitted and parked in the flush window.
    thread::sleep(Duration::from_millis(150));
    let mut client = connect(&addr);

    // Health, model, and metrics ride the event loop's fast path: they
    // are never subject to admission control or the batch queue.
    let health = client.get("/healthz").expect("healthz while saturated");
    assert_eq!(health.status, 200, "{}", health.text());
    let model_info = client.get("/v1/model").expect("model while saturated");
    assert_eq!(model_info.status, 200);
    let metrics = client.get("/metrics").expect("metrics while saturated");
    assert_eq!(metrics.status, 200);

    // A second classify is over the admission limit: shed, not queued.
    let shed = client
        .post_json("/v1/classify", &image_json(3))
        .expect("shed classify");
    assert_eq!(shed.status, 429, "{}", shed.text());
    assert_eq!(
        shed.retry_after,
        Some(1),
        "admission shed must carry a Retry-After hint: {}",
        shed.text()
    );
    assert!(shed.text().contains("admission limit"), "{}", shed.text());
    let metrics_text = client.get("/metrics").expect("metrics").text();
    assert!(
        counter_value(&metrics_text, "serve_admission_shed") >= 1.0,
        "shed counter must register: {metrics_text}"
    );

    // The parked request completes despite the shedding around it...
    let (parked_status, parked_body) = parked.join().expect("parked thread");
    assert_eq!(parked_status, 200, "{parked_body}");
    // ...and its answer is bit-identical to the same image classified on
    // the now-idle server (batching and admission never perturb scores).
    let idle = client
        .post_json("/v1/classify", &image_json(2))
        .expect("idle classify");
    assert_eq!(idle.status, 200, "{}", idle.text());
    assert_eq!(
        scores_of(&parked_body),
        scores_of(&idle.text()),
        "saturated and idle scores must match bit-for-bit"
    );
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn replica_pool_answers_bit_identically_to_a_single_instance() {
    const PROBES: usize = 6;

    // Ground truth: a single-replica server classifies each probe.
    let (single, single_addr) = start_server(ServeConfig {
        replicas: 1,
        ..ServeConfig::default()
    });
    let mut client = connect(&single_addr);
    let mut expected: Vec<Vec<f64>> = Vec::new();
    for seed in 0..PROBES {
        let resp = client
            .post_json("/v1/classify", &image_json(seed))
            .expect("single-replica classify");
        assert_eq!(resp.status, 200, "{}", resp.text());
        expected.push(scores_of(&resp.text()));
    }
    single
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    single.run_until_shutdown();

    // A 3-replica pool under concurrent load: every answer must be
    // bit-identical to the single instance, and every replica must have
    // done real work (per-replica request counters all advance).
    let (server, addr) = start_server(ServeConfig {
        replicas: 3,
        max_batch: 1, // one request per batch spreads work across replicas
        ..ServeConfig::default()
    });
    let addr = Arc::new(addr);
    let expected = Arc::new(expected);
    let mut all_replicas_active = false;
    for _round in 0..12 {
        let workers: Vec<_> = (0..12)
            .map(|worker| {
                let addr = Arc::clone(&addr);
                let expected = Arc::clone(&expected);
                thread::spawn(move || {
                    let mut client = connect(&addr);
                    for rep in 0..PROBES {
                        let seed = (worker + rep) % PROBES;
                        let resp = client
                            .post_json("/v1/classify", &image_json(seed))
                            .expect("replica-pool classify");
                        assert_eq!(resp.status, 200, "{}", resp.text());
                        assert_eq!(
                            scores_of(&resp.text()),
                            expected[seed],
                            "probe {seed} must match the single instance bit-for-bit"
                        );
                    }
                })
            })
            .collect();
        for handle in workers {
            handle.join().expect("worker thread");
        }
        let mut probe = connect(&addr);
        let text = probe.get("/metrics").expect("metrics").text();
        if (0..3).all(|r| counter_value(&text, &format!("serve_replica_requests_{r}")) > 0.0) {
            all_replicas_active = true;
            break;
        }
    }
    assert!(
        all_replicas_active,
        "all three replicas must serve work under sustained concurrent load"
    );
    server
        .shutdown_handle()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    server.run_until_shutdown();
}

#[test]
fn default_tier_must_exist_in_the_artifact() {
    let (model, meta) = mapped_via_artifact("default_tier");
    let result = Server::start_tiered(
        TierModels::exact_only(model),
        meta,
        ServeConfig {
            default_tier: Tier::Surrogate,
            ..ServeConfig::default()
        },
    );
    match result {
        Ok(_) => panic!("exact-only artifact cannot default to surrogate"),
        Err(err) => assert!(
            err.to_string().contains("available: exact"),
            "descriptive startup error: {err}"
        ),
    }
}
