//! Property-based tests for the linear-algebra kernels on randomized
//! diagonally-dominant systems (the class the crossbar solver produces).

use proptest::prelude::*;
use xbar_linalg::dense::{DenseMatrix, LuDecomposition};
use xbar_linalg::iterative::{conjugate_gradient, sor, IterOptions};
use xbar_linalg::norms::{inf_norm, max_abs_diff};
use xbar_linalg::sparse::CooBuilder;
use xbar_linalg::tridiagonal::solve_tridiagonal;

/// A random strictly diagonally dominant dense system.
fn dd_system() -> impl Strategy<Value = (DenseMatrix, Vec<f64>)> {
    (2usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0f64..1.0, n * n),
            proptest::collection::vec(-1.0f64..1.0, n),
        )
            .prop_map(move |(entries, rhs)| {
                let mut a = DenseMatrix::zeros(n, n);
                for i in 0..n {
                    let mut off = 0.0;
                    for j in 0..n {
                        if i != j {
                            let v = entries[i * n + j];
                            a.set(i, j, v);
                            off += v.abs();
                        }
                    }
                    a.set(i, i, off + 1.0);
                }
                (a, rhs)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lu_solve_has_small_residual((a, b) in dd_system()) {
        let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        prop_assert!(max_abs_diff(&ax, &b) < 1e-9 * inf_norm(&b).max(1.0));
    }

    #[test]
    fn lu_determinant_is_nonzero_for_dd((a, _) in dd_system()) {
        let det = LuDecomposition::new(&a).unwrap().determinant();
        prop_assert!(det.abs() > 0.0);
    }

    #[test]
    fn tridiagonal_matches_lu(
        n in 2usize..20,
        seed in 0u64..10_000,
    ) {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64) / 1000.0 + 0.05
        };
        let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { -rnd() }).collect();
        let sup: Vec<f64> = (0..n).map(|i| if i == n - 1 { 0.0 } else { -rnd() }).collect();
        let diag: Vec<f64> = (0..n).map(|i| sub[i].abs() + sup[i].abs() + 0.5 + rnd()).collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let fast = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        let mut dense = DenseMatrix::zeros(n, n);
        for i in 0..n {
            dense.set(i, i, diag[i]);
            if i > 0 {
                dense.set(i, i - 1, sub[i]);
            }
            if i + 1 < n {
                dense.set(i, i + 1, sup[i]);
            }
        }
        let exact = LuDecomposition::new(&dense).unwrap().solve(&rhs).unwrap();
        prop_assert!(max_abs_diff(&fast, &exact) < 1e-8);
    }

    #[test]
    fn sparse_solvers_agree_with_dense(
        n in 3usize..24,
        seed in 0u64..10_000,
    ) {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64) / 1000.0
        };
        let mut builder = CooBuilder::new(n);
        for i in 0..n {
            for d in 1..=2usize {
                let j = (i + d * 3) % n;
                if i < j {
                    builder.stamp_conductance(Some(i), Some(j), 0.1 + rnd());
                }
            }
            builder.stamp_conductance(Some(i), None, 0.3 + rnd());
        }
        let m = builder.build();
        prop_assert!(m.is_diagonally_dominant());
        let b: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let exact = LuDecomposition::new(&m.to_dense()).unwrap().solve(&b).unwrap();
        let via_sor = sor(&m, &b, None, &IterOptions::default()).unwrap();
        let via_cg = conjugate_gradient(&m, &b, &IterOptions::default()).unwrap();
        prop_assert!(max_abs_diff(&exact, &via_sor) < 1e-6);
        prop_assert!(max_abs_diff(&exact, &via_cg) < 1e-6);
    }

    #[test]
    fn csr_matvec_matches_dense_matvec(
        n in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f64 - 1000.0) / 500.0
        };
        let mut builder = CooBuilder::new(n);
        for i in 0..n {
            for j in 0..n {
                if (i + j) % 3 == 0 {
                    builder.add(i, j, rnd());
                }
            }
            builder.add(i, i, 1.0);
        }
        let m = builder.build();
        let x: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        prop_assert!(max_abs_diff(&sparse, &dense) < 1e-12);
    }
}
