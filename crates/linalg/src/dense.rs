//! Dense `f64` matrices and LU decomposition with partial pivoting.
//!
//! Used as the exact reference solver for small crossbar tiles (a `16×16`
//! tile has 512 circuit nodes) and to validate the iterative solvers on
//! random diagonally-dominant systems.

use crate::{Result, SolveError};

/// A dense, row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n_rows × n_cols` zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(SolveError::dim("rows of unequal length"));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            n_rows,
            n_cols,
            data,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Reads element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n_cols + c]
    }

    /// Writes element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] = v;
    }

    /// Adds `v` to element `(r, c)` — the natural operation when stamping
    /// conductances into a nodal-analysis matrix.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] += v;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] if `x.len() != n_cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n_cols {
            return Err(SolveError::dim(format!(
                "matvec: {} columns vs vector of {}",
                self.n_cols,
                x.len()
            )));
        }
        Ok((0..self.n_rows)
            .map(|i| {
                self.data[i * self.n_cols..(i + 1) * self.n_cols]
                    .iter()
                    .zip(x)
                    .map(|(&a, &b)| a * b)
                    .sum()
            })
            .collect())
    }

    /// Returns the row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// # Example
///
/// ```
/// use xbar_linalg::dense::{DenseMatrix, LuDecomposition};
/// # fn main() -> Result<(), xbar_linalg::SolveError> {
/// let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[1.0, 0.0]])?; // needs pivoting
/// let x = LuDecomposition::new(&a)?.solve(&[2.0, 3.0])?;
/// assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    n: usize,
    /// Combined L (below diagonal, unit diagonal implied) and U (on/above).
    lu: Vec<f64>,
    /// Row permutation applied to the right-hand side.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Pivots smaller than this magnitude are treated as singular.
    const SINGULAR_TOL: f64 = 1e-300;

    /// Factorises a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] for non-square input and
    /// [`SolveError::Singular`] if elimination encounters a zero pivot.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        if a.n_rows != a.n_cols {
            return Err(SolveError::dim("LU requires a square matrix"));
        }
        let n = a.n_rows;
        let mut lu = a.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < Self::SINGULAR_TOL {
                return Err(SolveError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    lu.swap(k * n + c, pivot_row * n + c);
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        lu[r * n + c] -= factor * lu[k * n + c];
                    }
                }
            }
        }
        Ok(Self {
            n,
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A·x = b` using the stored factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] if `b.len()` differs from the
    /// matrix dimension.
    #[allow(clippy::needless_range_loop)] // triangular solves index y[j<i]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(SolveError::dim(format!(
                "solve: matrix is {0}x{0} but rhs has {1} entries",
                self.n,
                b.len()
            )));
        }
        let n = self.n;
        // Forward substitution with permuted rhs (L has unit diagonal).
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * y[j];
            }
            y[i] = acc / self.lu[i * n + i];
        }
        Ok(y)
    }

    /// Determinant of the factorised matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.n {
            det *= self.lu[i * self.n + i];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    #[test]
    fn identity_solve_returns_rhs() {
        let lu = LuDecomposition::new(&DenseMatrix::eye(4)).unwrap();
        let b = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(lu.solve(&b).unwrap(), b.to_vec());
        assert!((lu.determinant() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn known_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = LuDecomposition::new(&a)
            .unwrap()
            .solve(&[3.0, 5.0])
            .unwrap();
        assert!(max_abs_diff(&x, &[0.8, 1.4]) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[7.0, 9.0]).unwrap();
        assert!(max_abs_diff(&x, &[9.0, 7.0]) < 1e-12);
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(SolveError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(SolveError::Dimension(_))
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let lu = LuDecomposition::new(&DenseMatrix::eye(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn determinant_of_triangular() {
        let a = DenseMatrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn residual_small_on_random_dd_system() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 40;
        let mut s = 77u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64 - 500.0) / 500.0
        };
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rnd();
                    a.set(i, j, v);
                    row_sum += v.abs();
                }
            }
            a.set(i, i, row_sum + 1.0);
        }
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(max_abs_diff(&ax, &b) < 1e-10);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_checks_length() {
        let a = DenseMatrix::eye(2);
        assert!(a.matvec(&[1.0]).is_err());
    }
}
