//! Compressed sparse row (CSR) matrices.
//!
//! The nodal matrix of an `R×C` crossbar has `2·R·C` unknowns but at most
//! four off-diagonal entries per row (wire neighbours plus the synapse
//! partner node), so CSR storage plus an iterative solver handles `64×64`
//! tiles (8192 unknowns) in milliseconds where a dense factorisation would
//! need half a gigabyte.

use crate::{Result, SolveError};
use std::collections::BTreeMap;

/// Triplet-based builder for a [`CsrMatrix`]; duplicate entries accumulate,
/// matching the "stamping" idiom of circuit nodal analysis.
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    n: usize,
    entries: BTreeMap<(usize, usize), f64>,
}

impl CooBuilder {
    /// Creates a builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: BTreeMap::new(),
        }
    }

    /// Adds `v` to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n && c < self.n, "entry ({r}, {c}) out of bounds");
        *self.entries.entry((r, c)).or_insert(0.0) += v;
    }

    /// Stamps a two-terminal conductance `g` between nodes `a` and `b`
    /// (`None` meaning ground), the fundamental nodal-analysis operation.
    pub fn stamp_conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        match (a, b) {
            (Some(a), Some(b)) => {
                self.add(a, a, g);
                self.add(b, b, g);
                self.add(a, b, -g);
                self.add(b, a, -g);
            }
            (Some(a), None) | (None, Some(a)) => self.add(a, a, g),
            (None, None) => {}
        }
    }

    /// Finalises into CSR form.
    pub fn build(self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.n + 1];
        for &(r, _) in self.entries.keys() {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = self.entries.len();
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        // BTreeMap iterates in (row, col) order, which is CSR order.
        for ((_, c), v) in self.entries {
            col_idx.push(c);
            values.push(v);
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A square sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (possibly zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns `(column_indices, values)` of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// The diagonal entry of row `r`, or `0.0` if absent.
    pub fn diagonal(&self, r: usize) -> f64 {
        let (cols, vals) = self.row(r);
        cols.iter()
            .zip(vals)
            .find(|(&c, _)| c == r)
            .map(|(_, &v)| v)
            .unwrap_or(0.0)
    }

    /// Sparse matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] if `x.len() != n`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(SolveError::dim(format!(
                "matvec: matrix is {}x{} but vector has {} entries",
                self.n,
                self.n,
                x.len()
            )));
        }
        Ok((0..self.n)
            .map(|r| {
                let (cols, vals) = self.row(r);
                cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum()
            })
            .collect())
    }

    /// Residual `b − A·x` (infinity norm).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] on length mismatch.
    pub fn residual_inf(&self, x: &[f64], b: &[f64]) -> Result<f64> {
        if b.len() != self.n {
            return Err(SolveError::dim("rhs length mismatch"));
        }
        let ax = self.matvec(x)?;
        Ok(ax
            .iter()
            .zip(b)
            .map(|(&a, &bb)| (bb - a).abs())
            .fold(0.0, f64::max))
    }

    /// Converts to a dense matrix (tests and small-tile exact solves only).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.n, self.n);
        for r in 0..self.n {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                d.add_at(r, c, v);
            }
        }
        d
    }

    /// Checks strict row diagonal dominance, a sufficient condition for
    /// Gauss–Seidel convergence. Crossbar nodal matrices with a sense/driver
    /// path on every node satisfy this.
    pub fn is_diagonally_dominant(&self) -> bool {
        (0..self.n).all(|r| {
            let (cols, vals) = self.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            diag >= off
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut b = CooBuilder::new(3);
        b.add(0, 0, 2.0);
        b.add(1, 1, 3.0);
        b.add(2, 2, 4.0);
        b.add(0, 1, -1.0);
        b.add(1, 0, -1.0);
        b.add(0, 1, 0.5); // duplicate accumulates
        b.build()
    }

    #[test]
    fn builder_accumulates_duplicates() {
        let m = sample();
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[2.0, -0.5]);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn diagonal_lookup() {
        let m = sample();
        assert_eq!(m.diagonal(0), 2.0);
        assert_eq!(m.diagonal(2), 4.0);
    }

    #[test]
    fn stamp_conductance_is_symmetric() {
        let mut b = CooBuilder::new(2);
        b.stamp_conductance(Some(0), Some(1), 5.0);
        b.stamp_conductance(Some(1), None, 2.0);
        let m = b.build();
        assert_eq!(m.diagonal(0), 5.0);
        assert_eq!(m.diagonal(1), 7.0);
        let (cols, vals) = m.row(0);
        assert_eq!((cols, vals), (&[0usize, 1][..], &[5.0, -5.0][..]));
        assert!(m.is_diagonally_dominant());
    }

    #[test]
    fn dominance_detects_violation() {
        let mut b = CooBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(0, 1, -5.0);
        b.add(1, 1, 1.0);
        assert!(!b.build().is_diagonally_dominant());
    }

    #[test]
    fn matvec_length_checked() {
        assert!(sample().matvec(&[1.0]).is_err());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let m = sample();
        let x = [1.0, 1.0, 1.0];
        let b = m.matvec(&x).unwrap();
        assert_eq!(m.residual_inf(&x, &b).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_bounds_checked() {
        CooBuilder::new(1).add(0, 1, 1.0);
    }
}
