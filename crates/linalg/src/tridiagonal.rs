//! Tridiagonal systems via the Thomas algorithm.
//!
//! Each row (and each column) of the crossbar equivalent circuit is a chain:
//! driver → wire segment → wire segment → … with a shunt leg at every node.
//! With the other side's node voltages held fixed, the chain's nodal
//! equations are tridiagonal, so the crossbar solver's inner step is a
//! sequence of exact Thomas solves (see `xbar-sim`'s line relaxation).

use crate::{Result, SolveError};

/// Solves a tridiagonal system, allocating the solution vector.
///
/// The system is `sub[i]·x[i-1] + diag[i]·x[i] + sup[i]·x[i+1] = rhs[i]`,
/// where `sub[0]` and `sup[n-1]` are ignored.
///
/// Hot loops that solve many lines of the same length should use
/// [`solve_tridiagonal_into`] with reused buffers instead — the crossbar
/// line-relaxation solver performs `rows + cols` of these per sweep, and a
/// fresh `Vec` per line dominated its allocation profile.
///
/// # Errors
///
/// * [`SolveError::Dimension`] if the slices have different lengths;
/// * [`SolveError::Singular`] if elimination hits a zero pivot.
pub fn solve_tridiagonal(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Result<Vec<f64>> {
    let n = diag.len();
    let mut x = vec![0.0f64; n];
    let mut scratch = vec![0.0f64; n];
    solve_tridiagonal_into(sub, diag, sup, rhs, &mut x, &mut scratch)?;
    Ok(x)
}

/// Allocation-free Thomas solve: writes the solution into `x`, using
/// `scratch` for the forward-elimination coefficients.
///
/// Semantics are identical to [`solve_tridiagonal`] (bit-for-bit: the same
/// operations in the same order). `x` and `scratch` must each have length
/// `n = diag.len()`; their prior contents are ignored and overwritten.
///
/// # Errors
///
/// * [`SolveError::Dimension`] if any slice (including `x`/`scratch`) has a
///   length other than `n`;
/// * [`SolveError::Singular`] if elimination hits a zero pivot (in which
///   case `x` and `scratch` hold partial garbage).
pub fn solve_tridiagonal_into(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    rhs: &[f64],
    x: &mut [f64],
    scratch: &mut [f64],
) -> Result<()> {
    let n = diag.len();
    if sub.len() != n || sup.len() != n || rhs.len() != n {
        return Err(SolveError::dim(
            "tridiagonal bands and rhs must all have length n",
        ));
    }
    if x.len() != n || scratch.len() != n {
        return Err(SolveError::dim(
            "tridiagonal output and scratch buffers must have length n",
        ));
    }
    if n == 0 {
        return Ok(());
    }
    if diag[0] == 0.0 {
        return Err(SolveError::Singular { pivot: 0 });
    }
    let c_prime = scratch;
    c_prime[0] = sup[0] / diag[0];
    x[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i] * c_prime[i - 1];
        if denom == 0.0 {
            return Err(SolveError::Singular { pivot: i });
        }
        c_prime[i] = sup[i] / denom;
        x[i] = (rhs[i] - sub[i] * x[i - 1]) / denom;
    }
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_prime[i] * next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseMatrix, LuDecomposition};
    use crate::norms::max_abs_diff;

    #[test]
    fn solves_identity() {
        let n = 5;
        let x = solve_tridiagonal(
            &vec![0.0; n],
            &vec![1.0; n],
            &vec![0.0; n],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn matches_lu_on_random_chain() {
        let n = 20;
        let mut s = 5u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64) / 1000.0 + 0.1
        };
        let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { -rnd() }).collect();
        let sup: Vec<f64> = (0..n)
            .map(|i| if i == n - 1 { 0.0 } else { -rnd() })
            .collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| sub[i].abs() + sup[i].abs() + 0.5 + rnd())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        let mut dense = DenseMatrix::zeros(n, n);
        for i in 0..n {
            dense.set(i, i, diag[i]);
            if i > 0 {
                dense.set(i, i - 1, sub[i]);
            }
            if i + 1 < n {
                dense.set(i, i + 1, sup[i]);
            }
        }
        let exact = LuDecomposition::new(&dense).unwrap().solve(&rhs).unwrap();
        assert!(max_abs_diff(&x, &exact) < 1e-10);
    }

    #[test]
    fn empty_system() {
        assert!(solve_tridiagonal(&[], &[], &[], &[]).unwrap().is_empty());
    }

    #[test]
    fn in_place_variant_matches_allocating_one_bitwise() {
        let n = 16;
        let mut s = 77u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64) / 1000.0 + 0.1
        };
        let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { -rnd() }).collect();
        let sup: Vec<f64> = (0..n)
            .map(|i| if i == n - 1 { 0.0 } else { -rnd() })
            .collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| sub[i].abs() + sup[i].abs() + 0.5 + rnd())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let alloc = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        // Dirty buffers: prior contents must not leak into the solution.
        let mut x = vec![f64::NAN; n];
        let mut scratch = vec![f64::NAN; n];
        solve_tridiagonal_into(&sub, &diag, &sup, &rhs, &mut x, &mut scratch).unwrap();
        assert_eq!(alloc, x);
    }

    #[test]
    fn in_place_variant_rejects_bad_buffer_lengths() {
        let band = [1.0f64, 1.0];
        let mut short = [0.0f64; 1];
        let mut scratch = [0.0f64; 2];
        assert!(
            solve_tridiagonal_into(&band, &band, &band, &band, &mut short, &mut scratch).is_err()
        );
        let mut x = [0.0f64; 2];
        let mut short_scratch = [0.0f64; 1];
        assert!(
            solve_tridiagonal_into(&band, &band, &band, &band, &mut x, &mut short_scratch).is_err()
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(solve_tridiagonal(&[0.0], &[1.0, 1.0], &[0.0], &[1.0]).is_err());
    }

    #[test]
    fn singular_pivot_detected() {
        assert!(matches!(
            solve_tridiagonal(&[0.0, 1.0], &[0.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]),
            Err(SolveError::Singular { pivot: 0 })
        ));
    }
}
