//! Tridiagonal systems via the Thomas algorithm.
//!
//! Each row (and each column) of the crossbar equivalent circuit is a chain:
//! driver → wire segment → wire segment → … with a shunt leg at every node.
//! With the other side's node voltages held fixed, the chain's nodal
//! equations are tridiagonal, so the crossbar solver's inner step is a
//! sequence of exact Thomas solves (see `xbar-sim`'s line relaxation).

use crate::{Result, SolveError};

/// Solves a tridiagonal system in place.
///
/// The system is `sub[i]·x[i-1] + diag[i]·x[i] + sup[i]·x[i+1] = rhs[i]`,
/// where `sub[0]` and `sup[n-1]` are ignored.
///
/// # Errors
///
/// * [`SolveError::Dimension`] if the slices have different lengths;
/// * [`SolveError::Singular`] if elimination hits a zero pivot.
pub fn solve_tridiagonal(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Result<Vec<f64>> {
    let n = diag.len();
    if sub.len() != n || sup.len() != n || rhs.len() != n {
        return Err(SolveError::dim(
            "tridiagonal bands and rhs must all have length n",
        ));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut c_prime = vec![0.0f64; n];
    let mut d_prime = vec![0.0f64; n];
    if diag[0] == 0.0 {
        return Err(SolveError::Singular { pivot: 0 });
    }
    c_prime[0] = sup[0] / diag[0];
    d_prime[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i] * c_prime[i - 1];
        if denom == 0.0 {
            return Err(SolveError::Singular { pivot: i });
        }
        c_prime[i] = sup[i] / denom;
        d_prime[i] = (rhs[i] - sub[i] * d_prime[i - 1]) / denom;
    }
    let mut x = d_prime;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_prime[i] * next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseMatrix, LuDecomposition};
    use crate::norms::max_abs_diff;

    #[test]
    fn solves_identity() {
        let n = 5;
        let x = solve_tridiagonal(
            &vec![0.0; n],
            &vec![1.0; n],
            &vec![0.0; n],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn matches_lu_on_random_chain() {
        let n = 20;
        let mut s = 5u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64) / 1000.0 + 0.1
        };
        let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { -rnd() }).collect();
        let sup: Vec<f64> = (0..n)
            .map(|i| if i == n - 1 { 0.0 } else { -rnd() })
            .collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| sub[i].abs() + sup[i].abs() + 0.5 + rnd())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        let mut dense = DenseMatrix::zeros(n, n);
        for i in 0..n {
            dense.set(i, i, diag[i]);
            if i > 0 {
                dense.set(i, i - 1, sub[i]);
            }
            if i + 1 < n {
                dense.set(i, i + 1, sup[i]);
            }
        }
        let exact = LuDecomposition::new(&dense).unwrap().solve(&rhs).unwrap();
        assert!(max_abs_diff(&x, &exact) < 1e-10);
    }

    #[test]
    fn empty_system() {
        assert!(solve_tridiagonal(&[], &[], &[], &[]).unwrap().is_empty());
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(solve_tridiagonal(&[0.0], &[1.0, 1.0], &[0.0], &[1.0]).is_err());
    }

    #[test]
    fn singular_pivot_detected() {
        assert!(matches!(
            solve_tridiagonal(&[0.0, 1.0], &[0.0, 1.0], &[0.0, 0.0], &[1.0, 1.0]),
            Err(SolveError::Singular { pivot: 0 })
        ));
    }
}
