//! Iterative solvers for the sparse crossbar nodal systems.
//!
//! The nodal matrices are symmetric positive definite and (with driver and
//! sense conductances present) strictly diagonally dominant, so Gauss–Seidel
//! and SOR converge geometrically and conjugate gradient converges in at most
//! `n` steps. Gauss–Seidel with a mild over-relaxation (`ω ≈ 1.6`) is the
//! workhorse used by `xbar-sim`; CG is provided for cross-checks.

use crate::sparse::CsrMatrix;
use crate::{Result, SolveError, SolveStats};

/// Stopping criteria for the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterOptions {
    /// Maximum sweeps / iterations before giving up.
    pub max_iterations: usize,
    /// Relative residual target: stop when `‖b − A·x‖∞ ≤ tolerance·‖b‖∞`.
    pub tolerance: f64,
    /// SOR relaxation factor; `1.0` reduces SOR to plain Gauss–Seidel.
    pub omega: f64,
}

impl Default for IterOptions {
    fn default() -> Self {
        Self {
            max_iterations: 20_000,
            tolerance: 1e-10,
            omega: 1.6,
        }
    }
}

impl IterOptions {
    /// Options tuned for the crossbar simulator: looser tolerance (the
    /// device-variation noise floor is far above 1e-10) and capped sweeps.
    pub fn crossbar() -> Self {
        Self {
            max_iterations: 50_000,
            tolerance: 1e-9,
            omega: 1.7,
        }
    }
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// Solves `A·x = b` by successive over-relaxation (Gauss–Seidel when
/// `omega == 1`), starting from `x0` (zeros if `None`).
///
/// # Errors
///
/// * [`SolveError::Dimension`] if `b` has the wrong length;
/// * [`SolveError::Singular`] if a diagonal entry is zero;
/// * [`SolveError::NoConvergence`] if the residual target is not met.
pub fn sor(a: &CsrMatrix, b: &[f64], x0: Option<&[f64]>, opts: &IterOptions) -> Result<Vec<f64>> {
    sor_with_stats(a, b, x0, opts).map(|(x, _)| x)
}

/// [`sor`], additionally reporting how many sweeps ran and the relative
/// residual at exit in a [`SolveStats`].
///
/// # Errors
///
/// As for [`sor`].
pub fn sor_with_stats(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &IterOptions,
) -> Result<(Vec<f64>, SolveStats)> {
    let n = a.n();
    if b.len() != n {
        return Err(SolveError::dim("sor: rhs length mismatch"));
    }
    let mut x = match x0 {
        Some(x0) if x0.len() == n => x0.to_vec(),
        Some(_) => return Err(SolveError::dim("sor: initial guess length mismatch")),
        None => vec![0.0; n],
    };
    for r in 0..n {
        if a.diagonal(r) == 0.0 {
            return Err(SolveError::Singular { pivot: r });
        }
    }
    let b_norm = inf_norm(b).max(f64::MIN_POSITIVE);
    let omega = opts.omega;
    // Residual checks are O(nnz); do them every few sweeps.
    const CHECK_EVERY: usize = 8;
    for it in 1..=opts.max_iterations {
        for r in 0..n {
            let (cols, vals) = a.row(r);
            let mut sigma = 0.0;
            let mut diag = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v;
                } else {
                    sigma += v * x[c];
                }
            }
            let gs = (b[r] - sigma) / diag;
            x[r] += omega * (gs - x[r]);
        }
        if it % CHECK_EVERY == 0 || it == opts.max_iterations {
            let res = a.residual_inf(&x, b)?;
            if res <= opts.tolerance * b_norm {
                let stats = SolveStats {
                    iterations: it,
                    residual: res / b_norm,
                    converged: true,
                };
                return Ok((x, stats));
            }
        }
    }
    let res = a.residual_inf(&x, b)?;
    if res <= opts.tolerance * b_norm {
        let stats = SolveStats {
            iterations: opts.max_iterations,
            residual: res / b_norm,
            converged: true,
        };
        Ok((x, stats))
    } else {
        Err(SolveError::NoConvergence {
            iterations: opts.max_iterations,
            residual: res / b_norm,
        })
    }
}

/// Solves `A·x = b` by (Jacobi-preconditioned) conjugate gradient. `A` must
/// be symmetric positive definite, which crossbar nodal matrices are.
///
/// # Errors
///
/// * [`SolveError::Dimension`] if `b` has the wrong length;
/// * [`SolveError::Singular`] if a diagonal entry is non-positive;
/// * [`SolveError::NoConvergence`] if the residual target is not met.
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], opts: &IterOptions) -> Result<Vec<f64>> {
    conjugate_gradient_with_stats(a, b, opts).map(|(x, _)| x)
}

/// [`conjugate_gradient`], additionally reporting iteration count and the
/// relative residual at exit in a [`SolveStats`].
///
/// # Errors
///
/// As for [`conjugate_gradient`].
#[allow(clippy::needless_range_loop)]
pub fn conjugate_gradient_with_stats(
    a: &CsrMatrix,
    b: &[f64],
    opts: &IterOptions,
) -> Result<(Vec<f64>, SolveStats)> {
    let n = a.n();
    if b.len() != n {
        return Err(SolveError::dim("cg: rhs length mismatch"));
    }
    let mut diag_inv = vec![0.0; n];
    for r in 0..n {
        let d = a.diagonal(r);
        if d <= 0.0 {
            return Err(SolveError::Singular { pivot: r });
        }
        diag_inv[r] = 1.0 / d;
    }
    let b_norm = inf_norm(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let mut r: Vec<f64> = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&diag_inv).map(|(&ri, &di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(&a, &b)| a * b).sum();
    for it in 1..=opts.max_iterations {
        let ap = a.matvec(&p)?;
        let pap: f64 = p.iter().zip(&ap).map(|(&a, &b)| a * b).sum();
        if pap.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        if inf_norm(&r) <= opts.tolerance * b_norm {
            // Report the true (recomputed) residual, not the recurrence's.
            let res = a.residual_inf(&x, b)?;
            let stats = SolveStats {
                iterations: it,
                residual: res / b_norm,
                converged: true,
            };
            return Ok((x, stats));
        }
        for i in 0..n {
            z[i] = r[i] * diag_inv[i];
        }
        let rz_new: f64 = r.iter().zip(&z).map(|(&a, &b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        if it == opts.max_iterations {
            break;
        }
    }
    let res = a.residual_inf(&x, b)?;
    if res <= opts.tolerance * b_norm {
        let stats = SolveStats {
            iterations: opts.max_iterations,
            residual: res / b_norm,
            converged: true,
        };
        Ok((x, stats))
    } else {
        Err(SolveError::NoConvergence {
            iterations: opts.max_iterations,
            residual: res / b_norm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::LuDecomposition;
    use crate::norms::max_abs_diff;
    use crate::sparse::CooBuilder;

    /// Deterministic random SPD diagonally dominant CSR system.
    fn random_spd(n: usize, seed: u64) -> (CsrMatrix, Vec<f64>) {
        let mut s = seed;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64) / 1000.0
        };
        let mut b = CooBuilder::new(n);
        for i in 0..n {
            // Sparse symmetric couplings to a few neighbours.
            for d in 1..=3usize {
                let j = (i + d * 7) % n;
                if j != i && i < j {
                    let g = 0.1 + rnd();
                    b.stamp_conductance(Some(i), Some(j), g);
                }
            }
            // Ground leg keeps it strictly dominant / SPD.
            b.stamp_conductance(Some(i), None, 0.5 + rnd());
        }
        let m = b.build();
        let rhs: Vec<f64> = (0..n).map(|_| rnd() - 0.5).collect();
        (m, rhs)
    }

    #[test]
    fn sor_matches_lu() {
        let (m, b) = random_spd(50, 3);
        let lu = LuDecomposition::new(&m.to_dense()).unwrap();
        let exact = lu.solve(&b).unwrap();
        let approx = sor(&m, &b, None, &IterOptions::default()).unwrap();
        assert!(max_abs_diff(&exact, &approx) < 1e-7);
    }

    #[test]
    fn gauss_seidel_converges_with_omega_one() {
        let (m, b) = random_spd(30, 9);
        let opts = IterOptions {
            omega: 1.0,
            ..Default::default()
        };
        let x = sor(&m, &b, None, &opts).unwrap();
        assert!(m.residual_inf(&x, &b).unwrap() < 1e-8);
    }

    #[test]
    fn cg_matches_lu() {
        let (m, b) = random_spd(64, 11);
        let lu = LuDecomposition::new(&m.to_dense()).unwrap();
        let exact = lu.solve(&b).unwrap();
        let approx = conjugate_gradient(&m, &b, &IterOptions::default()).unwrap();
        assert!(max_abs_diff(&exact, &approx) < 1e-7);
    }

    #[test]
    fn warm_start_accepts_previous_solution() {
        let (m, b) = random_spd(20, 21);
        let x = sor(&m, &b, None, &IterOptions::default()).unwrap();
        let x2 = sor(&m, &b, Some(&x), &IterOptions::default()).unwrap();
        assert!(max_abs_diff(&x, &x2) < 1e-9);
    }

    #[test]
    fn stats_report_work_and_residual() {
        let (m, b) = random_spd(50, 3);
        let opts = IterOptions::default();
        let (x, stats) = sor_with_stats(&m, &b, None, &opts).unwrap();
        assert!(stats.converged);
        assert!(stats.iterations >= 1 && stats.iterations <= opts.max_iterations);
        assert!(stats.residual <= opts.tolerance);
        assert!(m.residual_inf(&x, &b).unwrap() < 1e-8);
        // Warm start from the solution converges at the first check.
        let (_, warm) = sor_with_stats(&m, &b, Some(&x), &opts).unwrap();
        assert!(warm.iterations <= stats.iterations);

        let (_, cg_stats) = conjugate_gradient_with_stats(&m, &b, &opts).unwrap();
        assert!(cg_stats.converged);
        assert!(cg_stats.iterations >= 1);
        assert!(cg_stats.residual <= opts.tolerance);
    }

    #[test]
    fn no_convergence_reported() {
        let (m, b) = random_spd(30, 5);
        let opts = IterOptions {
            max_iterations: 1,
            tolerance: 1e-14,
            omega: 1.0,
        };
        assert!(matches!(
            sor(&m, &b, None, &opts),
            Err(SolveError::NoConvergence { .. })
        ));
    }

    #[test]
    fn zero_diagonal_is_singular() {
        let mut builder = CooBuilder::new(2);
        builder.add(0, 1, 1.0);
        builder.add(1, 0, 1.0);
        builder.add(1, 1, 1.0);
        let m = builder.build();
        assert!(matches!(
            sor(&m, &[1.0, 1.0], None, &IterOptions::default()),
            Err(SolveError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn dimension_errors() {
        let (m, _) = random_spd(4, 2);
        assert!(sor(&m, &[1.0], None, &IterOptions::default()).is_err());
        assert!(conjugate_gradient(&m, &[1.0], &IterOptions::default()).is_err());
        assert!(sor(&m, &[0.0; 4], Some(&[0.0; 2]), &IterOptions::default()).is_err());
    }
}
