//! Small vector-norm helpers shared by the solvers and their tests.

/// Maximum absolute difference between two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Euclidean norm of a slice.
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm of a slice.
pub fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_vectors() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(inf_norm(&[-7.0, 2.0]), 7.0);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(l2_norm(&[]), 0.0);
        assert_eq!(inf_norm(&[]), 0.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        max_abs_diff(&[1.0], &[]);
    }
}
