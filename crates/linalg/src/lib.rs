//! # xbar-linalg
//!
//! Dense and sparse linear-algebra kernels backing the non-ideal crossbar
//! circuit simulator of the `xbar-repro` workspace.
//!
//! The crossbar equivalent circuit of the paper's Fig. 1(a) — input drivers,
//! wire-segment parasitics, synaptic conductances and sense resistances —
//! discretises via Kirchhoff's current law into a sparse, symmetric,
//! diagonally-dominant linear system `A·v = b` over the crosspoint node
//! voltages. This crate provides:
//!
//! * [`dense::LuDecomposition`] — LU with partial pivoting, the exact
//!   reference solver used for small tiles and for validating the iterative
//!   solvers;
//! * [`sparse::CsrMatrix`] — compressed sparse row storage for the nodal
//!   matrix of large tiles;
//! * [`iterative`] — Jacobi, Gauss–Seidel, SOR and conjugate-gradient
//!   solvers with residual-based stopping.
//!
//! All kernels are `f64`: conductances span three decades (`Gmin`..`Gmax`
//! with wire conductances far larger), so `f32` loses the IR-drop signal.
//!
//! # Example
//!
//! ```
//! use xbar_linalg::dense::{DenseMatrix, LuDecomposition};
//!
//! # fn main() -> Result<(), xbar_linalg::SolveError> {
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod dense;
pub mod iterative;
pub mod norms;
pub mod sparse;
pub mod tridiagonal;

use std::fmt;

/// Error produced by the solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Matrix dimensions are inconsistent with the operation.
    Dimension(String),
    /// The matrix is singular (or numerically singular) to working precision.
    Singular {
        /// Pivot index at which elimination broke down.
        pivot: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// The solver was configured with invalid parameters (e.g. physically
    /// inconsistent crossbar settings). Callers that validate configuration
    /// up front never see this; it exists so deep call paths can surface a
    /// descriptive error instead of panicking inside worker threads.
    Config(String),
}

impl SolveError {
    pub(crate) fn dim(msg: impl Into<String>) -> Self {
        SolveError::Dimension(msg.into())
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Dimension(msg) => write!(f, "dimension mismatch: {msg}"),
            SolveError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            SolveError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            SolveError::Config(msg) => write!(f, "invalid solver configuration: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Convergence statistics reported by the iterative solvers: how much work
/// a solve took and how good the answer is, instead of discarding both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Sweeps (SOR) or iterations (CG) performed.
    pub iterations: usize,
    /// Relative `‖b − A·x‖∞ / ‖b‖∞` residual at exit.
    pub residual: f64,
    /// Whether the tolerance target was met.
    pub converged: bool,
}

impl Default for SolveStats {
    fn default() -> Self {
        SolveStats {
            iterations: 0,
            residual: 0.0,
            converged: true,
        }
    }
}

impl SolveStats {
    /// Stats for a direct (non-iterative) solve: one "iteration", exact.
    pub fn direct() -> Self {
        SolveStats {
            iterations: 1,
            residual: 0.0,
            converged: true,
        }
    }

    /// Combines stats of independent solves contributing to one result:
    /// iterations add, the worst residual dominates.
    pub fn accumulate(&mut self, other: SolveStats) {
        self.iterations += other.iterations;
        self.residual = self.residual.max(other.residual);
        self.converged &= other.converged;
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SolveError>;
