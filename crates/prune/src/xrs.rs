//! Crossbar-row sparsity (XRS) pruning at initialisation.
//!
//! Dual of XCS: in the unrolled `fan_in × fan_out` matrix, a *crossbar row
//! segment* is the run of `xbar_cols` consecutive weights that one crossbar
//! row holds for one matrix row. XRS prunes the fraction `s` of row segments
//! with the smallest L2 norm per layer.

use crate::mask::{LayerMask, MaskSet};
use crate::score::{smallest_k, victim_count};
use crate::unroll::unrolled_matrices;
use xbar_nn::Sequential;
use xbar_tensor::Tensor;

/// One crossbar-row segment: columns `col_block·xbar_cols ..` of one matrix
/// row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSegment {
    /// Matrix row (input) index.
    pub row: usize,
    /// Index of the block of `xbar_cols` matrix columns.
    pub col_block: usize,
}

/// Enumerates the row segments of a `fan_in × fan_out` matrix with their L2
/// norms.
pub fn row_segment_norms(matrix: &Tensor, xbar_cols: usize) -> Vec<(RowSegment, f64)> {
    assert!(xbar_cols > 0, "crossbar must have columns");
    let (fan_in, fan_out) = (matrix.rows(), matrix.cols());
    let blocks = fan_out.div_ceil(xbar_cols);
    let mut out = Vec::with_capacity(blocks * fan_in);
    for r in 0..fan_in {
        let row = matrix.row(r);
        for t in 0..blocks {
            let c0 = t * xbar_cols;
            let c1 = (c0 + xbar_cols).min(fan_out);
            let norm: f64 = row[c0..c1]
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
                .sqrt();
            out.push((
                RowSegment {
                    row: r,
                    col_block: t,
                },
                norm,
            ));
        }
    }
    out
}

/// Prunes fraction `s` of crossbar-row segments in every weighted layer
/// except the input convolution (exempt for the same reason as
/// [`crate::xcs::prune_xcs`]: at segment granularity the tiny input stem
/// would be destroyed), scored by init-time segment norm.
///
/// # Panics
///
/// Panics unless `0 ≤ s < 1` and `xbar_cols > 0`.
pub fn prune_xrs(model: &Sequential, s: f64, xbar_cols: usize) -> MaskSet {
    let mut set = MaskSet::new();
    for ul in unrolled_matrices(model).into_iter().skip(1) {
        let segs = row_segment_norms(&ul.matrix, xbar_cols);
        let scores: Vec<f64> = segs.iter().map(|(_, n)| *n).collect();
        let victims = smallest_k(&scores, victim_count(segs.len(), s));
        if victims.is_empty() {
            continue;
        }
        let (fan_in, fan_out) = (ul.matrix.rows(), ul.matrix.cols());
        // Mask in stored orientation [fan_out, fan_in]: unrolled (r, c) is
        // stored (c, r).
        let mut mask = Tensor::ones(&[fan_out, fan_in]);
        for &v in &victims {
            let (seg, _) = segs[v];
            let c0 = seg.col_block * xbar_cols;
            let c1 = (c0 + xbar_cols).min(fan_out);
            for c in c0..c1 {
                mask.set2(c, seg.row, 0.0);
            }
        }
        set.push(LayerMask {
            layer_index: ul.layer_index,
            mask,
        });
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::Linear;
    use xbar_nn::Layer;

    fn model() -> Sequential {
        // A stem layer (exempt) followed by the layer under test.
        Sequential::new(vec![
            Layer::Linear(Linear::new(4, 6, 0)),
            Layer::Linear(Linear::new(6, 10, 1)),
        ])
    }

    #[test]
    fn segment_enumeration_counts() {
        let m = Tensor::ones(&[6, 10]);
        let segs = row_segment_norms(&m, 4); // blocks: ceil(10/4)=3
        assert_eq!(segs.len(), 18);
        let last = segs
            .iter()
            .find(|(s, _)| s.row == 0 && s.col_block == 2)
            .unwrap();
        assert!((last.1 - 2f64.sqrt()).abs() < 1e-12); // cols 8..10
    }

    #[test]
    fn masks_zero_whole_row_segments() {
        let m = model();
        let set = prune_xrs(&m, 0.5, 4);
        assert!(set.for_layer(0).is_none(), "stem layer is exempt");
        let mask = &set.for_layer(1).unwrap().mask; // stored [10, 6]
                                                    // In unrolled orientation [6, 10], each row's spans {0..4, 4..8,
                                                    // 8..10} must be all-or-nothing.
        let unrolled = mask.transpose();
        for r in 0..6 {
            let row = unrolled.row(r);
            for (c0, c1) in [(0usize, 4usize), (4, 8), (8, 10)] {
                let seg = &row[c0..c1];
                assert!(
                    seg.iter().all(|&x| x == 0.0) || seg.iter().all(|&x| x == 1.0),
                    "row segment partially pruned"
                );
            }
        }
    }

    #[test]
    fn sparsity_matches_requested_fraction() {
        let set = prune_xrs(&model(), 0.5, 4);
        let sp = set.nominal_sparsity();
        assert!((sp - 0.5).abs() < 0.15, "sparsity {sp}");
    }

    #[test]
    fn weakest_row_segments_pruned() {
        let mut m = model();
        {
            let w = &mut m.layers_mut()[1]
                .as_linear_mut()
                .unwrap()
                .weight_mut()
                .value;
            // Stored [10, 6]; unrolled row 2, col block 0 = stored rows 0..4,
            // column 2.
            for c in 0..4 {
                w.set2(c, 2, 1e-9);
            }
        }
        let set = prune_xrs(&m, 0.2, 4);
        let mask = &set.for_layer(1).unwrap().mask;
        for c in 0..4 {
            assert_eq!(mask.at2(c, 2), 0.0);
        }
    }

    #[test]
    fn zero_sparsity_no_masks() {
        assert!(prune_xrs(&model(), 0.0, 4).masks().is_empty());
    }
}
