//! Channel/filter (C/F) structured pruning at initialisation.
//!
//! For every convolution, the fraction `s` of filters with the smallest
//! L2 norm at initialisation is pruned (columns of the unrolled weight
//! matrix). The weights of the *next* weighted layer that consume the pruned
//! feature maps are pruned too — the rows eliminated by the paper's `T`
//! transformation (Fig. 1(b), top).

use crate::mask::{LayerMask, MaskSet};
use crate::score::{row_l2_norms, smallest_k, victim_count};
use xbar_nn::{Layer, Sequential};
use xbar_tensor::Tensor;

/// Prunes fraction `s` of the filters of every convolution (by init-time
/// filter norm) and the corresponding input rows of each following weighted
/// layer. The classifier output is never pruned.
///
/// Returns the masks; apply them with [`MaskSet::apply_to`] and keep them as
/// the training constraint.
///
/// # Panics
///
/// Panics unless `0 ≤ s < 1`.
pub fn prune_cf(model: &Sequential, s: f64) -> MaskSet {
    let weighted = model.weighted_layer_indices();
    // Masks in stored orientation, keyed by position in `weighted`.
    let mut masks: Vec<Option<Tensor>> = vec![None; weighted.len()];
    for (pos, &li) in weighted.iter().enumerate() {
        let Layer::Conv2d(conv) = &model.layers()[li] else {
            continue; // linear layers are only pruned via their inputs
        };
        let w = &conv.weight().value; // [out_c, fan_in]
        let victims = smallest_k(&row_l2_norms(w), victim_count(conv.out_channels(), s));
        if victims.is_empty() {
            continue;
        }
        // Own filters: zero rows of the stored weight.
        let own = masks[pos].get_or_insert_with(|| Tensor::ones(w.shape()));
        for &f in &victims {
            own.row_mut(f).fill(0.0);
        }
        // Next weighted layer: zero the weights consuming the pruned
        // channels.
        if pos + 1 < weighted.len() {
            let next_li = weighted[pos + 1];
            match &model.layers()[next_li] {
                Layer::Conv2d(next) => {
                    let k2 = next.kernel_size() * next.kernel_size();
                    let shape = next.weight().value.shape().to_vec();
                    let nm = masks[pos + 1].get_or_insert_with(|| Tensor::ones(&shape));
                    for r in 0..nm.rows() {
                        let row = nm.row_mut(r);
                        for &c in &victims {
                            row[c * k2..(c + 1) * k2].fill(0.0);
                        }
                    }
                }
                Layer::Linear(next) => {
                    // The VGG trunk ends at 1×1 spatial, so linear input
                    // features correspond one-to-one with channels.
                    let per_channel = next.in_features() / conv.out_channels();
                    let shape = next.weight().value.shape().to_vec();
                    let nm = masks[pos + 1].get_or_insert_with(|| Tensor::ones(&shape));
                    for r in 0..nm.rows() {
                        let row = nm.row_mut(r);
                        for &c in &victims {
                            row[c * per_channel..(c + 1) * per_channel].fill(0.0);
                        }
                    }
                }
                other => unreachable!("weighted index points at {}", other.kind_name()),
            }
        }
    }
    let mut set = MaskSet::new();
    for (pos, mask) in masks.into_iter().enumerate() {
        if let Some(mask) = mask {
            set.push(LayerMask {
                layer_index: weighted[pos],
                mask,
            });
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};

    fn model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(3, 8, 3, 1, 1, 1)),
            Layer::ReLU(ReLU::new()),
            Layer::Conv2d(Conv2d::new(8, 8, 3, 1, 1, 2)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8, 4, 3)),
        ])
    }

    #[test]
    fn prunes_half_the_filters() {
        let mut m = model();
        let set = prune_cf(&m, 0.5);
        set.apply_to(&mut m);
        // First conv: 4 of 8 filter rows zero.
        let w0 = &m.layers()[0].as_conv().unwrap().weight().value;
        let zero_rows = (0..8)
            .filter(|&r| w0.row(r).iter().all(|&x| x == 0.0))
            .count();
        assert_eq!(zero_rows, 4);
    }

    #[test]
    fn next_layer_rows_are_pruned_consistently() {
        let mut m = model();
        let set = prune_cf(&m, 0.5);
        set.apply_to(&mut m);
        let w0 = &m.layers()[0].as_conv().unwrap().weight().value;
        let pruned: Vec<usize> = (0..8)
            .filter(|&r| w0.row(r).iter().all(|&x| x == 0.0))
            .collect();
        let w1 = &m.layers()[2].as_conv().unwrap().weight().value;
        // For each pruned channel c, columns c*9..(c+1)*9 of every row of the
        // next conv are zero.
        for r in 0..w1.rows() {
            for &c in &pruned {
                assert!(w1.row(r)[c * 9..(c + 1) * 9].iter().all(|&x| x == 0.0));
            }
        }
    }

    #[test]
    fn linear_inputs_pruned_for_final_conv() {
        let mut m = model();
        let set = prune_cf(&m, 0.5);
        set.apply_to(&mut m);
        let w1 = &m.layers()[2].as_conv().unwrap().weight().value;
        let pruned: Vec<usize> = (0..8)
            .filter(|&r| w1.row(r).iter().all(|&x| x == 0.0))
            .collect();
        assert_eq!(pruned.len(), 4);
        let wl = &m.layers()[5].as_linear().unwrap().weight().value;
        for r in 0..wl.rows() {
            for &c in &pruned {
                assert_eq!(wl.row(r)[c], 0.0);
            }
        }
    }

    #[test]
    fn weakest_filters_are_chosen() {
        let mut m = model();
        // Make filter 0 tiny and filter 7 huge in the first conv.
        {
            let w = &mut m.layers_mut()[0].as_conv_mut().unwrap().weight_mut().value;
            w.row_mut(0).fill(1e-6);
            w.row_mut(7).fill(10.0);
        }
        let set = prune_cf(&m, 0.5);
        let mask0 = &set.for_layer(0).unwrap().mask;
        assert!(mask0.row(0).iter().all(|&x| x == 0.0), "weak filter pruned");
        assert!(mask0.row(7).iter().all(|&x| x == 1.0), "strong filter kept");
    }

    #[test]
    fn zero_sparsity_yields_no_masks() {
        let m = model();
        let set = prune_cf(&m, 0.0);
        assert!(set.masks().is_empty());
    }

    #[test]
    fn nominal_sparsity_close_to_requested() {
        let m = model();
        let set = prune_cf(&m, 0.5);
        // Layer 0 loses 1/2 of rows; layer 2 loses 1/2 rows and 1/2 of
        // columns (≈0.75 zero); linear loses 1/2 columns.
        let sp = set.nominal_sparsity();
        assert!(sp > 0.5 && sp < 0.8, "sparsity {sp}");
    }
}
