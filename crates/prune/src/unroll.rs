//! Unrolled weight-matrix views of a model's weighted layers.
//!
//! The paper's framework unrolls every convolution into MAC operations,
//! yielding a 2-D `fan_in × fan_out` weight matrix per layer: rows correspond
//! to crossbar rows (inputs/voltages) and columns to crossbar columns
//! (filters/output currents), matching `I_j = Σ_i G_ij·V_i` in Fig. 1(a).
//!
//! `xbar-nn` stores conv weights `[out_c, in_c·kh·kw]` and linear weights
//! `[out_f, in_f]`; the unrolled matrix is the transpose of either.

use xbar_nn::{Layer, Sequential};
use xbar_tensor::Tensor;

/// The unrolled weight matrix of one weighted layer.
#[derive(Debug, Clone)]
pub struct UnrolledLayer {
    /// Index of the layer within the model.
    pub layer_index: usize,
    /// `fan_in × fan_out` weight matrix.
    pub matrix: Tensor,
    /// Kernel area (`kh·kw`) for conv layers, `1` for linear layers; the
    /// number of unrolled rows contributed by each input channel.
    pub rows_per_channel: usize,
}

/// Extracts the unrolled `fan_in × fan_out` matrices of every conv/linear
/// layer, in network order.
pub fn unrolled_matrices(model: &Sequential) -> Vec<UnrolledLayer> {
    model
        .layers()
        .iter()
        .enumerate()
        .filter_map(|(i, layer)| match layer {
            Layer::Conv2d(conv) => Some(UnrolledLayer {
                layer_index: i,
                matrix: conv.weight().value.transpose(),
                rows_per_channel: conv.kernel_size() * conv.kernel_size(),
            }),
            Layer::Linear(lin) => Some(UnrolledLayer {
                layer_index: i,
                matrix: lin.weight().value.transpose(),
                rows_per_channel: 1,
            }),
            _ => None,
        })
        .collect()
}

/// Writes an unrolled `fan_in × fan_out` matrix back into the layer at
/// `layer_index` (transposing to the stored orientation).
///
/// # Panics
///
/// Panics if the layer is not conv/linear or the shape disagrees.
pub fn write_back(model: &mut Sequential, layer_index: usize, matrix: &Tensor) {
    let stored = matrix.transpose();
    match &mut model.layers_mut()[layer_index] {
        Layer::Conv2d(conv) => {
            assert_eq!(
                conv.weight().value.shape(),
                stored.shape(),
                "conv weight shape mismatch on write_back"
            );
            conv.weight_mut().value = stored;
        }
        Layer::Linear(lin) => {
            assert_eq!(
                lin.weight().value.shape(),
                stored.shape(),
                "linear weight shape mismatch on write_back"
            );
            lin.weight_mut().value = stored;
        }
        other => panic!("layer {layer_index} ({}) has no weights", other.kind_name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, ReLU};
    use xbar_nn::Layer;

    fn model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(3, 4, 3, 1, 1, 1)),
            Layer::ReLU(ReLU::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4, 2, 2)),
        ])
    }

    #[test]
    fn unroll_orientation_is_fanin_by_fanout() {
        let m = model();
        let u = unrolled_matrices(&m);
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].matrix.shape(), &[27, 4]); // 3·3·3 rows, 4 filters
        assert_eq!(u[0].rows_per_channel, 9);
        assert_eq!(u[1].matrix.shape(), &[4, 2]);
        assert_eq!(u[1].rows_per_channel, 1);
    }

    #[test]
    fn write_back_round_trips() {
        let mut m = model();
        let u = unrolled_matrices(&m);
        let doubled = u[0].matrix.scale(2.0);
        write_back(&mut m, u[0].layer_index, &doubled);
        let u2 = unrolled_matrices(&m);
        for (a, b) in u[0].matrix.as_slice().iter().zip(u2[0].matrix.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "no weights")]
    fn write_back_rejects_activation_layers() {
        let mut m = model();
        let mat = Tensor::zeros(&[1, 1]);
        write_back(&mut m, 1, &mat);
    }
}
