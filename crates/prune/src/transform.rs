//! The paper's `T` transformation and its inverse `T⁻¹`.
//!
//! Before a (possibly sparse) unrolled weight matrix is partitioned into
//! crossbar tiles, `T` eliminates the structure the pruning created:
//!
//! * **C/F**: all-zero columns (pruned filters) and all-zero rows (inputs
//!   from pruned channels of the previous layer) are dropped, leaving one
//!   dense compacted panel;
//! * **XCS**: within each block of `xbar_rows` matrix rows, columns whose
//!   segment is all zero are dropped; each row block becomes a panel whose
//!   surviving segments repack into crossbars;
//! * **XRS**: dual — within each block of `xbar_cols` matrix columns,
//!   all-zero row segments are dropped.
//!
//! After the crossbar simulation perturbs the panel weights, `T⁻¹`
//! ([`TransformedLayer::invert`]) scatters them back to their original matrix
//! positions (pruned positions stay zero) so inference can run on the
//! reassembled model.

use crate::PruneMethod;
use xbar_tensor::Tensor;

/// A dense sub-matrix produced by `T`, ready for tile partitioning, together
/// with the original coordinates of its rows and columns.
#[derive(Debug, Clone)]
pub struct Panel {
    /// The dense matrix to partition into crossbar tiles.
    pub matrix: Tensor,
    /// Original matrix row index of each panel row.
    pub row_ids: Vec<usize>,
    /// Original matrix column index of each panel column.
    pub col_ids: Vec<usize>,
}

impl Panel {
    fn from_indices(matrix: &Tensor, row_ids: Vec<usize>, col_ids: Vec<usize>) -> Self {
        let mut m = Tensor::zeros(&[row_ids.len(), col_ids.len()]);
        for (pr, &r) in row_ids.iter().enumerate() {
            for (pc, &c) in col_ids.iter().enumerate() {
                m.set2(pr, pc, matrix.at2(r, c));
            }
        }
        Self {
            matrix: m,
            row_ids,
            col_ids,
        }
    }
}

/// Result of applying `T` to one unrolled weight matrix.
#[derive(Debug, Clone)]
pub struct TransformedLayer {
    /// Shape of the original matrix, `[fan_in, fan_out]`.
    pub original_shape: [usize; 2],
    /// The dense panels to map onto crossbars.
    pub panels: Vec<Panel>,
}

impl TransformedLayer {
    /// Total number of weights that will be mapped onto crossbar devices.
    pub fn mapped_elements(&self) -> usize {
        self.panels.iter().map(|p| p.matrix.len()).sum()
    }

    /// Applies `T⁻¹`: scatters (possibly perturbed) panel matrices back into
    /// a full-size matrix. Positions eliminated by `T` are zero.
    ///
    /// # Panics
    ///
    /// Panics if `panels` does not match the stored panel shapes.
    pub fn invert(&self, panels: &[Tensor]) -> Tensor {
        assert_eq!(panels.len(), self.panels.len(), "panel count mismatch");
        let mut out = Tensor::zeros(&self.original_shape);
        for (meta, m) in self.panels.iter().zip(panels) {
            assert_eq!(
                m.shape(),
                meta.matrix.shape(),
                "panel shape mismatch on invert"
            );
            for (pr, &r) in meta.row_ids.iter().enumerate() {
                for (pc, &c) in meta.col_ids.iter().enumerate() {
                    out.set2(r, c, m.at2(pr, pc));
                }
            }
        }
        out
    }
}

fn is_zero(v: f32) -> bool {
    v == 0.0
}

/// Applies `T` for the given pruning method to an unrolled `fan_in × fan_out`
/// matrix. `xbar_rows`/`xbar_cols` give the crossbar tile size (used by the
/// XCS/XRS segment granularity; ignored for C/F and unpruned).
///
/// # Panics
///
/// Panics if `matrix` is not 2-D or the crossbar dimensions are zero.
pub fn transform(
    matrix: &Tensor,
    method: PruneMethod,
    xbar_rows: usize,
    xbar_cols: usize,
) -> TransformedLayer {
    assert_eq!(matrix.ndim(), 2, "T expects a 2-D weight matrix");
    assert!(
        xbar_rows > 0 && xbar_cols > 0,
        "crossbar dims must be non-zero"
    );
    let (fan_in, fan_out) = (matrix.rows(), matrix.cols());
    let original_shape = [fan_in, fan_out];
    let panels = match method {
        PruneMethod::None => {
            let rows = (0..fan_in).collect();
            let cols = (0..fan_out).collect();
            vec![Panel::from_indices(matrix, rows, cols)]
        }
        PruneMethod::ChannelFilter => {
            let rows: Vec<usize> = (0..fan_in)
                .filter(|&r| matrix.row(r).iter().any(|&v| !is_zero(v)))
                .collect();
            let cols: Vec<usize> = (0..fan_out)
                .filter(|&c| (0..fan_in).any(|r| !is_zero(matrix.at2(r, c))))
                .collect();
            vec![Panel::from_indices(matrix, rows, cols)]
        }
        PruneMethod::XbarColumn => {
            let blocks = fan_in.div_ceil(xbar_rows);
            (0..blocks)
                .filter_map(|t| {
                    let r0 = t * xbar_rows;
                    let r1 = (r0 + xbar_rows).min(fan_in);
                    let rows: Vec<usize> = (r0..r1).collect();
                    let cols: Vec<usize> = (0..fan_out)
                        .filter(|&c| rows.iter().any(|&r| !is_zero(matrix.at2(r, c))))
                        .collect();
                    if cols.is_empty() {
                        None
                    } else {
                        Some(Panel::from_indices(matrix, rows, cols))
                    }
                })
                .collect()
        }
        PruneMethod::XbarRow => {
            let blocks = fan_out.div_ceil(xbar_cols);
            (0..blocks)
                .filter_map(|t| {
                    let c0 = t * xbar_cols;
                    let c1 = (c0 + xbar_cols).min(fan_out);
                    let cols: Vec<usize> = (c0..c1).collect();
                    let rows: Vec<usize> = (0..fan_in)
                        .filter(|&r| cols.iter().any(|&c| !is_zero(matrix.at2(r, c))))
                        .collect();
                    if rows.is_empty() {
                        None
                    } else {
                        Some(Panel::from_indices(matrix, rows, cols))
                    }
                })
                .collect()
        }
    };
    TransformedLayer {
        original_shape,
        panels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_matrix() -> Tensor {
        // 6x4 with column 1 and rows 2,3 zero.
        let mut m = Tensor::from_fn(&[6, 4], |i| (i + 1) as f32);
        for r in 0..6 {
            m.set2(r, 1, 0.0);
        }
        for c in 0..4 {
            m.set2(2, c, 0.0);
            m.set2(3, c, 0.0);
        }
        m
    }

    #[test]
    fn unpruned_is_single_full_panel() {
        let m = sparse_matrix();
        let t = transform(&m, PruneMethod::None, 2, 2);
        assert_eq!(t.panels.len(), 1);
        assert_eq!(t.panels[0].matrix.shape(), &[6, 4]);
        assert_eq!(t.mapped_elements(), 24);
    }

    #[test]
    fn cf_drops_zero_rows_and_columns() {
        let m = sparse_matrix();
        let t = transform(&m, PruneMethod::ChannelFilter, 2, 2);
        assert_eq!(t.panels.len(), 1);
        assert_eq!(t.panels[0].matrix.shape(), &[4, 3]);
        assert_eq!(t.panels[0].row_ids, vec![0, 1, 4, 5]);
        assert_eq!(t.panels[0].col_ids, vec![0, 2, 3]);
    }

    #[test]
    fn cf_invert_restores_original() {
        let m = sparse_matrix();
        let t = transform(&m, PruneMethod::ChannelFilter, 2, 2);
        let panels: Vec<Tensor> = t.panels.iter().map(|p| p.matrix.clone()).collect();
        assert_eq!(t.invert(&panels), m);
    }

    #[test]
    fn xcs_drops_zero_segments_per_block() {
        // 4x2 matrix, xbar_rows = 2: block 0 has col 0 zero; block 1 dense.
        let mut m = Tensor::ones(&[4, 2]);
        m.set2(0, 0, 0.0);
        m.set2(1, 0, 0.0);
        let t = transform(&m, PruneMethod::XbarColumn, 2, 2);
        assert_eq!(t.panels.len(), 2);
        assert_eq!(t.panels[0].col_ids, vec![1]);
        assert_eq!(t.panels[1].col_ids, vec![0, 1]);
        let panels: Vec<Tensor> = t.panels.iter().map(|p| p.matrix.clone()).collect();
        assert_eq!(t.invert(&panels), m);
    }

    #[test]
    fn xcs_fully_zero_block_is_skipped() {
        let m = Tensor::zeros(&[4, 2]);
        let t = transform(&m, PruneMethod::XbarColumn, 2, 2);
        assert!(t.panels.is_empty());
        assert_eq!(t.invert(&[]), m);
    }

    #[test]
    fn xrs_drops_zero_row_segments_per_block() {
        // 3x4, xbar_cols = 2: block 0 has row 1 zero; block 1 dense.
        let mut m = Tensor::ones(&[3, 4]);
        m.set2(1, 0, 0.0);
        m.set2(1, 1, 0.0);
        let t = transform(&m, PruneMethod::XbarRow, 2, 2);
        assert_eq!(t.panels.len(), 2);
        assert_eq!(t.panels[0].row_ids, vec![0, 2]);
        assert_eq!(t.panels[1].row_ids, vec![0, 1, 2]);
        let panels: Vec<Tensor> = t.panels.iter().map(|p| p.matrix.clone()).collect();
        assert_eq!(t.invert(&panels), m);
    }

    #[test]
    fn invert_applies_perturbations_in_place() {
        let m = sparse_matrix();
        let t = transform(&m, PruneMethod::ChannelFilter, 2, 2);
        let perturbed: Vec<Tensor> = t.panels.iter().map(|p| p.matrix.scale(0.5)).collect();
        let back = t.invert(&perturbed);
        // Surviving entries halved, pruned entries still zero.
        assert_eq!(back.at2(0, 0), m.at2(0, 0) * 0.5);
        assert_eq!(back.at2(2, 0), 0.0);
        assert_eq!(back.at2(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "panel count")]
    fn invert_checks_panel_count() {
        let m = sparse_matrix();
        let t = transform(&m, PruneMethod::ChannelFilter, 2, 2);
        let _ = t.invert(&[]);
    }
}
