//! Binary pruning masks over the weighted layers of a model.

use xbar_nn::train::WeightConstraint;
use xbar_nn::{Layer, Sequential};
use xbar_tensor::Tensor;

/// A 0/1 mask over one layer's stored weight tensor.
#[derive(Debug, Clone)]
pub struct LayerMask {
    /// Index of the layer within the model.
    pub layer_index: usize,
    /// Mask with the same shape as the stored weight (`[out, fan_in]`).
    pub mask: Tensor,
}

impl LayerMask {
    /// Fraction of zeros in the mask.
    pub fn sparsity(&self) -> f64 {
        self.mask.sparsity(0.5)
    }
}

/// The set of masks produced by a structured-pruning pass.
///
/// Implements [`WeightConstraint`] so the trainer re-applies the masks after
/// every optimiser step, keeping pruned weights at exactly zero throughout
/// training (pruning at initialisation, paper Section III).
#[derive(Debug, Clone, Default)]
pub struct MaskSet {
    masks: Vec<LayerMask>,
}

impl MaskSet {
    /// Creates an empty mask set (no constraint).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a layer mask.
    ///
    /// # Panics
    ///
    /// Panics if a mask for the same layer already exists.
    pub fn push(&mut self, mask: LayerMask) {
        assert!(
            self.masks.iter().all(|m| m.layer_index != mask.layer_index),
            "duplicate mask for layer {}",
            mask.layer_index
        );
        self.masks.push(mask);
    }

    /// The masks, in insertion order.
    pub fn masks(&self) -> &[LayerMask] {
        &self.masks
    }

    /// Looks up the mask for a layer.
    pub fn for_layer(&self, layer_index: usize) -> Option<&LayerMask> {
        self.masks.iter().find(|m| m.layer_index == layer_index)
    }

    /// Multiplies every masked layer's weights by its mask.
    ///
    /// # Panics
    ///
    /// Panics if a mask's shape disagrees with its layer's weights.
    pub fn apply_to(&self, model: &mut Sequential) {
        for lm in &self.masks {
            let weight = match &mut model.layers_mut()[lm.layer_index] {
                Layer::Conv2d(c) => &mut c.weight_mut().value,
                Layer::Linear(l) => &mut l.weight_mut().value,
                other => panic!(
                    "mask targets layer {} ({}) without weights",
                    lm.layer_index,
                    other.kind_name()
                ),
            };
            assert_eq!(weight.shape(), lm.mask.shape(), "mask shape mismatch");
            for (w, &m) in weight.as_mut_slice().iter_mut().zip(lm.mask.as_slice()) {
                *w *= m;
            }
        }
    }

    /// Overall mask sparsity weighted by parameter count.
    pub fn nominal_sparsity(&self) -> f64 {
        let total: usize = self.masks.iter().map(|m| m.mask.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let zeros: usize = self.masks.iter().map(|m| m.mask.count_near_zero(0.5)).sum();
        zeros as f64 / total as f64
    }

    /// Observed sparsity of the model's masked weights (should match
    /// [`MaskSet::nominal_sparsity`] after [`MaskSet::apply_to`]).
    pub fn observed_sparsity(&self, model: &mut Sequential) -> f64 {
        let mut zeros = 0usize;
        let mut total = 0usize;
        for lm in &self.masks {
            let weight = match &model.layers()[lm.layer_index] {
                Layer::Conv2d(c) => &c.weight().value,
                Layer::Linear(l) => &l.weight().value,
                _ => continue,
            };
            zeros += weight.count_near_zero(0.0);
            total += weight.len();
        }
        if total == 0 {
            0.0
        } else {
            zeros as f64 / total as f64
        }
    }
}

impl WeightConstraint for MaskSet {
    fn apply(&self, model: &mut Sequential) {
        self.apply_to(model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::Linear;

    fn model() -> Sequential {
        Sequential::new(vec![Layer::Linear(Linear::new(4, 2, 0))])
    }

    fn half_mask() -> MaskSet {
        let mut mask = Tensor::ones(&[2, 4]);
        for i in 0..4 {
            mask.as_mut_slice()[i] = 0.0; // first output row fully pruned
        }
        let mut set = MaskSet::new();
        set.push(LayerMask {
            layer_index: 0,
            mask,
        });
        set
    }

    #[test]
    fn apply_zeroes_masked_weights() {
        let mut m = model();
        let set = half_mask();
        set.apply_to(&mut m);
        let w = &m.layers()[0].as_linear().unwrap().weight().value;
        assert!(w.row(0).iter().all(|&x| x == 0.0));
        assert!(w.row(1).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn sparsities_agree() {
        let mut m = model();
        let set = half_mask();
        assert!((set.nominal_sparsity() - 0.5).abs() < 1e-12);
        set.apply_to(&mut m);
        assert!((set.observed_sparsity(&mut m) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn for_layer_lookup() {
        let set = half_mask();
        assert!(set.for_layer(0).is_some());
        assert!(set.for_layer(1).is_none());
        assert!((set.for_layer(0).unwrap().sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate mask")]
    fn duplicate_layer_rejected() {
        let mut set = half_mask();
        set.push(LayerMask {
            layer_index: 0,
            mask: Tensor::ones(&[2, 4]),
        });
    }

    #[test]
    fn constraint_trait_applies() {
        let mut m = model();
        let set = half_mask();
        let c: &dyn WeightConstraint = &set;
        c.apply(&mut m);
        let w = &m.layers()[0].as_linear().unwrap().weight().value;
        assert!(w.row(0).iter().all(|&x| x == 0.0));
    }
}
