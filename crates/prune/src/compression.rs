//! Crossbar-compression-rate accounting (Table I of the paper).
//!
//! After `T`, each panel of each layer is partitioned into `rows × cols`
//! crossbar tiles; the compression rate is the ratio of crossbars needed by
//! the unpruned model to crossbars needed by the pruned model.

use crate::transform::{transform, TransformedLayer};
use crate::unroll::unrolled_matrices;
use crate::PruneMethod;
use xbar_nn::Sequential;

/// Number of `rows × cols` crossbar tiles needed to map one transformed
/// layer.
pub fn layer_crossbar_count(t: &TransformedLayer, rows: usize, cols: usize) -> usize {
    assert!(rows > 0 && cols > 0, "crossbar dims must be non-zero");
    t.panels
        .iter()
        .map(|p| p.matrix.rows().div_ceil(rows) * p.matrix.cols().div_ceil(cols))
        .sum()
}

/// Number of crossbars needed to map the whole model under `method`.
///
/// The model's weights must already carry the pruning pattern (masks
/// applied); `PruneMethod::None` counts the dense mapping regardless of
/// weight values.
pub fn model_crossbar_count(
    model: &Sequential,
    method: PruneMethod,
    rows: usize,
    cols: usize,
) -> usize {
    unrolled_matrices(model)
        .iter()
        .map(|ul| {
            let t = transform(&ul.matrix, method, rows, cols);
            layer_crossbar_count(&t, rows, cols)
        })
        .sum()
}

/// Crossbar-compression-rate: crossbars for the dense (unpruned) mapping
/// divided by crossbars for the pruned mapping.
///
/// Returns `f64::INFINITY` if the pruned model needs zero crossbars (fully
/// pruned — degenerate but well-defined).
pub fn compression_rate(model: &Sequential, method: PruneMethod, rows: usize, cols: usize) -> f64 {
    let dense = model_crossbar_count(model, PruneMethod::None, rows, cols);
    let pruned = model_crossbar_count(model, method, rows, cols);
    if pruned == 0 {
        f64::INFINITY
    } else {
        dense as f64 / pruned as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::prune_cf;
    use crate::xcs::prune_xcs;
    use crate::xrs::prune_xrs;
    use xbar_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
    use xbar_nn::Layer;

    fn model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(3, 16, 3, 1, 1, 1)),
            Layer::ReLU(ReLU::new()),
            Layer::Conv2d(Conv2d::new(16, 16, 3, 1, 1, 2)),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(16, 4, 3)),
        ])
    }

    #[test]
    fn dense_count_matches_hand_calculation() {
        let m = model();
        // Layer 0: 27x16 → ceil(27/16)*ceil(16/16) = 2 tiles of 16x16.
        // Layer 2: 144x16 → 9*1 = 9. Linear: 16x4 → 1*1. Total 12.
        assert_eq!(
            model_crossbar_count(&m, PruneMethod::None, 16, 16),
            2 + 9 + 1
        );
    }

    #[test]
    fn cf_pruning_compresses() {
        let mut m = model();
        let masks = prune_cf(&m, 0.5);
        masks.apply_to(&mut m);
        let rate = compression_rate(&m, PruneMethod::ChannelFilter, 16, 16);
        assert!(rate >= 1.5, "rate {rate}");
    }

    #[test]
    fn higher_sparsity_compresses_more() {
        let mut m1 = model();
        prune_cf(&m1, 0.25).apply_to(&mut m1);
        let r1 = compression_rate(&m1, PruneMethod::ChannelFilter, 16, 16);
        let mut m2 = model();
        prune_cf(&m2, 0.75).apply_to(&mut m2);
        let r2 = compression_rate(&m2, PruneMethod::ChannelFilter, 16, 16);
        assert!(r2 > r1, "{r2} vs {r1}");
    }

    #[test]
    fn xcs_compression_tracks_sparsity() {
        // XCS repacking only saves crossbars when a layer's fan_out spans
        // several tile widths, so use a wide model (plus an exempt stem).
        let mut m = Sequential::new(vec![
            Layer::Linear(Linear::new(16, 64, 0)),
            Layer::Linear(Linear::new(64, 128, 1)),
        ]);
        prune_xcs(&m, 0.5, 16).apply_to(&mut m);
        let rate = compression_rate(&m, PruneMethod::XbarColumn, 16, 16);
        // Second layer compresses ~2x; the exempt stem dilutes the total.
        assert!(rate > 1.3 && rate < 2.5, "rate {rate}");
    }

    #[test]
    fn xcs_cannot_compress_single_tile_width() {
        // With fan_out ≤ tile columns every surviving block still needs one
        // tile — the fine-grained sparsity brings no crossbar savings here.
        let mut m = model();
        prune_xcs(&m, 0.5, 16).apply_to(&mut m);
        let rate = compression_rate(&m, PruneMethod::XbarColumn, 16, 16);
        assert!((rate - 1.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn xrs_compression_tracks_sparsity() {
        let mut m = model();
        prune_xrs(&m, 0.5, 16).apply_to(&mut m);
        let rate = compression_rate(&m, PruneMethod::XbarRow, 16, 16);
        assert!(rate > 1.2 && rate < 2.5, "rate {rate}");
    }

    #[test]
    fn unpruned_rate_is_one() {
        let m = model();
        let rate = compression_rate(&m, PruneMethod::None, 32, 32);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn larger_crossbars_need_fewer_tiles() {
        let m = model();
        let small = model_crossbar_count(&m, PruneMethod::None, 16, 16);
        let large = model_crossbar_count(&m, PruneMethod::None, 64, 64);
        assert!(large < small);
    }
}
