//! # xbar-prune
//!
//! Crossbar-aware structured pruning for the `xbar-repro` workspace,
//! implementing the three techniques studied by the paper:
//!
//! * **C/F pruning** ([`cf`]) — channel/filter pruning: whole filters
//!   (columns of the unrolled weight matrix) are removed, along with the rows
//!   of the *next* layer that consumed the pruned feature maps;
//! * **XCS** ([`xcs`]) — crossbar-column sparsity: within the unrolled
//!   matrix, column segments of crossbar-row length are pruned;
//! * **XRS** ([`xrs`]) — crossbar-row sparsity: row segments of
//!   crossbar-column length are pruned.
//!
//! All three prune *at initialisation* with a per-layer sparsity ratio `s`,
//! following the paper's Section III (one round of training instead of
//! train–prune–finetune). The resulting [`MaskSet`] implements
//! [`xbar_nn::train::WeightConstraint`], so the masks are re-applied after
//! every optimiser step and the pruned weights remain exactly zero.
//!
//! The [`transform`] module implements the paper's `T` transformation (and
//! its inverse `T⁻¹`): eliminating all-zero columns/rows (C/F) or all-zero
//! segments (XCS/XRS) before the weight matrix is partitioned into crossbar
//! tiles. [`compression`] computes the crossbar-compression-rates reported in
//! Table I.
//!
//! # Example
//!
//! ```
//! use xbar_nn::vgg::{VggConfig, VggVariant};
//! use xbar_prune::{cf::prune_cf, MaskSet};
//!
//! let mut model = VggConfig::new(VggVariant::Vgg11, 10)
//!     .width_multiplier(0.125)
//!     .build(0);
//! let masks = prune_cf(&mut model, 0.5);
//! masks.apply_to(&mut model);
//! assert!(masks.observed_sparsity(&mut model) > 0.4);
//! ```

pub mod cf;
pub mod compression;
pub mod mask;
pub mod score;
pub mod transform;
pub mod unroll;
pub mod xcs;
pub mod xrs;

pub use mask::{LayerMask, MaskSet};

/// The structured-pruning methods studied by the paper, as a tag for
/// reporting and dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneMethod {
    /// No pruning (the unpruned baseline).
    None,
    /// Channel/filter pruning.
    ChannelFilter,
    /// Crossbar-column sparsity.
    XbarColumn,
    /// Crossbar-row sparsity.
    XbarRow,
}

impl std::fmt::Display for PruneMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruneMethod::None => write!(f, "unpruned"),
            PruneMethod::ChannelFilter => write!(f, "C/F"),
            PruneMethod::XbarColumn => write!(f, "XCS"),
            PruneMethod::XbarRow => write!(f, "XRS"),
        }
    }
}
