//! Importance scores used to select pruning victims at initialisation.

use xbar_tensor::Tensor;

/// L2 norm of each row of a 2-D tensor (filter norms for a stored
/// `[out, fan_in]` conv weight).
///
/// # Panics
///
/// Panics if `w` is not 2-D.
pub fn row_l2_norms(w: &Tensor) -> Vec<f64> {
    (0..w.rows())
        .map(|r| {
            w.row(r)
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                .sqrt()
        })
        .collect()
}

/// L2 norm of each column of a 2-D tensor.
///
/// # Panics
///
/// Panics if `w` is not 2-D.
pub fn col_l2_norms(w: &Tensor) -> Vec<f64> {
    let mut norms = vec![0.0f64; w.cols()];
    for r in 0..w.rows() {
        for (c, &x) in w.row(r).iter().enumerate() {
            norms[c] += (x as f64) * (x as f64);
        }
    }
    norms.iter().map(|n| n.sqrt()).collect()
}

/// Indices of the `k` smallest scores (the pruning victims), in ascending
/// score order. Ties break by index for determinism.
pub fn smallest_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("NaN score")
            .then(a.cmp(&b))
    });
    order.truncate(k.min(scores.len()));
    order
}

/// Number of victims for `n` units at sparsity `s`, never pruning everything:
/// at least one unit always survives.
///
/// # Panics
///
/// Panics unless `0 ≤ s < 1`.
pub fn victim_count(n: usize, s: f64) -> usize {
    assert!((0.0..1.0).contains(&s), "sparsity must be in [0, 1)");
    if n == 0 {
        return 0;
    }
    (((n as f64) * s).round() as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_col_norms() {
        let w = Tensor::from_vec(vec![3.0, 0.0, 0.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(row_l2_norms(&w), vec![3.0, 4.0]);
        assert_eq!(col_l2_norms(&w), vec![3.0, 4.0]);
    }

    #[test]
    fn smallest_k_orders_ascending() {
        let scores = [5.0, 1.0, 3.0, 1.0];
        assert_eq!(smallest_k(&scores, 2), vec![1, 3]);
        assert_eq!(smallest_k(&scores, 10), vec![1, 3, 2, 0]);
        assert!(smallest_k(&scores, 0).is_empty());
    }

    #[test]
    fn victim_count_rounds_and_caps() {
        assert_eq!(victim_count(10, 0.8), 8);
        assert_eq!(victim_count(10, 0.0), 0);
        assert_eq!(victim_count(4, 0.9), 3); // never all pruned
        assert_eq!(victim_count(1, 0.9), 0);
        assert_eq!(victim_count(0, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn sparsity_one_rejected() {
        victim_count(4, 1.0);
    }
}
