//! Crossbar-column sparsity (XCS) pruning at initialisation.
//!
//! In the unrolled `fan_in × fan_out` weight matrix, a *crossbar column
//! segment* is the run of `xbar_rows` consecutive weights that one crossbar
//! column holds for one matrix column (Fig. 1(b), bottom). XCS prunes the
//! fraction `s` of segments with the smallest L2 norm, per layer; pruned
//! segments are eliminated at mapping time by the `T` transformation and the
//! surviving segments repack into fewer crossbars.

use crate::mask::{LayerMask, MaskSet};
use crate::score::{smallest_k, victim_count};
use crate::unroll::unrolled_matrices;
use xbar_nn::Sequential;
use xbar_tensor::Tensor;

/// One crossbar-column segment: rows `row_block·xbar_rows ..` of one matrix
/// column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSegment {
    /// Index of the block of `xbar_rows` matrix rows.
    pub row_block: usize,
    /// Matrix column (filter) index.
    pub col: usize,
}

/// Enumerates the segments of a `fan_in × fan_out` matrix for a given
/// crossbar row count, with their L2 norms.
pub fn segment_norms(matrix: &Tensor, xbar_rows: usize) -> Vec<(ColumnSegment, f64)> {
    assert!(xbar_rows > 0, "crossbar must have rows");
    let (fan_in, fan_out) = (matrix.rows(), matrix.cols());
    let blocks = fan_in.div_ceil(xbar_rows);
    let mut out = Vec::with_capacity(blocks * fan_out);
    for t in 0..blocks {
        let r0 = t * xbar_rows;
        let r1 = (r0 + xbar_rows).min(fan_in);
        for c in 0..fan_out {
            let norm: f64 = (r0..r1)
                .map(|r| {
                    let v = matrix.at2(r, c) as f64;
                    v * v
                })
                .sum::<f64>()
                .sqrt();
            out.push((
                ColumnSegment {
                    row_block: t,
                    col: c,
                },
                norm,
            ));
        }
    }
    out
}

/// Prunes fraction `s` of crossbar-column segments in every weighted layer
/// except the input convolution, scored by init-time segment norm.
///
/// The input layer is exempt because its fan-in (`3·k·k = 27`) is smaller
/// than a crossbar column, so a "segment" there is an entire input-facing
/// filter and segment pruning degenerates into crippling filter pruning of
/// the stem — the standard exemption in the crossbar-aware pruning
/// literature.
///
/// # Panics
///
/// Panics unless `0 ≤ s < 1` and `xbar_rows > 0`.
pub fn prune_xcs(model: &Sequential, s: f64, xbar_rows: usize) -> MaskSet {
    let mut set = MaskSet::new();
    for ul in unrolled_matrices(model).into_iter().skip(1) {
        let segs = segment_norms(&ul.matrix, xbar_rows);
        let scores: Vec<f64> = segs.iter().map(|(_, n)| *n).collect();
        let victims = smallest_k(&scores, victim_count(segs.len(), s));
        if victims.is_empty() {
            continue;
        }
        let (fan_in, _) = (ul.matrix.rows(), ul.matrix.cols());
        // Mask in stored orientation [fan_out, fan_in].
        let mut mask = Tensor::ones(&[ul.matrix.cols(), fan_in]);
        for &v in &victims {
            let (seg, _) = segs[v];
            let r0 = seg.row_block * xbar_rows;
            let r1 = (r0 + xbar_rows).min(fan_in);
            mask.row_mut(seg.col)[r0..r1].fill(0.0);
        }
        set.push(LayerMask {
            layer_index: ul.layer_index,
            mask,
        });
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_nn::layers::{Conv2d, Linear};
    use xbar_nn::Layer;

    fn model() -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(2, 4, 3, 1, 1, 1)), // fan_in 18, 4 filters
            Layer::Linear(Linear::new(16, 4, 2)),
        ])
    }

    #[test]
    fn segment_enumeration_counts() {
        let m = Tensor::ones(&[18, 4]);
        let segs = segment_norms(&m, 8); // blocks: ceil(18/8)=3
        assert_eq!(segs.len(), 12);
        // Last block covers rows 16..18 → norm sqrt(2).
        let last = segs
            .iter()
            .find(|(s, _)| s.row_block == 2 && s.col == 0)
            .unwrap();
        assert!((last.1 - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn masks_zero_whole_segments_and_exempt_first_layer() {
        let m = model();
        let set = prune_xcs(&m, 0.5, 8);
        // The input conv (layer 0) is exempt; only the linear is masked.
        assert_eq!(set.masks().len(), 1);
        assert!(set.for_layer(0).is_none());
        let mask = &set.for_layer(1).unwrap().mask; // stored [4, 16]
                                                    // Each row's zero-runs must be unions of segment spans {0..8, 8..16}.
        for r in 0..4 {
            let row = mask.row(r);
            for (start, end) in [(0usize, 8usize), (8, 16)] {
                let seg = &row[start..end];
                assert!(
                    seg.iter().all(|&x| x == 0.0) || seg.iter().all(|&x| x == 1.0),
                    "segment partially pruned"
                );
            }
        }
    }

    #[test]
    fn sparsity_matches_requested_fraction_on_masked_layers() {
        let m = model();
        let set = prune_xcs(&m, 0.5, 8);
        // Only the non-exempt layer carries a mask; its sparsity tracks s.
        let sp = set.nominal_sparsity();
        assert!((sp - 0.5).abs() < 0.15, "sparsity {sp}");
    }

    #[test]
    fn weakest_segments_pruned_first() {
        let mut m = model();
        {
            let w = &mut m.layers_mut()[1]
                .as_linear_mut()
                .unwrap()
                .weight_mut()
                .value;
            // Stored [4, 16]: make filter 0's first segment (rows 0..8 of
            // unrolled column 0) tiny.
            w.row_mut(0)[0..8].fill(1e-9);
        }
        let set = prune_xcs(&m, 0.25, 8);
        let mask = &set.for_layer(1).unwrap().mask;
        assert!(mask.row(0)[0..8].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_sparsity_no_masks() {
        let set = prune_xcs(&model(), 0.0, 8);
        assert!(set.masks().is_empty());
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn zero_xbar_rows_panics() {
        segment_norms(&Tensor::ones(&[4, 4]), 0);
    }
}
