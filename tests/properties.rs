//! Cross-crate property-based tests (proptest) on the invariants the
//! reproduction relies on:
//!
//! * `T⁻¹ ∘ T = id` and `R⁻¹ ∘ R = id` on random sparse matrices;
//! * partition/reassemble round trips for arbitrary panel and tile sizes;
//! * the weight ↔ conductance mapping round-trips and stays within device
//!   bounds;
//! * the circuit solvers agree and never create current from nothing;
//! * pruning masks hit the requested sparsity at segment granularity.

use proptest::prelude::*;
use xbar_repro::core::partition::{partition, reassemble};
use xbar_repro::core::rearrange::{ColumnOrder, Rearrangement};
use xbar_repro::prune::transform::transform;
use xbar_repro::prune::PruneMethod;
use xbar_repro::sim::conductance::{
    conductances_to_weights, weights_to_conductances, ConductanceMatrix, MappingScale,
};
use xbar_repro::sim::params::CrossbarParams;
use xbar_repro::sim::solve::{NonIdealSolver, SolveMethod};
use xbar_repro::tensor::Tensor;

/// Strategy: a small 2-D matrix with some exact zeros (sparse structure).
fn sparse_matrix() -> impl Strategy<Value = Tensor> {
    ((1usize..12), (1usize..12)).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![3 => -2.0f32..2.0, 2 => Just(0.0f32)], r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).expect("consistent shape"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transform_invert_is_identity(m in sparse_matrix(), rows in 1usize..6, cols in 1usize..6) {
        for method in [
            PruneMethod::None,
            PruneMethod::ChannelFilter,
            PruneMethod::XbarColumn,
            PruneMethod::XbarRow,
        ] {
            let t = transform(&m, method, rows, cols);
            let panels: Vec<Tensor> = t.panels.iter().map(|p| p.matrix.clone()).collect();
            let back = t.invert(&panels);
            // T⁻¹∘T restores every weight that T kept; everything else was
            // exactly zero in the original (T only eliminates zeros).
            prop_assert_eq!(back.shape(), m.shape());
            for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
                if *b != 0.0 || method == PruneMethod::None {
                    prop_assert_eq!(a, b);
                }
            }
            // Elements dropped by T must have been zero.
            for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
                if *b == 0.0 {
                    prop_assert!(*a == 0.0 || method != PruneMethod::None);
                }
            }
        }
    }

    #[test]
    fn rearrange_invert_is_identity(m in sparse_matrix(), tile in 1usize..8) {
        for order in [
            ColumnOrder::Ascending,
            ColumnOrder::Descending,
            ColumnOrder::CenterOut,
            ColumnOrder::GroupedDescending,
        ] {
            let r = Rearrangement::compute(&m, order, tile);
            let round = r.invert(&r.apply(&m));
            prop_assert_eq!(&round, &m);
        }
    }

    #[test]
    fn partition_reassemble_round_trips(
        m in sparse_matrix(),
        rows in 1usize..9,
        cols in 1usize..9,
    ) {
        let tiles = partition(&m, rows, cols);
        prop_assert_eq!(
            tiles.len(),
            m.rows().div_ceil(rows) * m.cols().div_ceil(cols)
        );
        for t in &tiles {
            prop_assert_eq!(t.weights.shape(), &[rows, cols]);
        }
        let back = reassemble(&tiles, m.rows(), m.cols());
        prop_assert_eq!(&back, &m);
    }

    #[test]
    fn conductance_round_trip(m in sparse_matrix()) {
        let params = CrossbarParams::with_size(8);
        let pair = weights_to_conductances(&m, MappingScale::PerTileMax, 1.0, &params);
        // Every device within physical bounds.
        for g in pair.pos.as_slice().iter().chain(pair.neg.as_slice()) {
            prop_assert!(*g >= params.g_min() - 1e-15);
            prop_assert!(*g <= params.g_max() + 1e-15);
        }
        let back = conductances_to_weights(&pair, &params);
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-5 * m.abs_max().max(1.0), "{} vs {}", a, b);
        }
    }

    #[test]
    fn circuit_never_creates_current(level in 0.0f64..1.0, n in 2usize..12) {
        let params = CrossbarParams::with_size(n).ideal();
        let mut nonideal = CrossbarParams::with_size(n);
        nonideal.sigma_variation = 0.0;
        let g_val = params.g_min() + level * (params.g_max() - params.g_min());
        let g = ConductanceMatrix::filled(n, n, g_val);
        let v = vec![nonideal.v_read; n];
        let out = NonIdealSolver::new(nonideal, SolveMethod::LineRelaxation)
            .effective_conductances(&g, &v)
            .expect("solves");
        for (actual, ideal) in out.col_currents.iter().zip(&out.ideal_currents) {
            prop_assert!(*actual > 0.0);
            prop_assert!(actual <= ideal, "parasitics cannot amplify current");
        }
    }

    #[test]
    fn solvers_agree_on_random_crossbars(seed in 0u64..1000) {
        let n = 5usize;
        let params = CrossbarParams::with_size(n);
        let mut g = ConductanceMatrix::filled(n, n, 0.0);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in 0..n {
            for j in 0..n {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let f = (s % 1000) as f64 / 1000.0;
                g.set(i, j, params.g_min() + f * (params.g_max() - params.g_min()));
            }
        }
        let v = vec![params.v_read; n];
        let exact = NonIdealSolver::new(params, SolveMethod::DenseExact)
            .effective_conductances(&g, &v)
            .expect("exact");
        let lines = NonIdealSolver::new(params, SolveMethod::LineRelaxation)
            .effective_conductances(&g, &v)
            .expect("lines");
        for (a, b) in exact.col_currents.iter().zip(&lines.col_currents) {
            prop_assert!(((a - b) / a).abs() < 1e-5);
        }
    }

    #[test]
    fn xcs_masks_preserve_segment_structure(
        s in 0.0f64..0.9,
        seg in prop_oneof![Just(4usize), Just(8usize)],
    ) {
        use xbar_repro::nn::layers::Linear;
        use xbar_repro::nn::{Layer, Sequential};
        use xbar_repro::prune::xcs::prune_xcs;
        let model = Sequential::new(vec![Layer::Linear(Linear::new(16, 12, 3))]);
        let masks = prune_xcs(&model, s, seg);
        if s == 0.0 {
            prop_assert!(masks.masks().is_empty());
        } else if let Some(lm) = masks.for_layer(0) {
            // Every segment (stored row = unrolled column) all-or-nothing.
            for r in 0..12 {
                let row = lm.mask.row(r);
                for chunk in row.chunks(seg) {
                    let all_zero = chunk.iter().all(|&x| x == 0.0);
                    let all_one = chunk.iter().all(|&x| x == 1.0);
                    prop_assert!(all_zero || all_one);
                }
            }
        }
    }
}
