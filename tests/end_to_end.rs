//! End-to-end integration tests spanning every crate: synthetic dataset →
//! pruning at initialisation → constrained training → crossbar mapping →
//! non-ideal inference.

use xbar_repro::core::evaluate::evaluate_on_crossbars;
use xbar_repro::core::pipeline::{map_to_crossbars, MapConfig};
use xbar_repro::core::wct::{apply_wct, WctConfig};
use xbar_repro::core::ColumnOrder;
use xbar_repro::data::{CifarLikeConfig, Split};
use xbar_repro::nn::train::{evaluate, train, DataRef, TrainConfig, WeightConstraint};
use xbar_repro::nn::vgg::{VggConfig, VggVariant};
use xbar_repro::prune::cf::prune_cf;
use xbar_repro::prune::compression::compression_rate;
use xbar_repro::prune::xcs::prune_xcs;
use xbar_repro::prune::{MaskSet, PruneMethod};
use xbar_repro::sim::params::CrossbarParams;

/// Small but learnable task + model used by the tests below.
fn setup() -> (
    xbar_repro::data::Dataset,
    xbar_repro::nn::Sequential,
    MaskSet,
) {
    let data = CifarLikeConfig::cifar10_like()
        .train_size(150)
        .test_size(80)
        .generate(11);
    let mut model = VggConfig::new(VggVariant::Vgg11, 10)
        .width_multiplier(0.125)
        .build(5);
    let masks = prune_cf(&model, 0.5);
    masks.apply_to(&mut model);
    (data, model, masks)
}

fn train_quick(
    model: &mut xbar_repro::nn::Sequential,
    data: &xbar_repro::data::Dataset,
    masks: &MaskSet,
) {
    let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train)).unwrap();
    let cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };
    train(model, train_ref, &cfg, Some(masks as &dyn WeightConstraint)).unwrap();
}

#[test]
fn full_pipeline_trains_prunes_maps_and_infers() {
    let (data, mut model, masks) = setup();
    train_quick(&mut model, &data, &masks);
    // Masks held through training.
    assert!(masks.observed_sparsity(&mut model) > 0.4);
    // Pruning compresses the crossbar mapping.
    let rate = compression_rate(&model, PruneMethod::ChannelFilter, 32, 32);
    assert!(rate > 1.0, "compression rate {rate}");
    // Map and evaluate.
    let cfg = MapConfig {
        params: CrossbarParams::with_size(32),
        method: PruneMethod::ChannelFilter,
        ..Default::default()
    };
    let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test)).unwrap();
    let eval = evaluate_on_crossbars(&model, &cfg, test_ref, 64).unwrap();
    assert!(
        eval.software_accuracy > 0.15,
        "model should learn something (software accuracy {})",
        eval.software_accuracy
    );
    assert!(eval.crossbar_accuracy >= 0.0 && eval.crossbar_accuracy <= 1.0);
    assert!(eval.report.crossbar_count() > 0);
    assert!(eval.report.mean_nf() > 0.0, "non-idealities must register");
}

#[test]
fn pruned_zeros_survive_the_whole_pipeline() {
    let (data, mut model, masks) = setup();
    train_quick(&mut model, &data, &masks);
    let cfg = MapConfig {
        params: CrossbarParams::with_size(16),
        method: PruneMethod::ChannelFilter,
        rearrange: Some(ColumnOrder::CenterOut),
        ..Default::default()
    };
    let (noisy, _) = map_to_crossbars(&model, &cfg).unwrap();
    for (orig_layer, noisy_layer) in model.layers().iter().zip(noisy.layers()) {
        let pair = match (orig_layer.as_conv(), noisy_layer.as_conv()) {
            (Some(a), Some(b)) => (&a.weight().value, &b.weight().value),
            _ => match (orig_layer.as_linear(), noisy_layer.as_linear()) {
                (Some(a), Some(b)) => (&a.weight().value, &b.weight().value),
                _ => continue,
            },
        };
        for (&a, &b) in pair.0.as_slice().iter().zip(pair.1.as_slice()) {
            if a == 0.0 {
                assert_eq!(b, 0.0, "pruned weight must stay zero after T/R round trip");
            }
        }
    }
}

#[test]
fn mapping_is_deterministic_per_seed_across_the_stack() {
    let (data, mut model, masks) = setup();
    train_quick(&mut model, &data, &masks);
    let cfg = MapConfig {
        params: CrossbarParams::with_size(16),
        method: PruneMethod::ChannelFilter,
        seed: 1234,
        ..Default::default()
    };
    let (a, ra) = map_to_crossbars(&model, &cfg).unwrap();
    let (b, rb) = map_to_crossbars(&model, &cfg).unwrap();
    assert_eq!(ra.crossbar_count(), rb.crossbar_count());
    for (la, lb) in a.layers().iter().zip(b.layers()) {
        if let (Some(ca), Some(cb)) = (la.as_conv(), lb.as_conv()) {
            assert_eq!(ca.weight().value, cb.weight().value);
        }
    }
}

#[test]
fn xcs_pipeline_maps_with_segment_elimination() {
    let data = CifarLikeConfig::cifar10_like()
        .train_size(100)
        .test_size(50)
        .generate(3);
    let mut model = VggConfig::new(VggVariant::Vgg11, 10)
        .width_multiplier(0.125)
        .build(9);
    let masks = prune_xcs(&model, 0.6, 16);
    masks.apply_to(&mut model);
    train_quick(&mut model, &data, &masks);
    let cfg = MapConfig {
        params: CrossbarParams::with_size(16),
        method: PruneMethod::XbarColumn,
        ..Default::default()
    };
    let (noisy, report) = map_to_crossbars(&model, &cfg).unwrap();
    // Fewer crossbars than the dense mapping.
    let dense =
        xbar_repro::prune::compression::model_crossbar_count(&model, PruneMethod::None, 16, 16);
    assert!(report.crossbar_count() < dense);
    // Model still runs.
    let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test)).unwrap();
    let mut noisy = noisy;
    let acc = evaluate(&mut noisy, test_ref, 32).unwrap();
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn wct_lowers_conductances_and_nf() {
    let (data, mut model, masks) = setup();
    train_quick(&mut model, &data, &masks);
    let base_cfg = MapConfig {
        params: CrossbarParams::with_size(64),
        method: PruneMethod::ChannelFilter,
        ..Default::default()
    };
    let (_, base_report) = map_to_crossbars(&model, &base_cfg).unwrap();

    let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train)).unwrap();
    let mut wct_model = model.clone();
    let outcome = apply_wct(
        &mut wct_model,
        train_ref,
        &WctConfig::default(),
        Some(&masks as &dyn WeightConstraint),
    )
    .unwrap();
    assert!(outcome.w_cut > 0.0);
    assert!(outcome.w_cut <= outcome.pre_clamp_abs_max);

    let mut wct_cfg = base_cfg;
    wct_cfg.scale = outcome.mapping_scale();
    let (_, wct_report) = map_to_crossbars(&wct_model, &wct_cfg).unwrap();
    // The WCT claim: more low-conductance devices, lower NF.
    assert!(
        wct_report.mean_low_g_fraction() >= base_report.mean_low_g_fraction(),
        "WCT should raise the low-G proportion: {} vs {}",
        wct_report.mean_low_g_fraction(),
        base_report.mean_low_g_fraction()
    );
    assert!(
        wct_report.mean_nf() < base_report.mean_nf(),
        "WCT should reduce NF: {} vs {}",
        wct_report.mean_nf(),
        base_report.mean_nf()
    );
}

#[test]
fn larger_crossbars_increase_nf_on_trained_models() {
    let (data, mut model, masks) = setup();
    train_quick(&mut model, &data, &masks);
    let mut nfs = Vec::new();
    for size in [16usize, 32, 64] {
        let cfg = MapConfig {
            params: CrossbarParams::with_size(size),
            method: PruneMethod::ChannelFilter,
            ..Default::default()
        };
        let (_, report) = map_to_crossbars(&model, &cfg).unwrap();
        nfs.push(report.mean_nf());
    }
    assert!(
        nfs[0] < nfs[1] && nfs[1] < nfs[2],
        "NF must grow with size: {nfs:?}"
    );
}
