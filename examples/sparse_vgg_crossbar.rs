//! The paper's core experiment in miniature: train an unpruned and a
//! C/F-pruned VGG11 on a synthetic CIFAR10-like task, map both onto
//! non-ideal crossbars of increasing size, and watch the pruned model — the
//! hardware-cheaper one — lose more accuracy.
//!
//! Run with: `cargo run --release --example sparse_vgg_crossbar`
//! (takes a couple of CPU minutes; shrink `TRAIN` to go faster).

use xbar_repro::core::pipeline::{map_to_crossbars, MapConfig};
use xbar_repro::data::{CifarLikeConfig, Split};
use xbar_repro::nn::train::{evaluate, train, DataRef, TrainConfig, WeightConstraint};
use xbar_repro::nn::vgg::{VggConfig, VggVariant};
use xbar_repro::prune::cf::prune_cf;
use xbar_repro::prune::compression::compression_rate;
use xbar_repro::prune::PruneMethod;
use xbar_repro::sim::params::CrossbarParams;

const TRAIN: usize = 600;
const TEST: usize = 300;
const SPARSITY: f64 = 0.8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = CifarLikeConfig::cifar10_like()
        .train_size(TRAIN)
        .test_size(TEST)
        .generate(42);
    let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train))?;
    let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test))?;
    let train_cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };

    for pruned in [false, true] {
        let mut model = VggConfig::new(VggVariant::Vgg11, 10)
            .width_multiplier(0.25)
            .build(1);
        let masks = pruned.then(|| prune_cf(&model, SPARSITY));
        if let Some(masks) = &masks {
            masks.apply_to(&mut model);
        }
        let constraint: Option<&dyn WeightConstraint> =
            masks.as_ref().map(|m| m as &dyn WeightConstraint);
        train(&mut model, train_ref, &train_cfg, constraint)?;
        let software = evaluate(&mut model, test_ref, 64)?;
        let label = if pruned { "C/F pruned" } else { "unpruned " };
        let method = if pruned {
            PruneMethod::ChannelFilter
        } else {
            PruneMethod::None
        };
        print!("{label}: software {:.1}%", 100.0 * software);
        if pruned {
            print!(
                " (compression {:.2}x at 32x32)",
                compression_rate(&model, method, 32, 32)
            );
        }
        println!();
        for size in [16usize, 32, 64] {
            let cfg = MapConfig {
                params: CrossbarParams::with_size(size),
                method,
                ..Default::default()
            };
            let (mut noisy, report) = map_to_crossbars(&model, &cfg)?;
            let acc = evaluate(&mut noisy, test_ref, 64)?;
            println!(
                "  {size:>2}x{size:<2}: {:.1}% ({} crossbars, NF {:.4})",
                100.0 * acc,
                report.crossbar_count(),
                report.mean_nf()
            );
        }
    }
    Ok(())
}
