//! Bit-sliced weight mapping: how many conductance levels does a weight
//! really need, and what does slicing buy under non-idealities?
//!
//! Run with: `cargo run --release --example bit_slicing`

use xbar_repro::sim::conductance::MappingScale;
use xbar_repro::sim::params::CrossbarParams;
use xbar_repro::sim::slicing::{simulate_tile_sliced, SlicingConfig};
use xbar_repro::sim::solve::SolveMethod;
use xbar_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let mut seed = 99u64;
    let tile = Tensor::from_fn(&[n, n], |_| {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        ((seed % 2000) as f32 - 1000.0) / 1000.0
    });

    println!("relative weight error of a 32x32 tile (ideal circuit):");
    let ideal = CrossbarParams::with_size(n).ideal();
    for (slices, levels) in [(1u32, 4u32), (1, 16), (2, 4), (2, 16), (4, 4)] {
        let cfg = SlicingConfig {
            slices,
            levels_per_slice: levels,
        };
        let out = simulate_tile_sliced(
            &tile,
            cfg,
            MappingScale::PerTileMax,
            1.0,
            &ideal,
            SolveMethod::LineRelaxation,
            1,
        )?;
        let err = rel_err(&tile, &out.weights);
        println!(
            "  {slices} slice(s) x {levels:>2} levels = {:>5} composite: err {err:.5}",
            cfg.composite_levels()
        );
    }

    println!("\nsame sweep on the non-ideal circuit (IR drop + 10% variation):");
    let noisy = CrossbarParams::with_size(n);
    for (slices, levels) in [(1u32, 16u32), (2, 4), (4, 4)] {
        let cfg = SlicingConfig {
            slices,
            levels_per_slice: levels,
        };
        let out = simulate_tile_sliced(
            &tile,
            cfg,
            MappingScale::PerTileMax,
            1.0,
            &noisy,
            SolveMethod::LineRelaxation,
            1,
        )?;
        println!(
            "  {slices} slice(s) x {levels:>2} levels: err {:.5}, MSB-weighted NF {:.4}",
            rel_err(&tile, &out.weights),
            out.weighted_nf(levels)
        );
    }
    Ok(())
}

fn rel_err(a: &Tensor, b: &Tensor) -> f32 {
    let num: f32 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).powi(2))
        .sum();
    let den: f32 = a.as_slice().iter().map(|x| x * x).sum();
    (num / den).sqrt()
}
