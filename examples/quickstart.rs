//! Quickstart: build a small CNN, map it onto non-ideal memristive
//! crossbars, and see what the non-idealities cost.
//!
//! Run with: `cargo run --release --example quickstart`

use xbar_repro::core::pipeline::{map_to_crossbars, MapConfig};
use xbar_repro::nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, ReLU};
use xbar_repro::nn::{Layer, Mode, Sequential};
use xbar_repro::sim::params::CrossbarParams;
use xbar_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small conv net over 8x8 single-channel inputs.
    let mut model = Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(1, 8, 3, 1, 1, 7)),
        Layer::ReLU(ReLU::new()),
        Layer::MaxPool2d(MaxPool2d::new(2, 2)),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(8 * 4 * 4, 4, 8)),
    ]);
    println!("model parameters: {}", model.num_params());

    // Some input batch.
    let x = Tensor::from_fn(&[4, 1, 8, 8], |i| ((i % 17) as f32 - 8.0) / 8.0);
    let clean = model.forward(&x, Mode::Eval)?;

    // Map every conv/linear layer onto 32x32 non-ideal crossbars (default
    // parameters: ReRAM-like synapses, wire/driver/sense parasitics, 10%
    // device variation) and run the same batch through the mapped model.
    let cfg = MapConfig {
        params: CrossbarParams::with_size(32),
        ..Default::default()
    };
    let (mut noisy, report) = map_to_crossbars(&model, &cfg)?;
    let degraded = noisy.forward(&x, Mode::Eval)?;

    println!("crossbars used:      {}", report.crossbar_count());
    println!("mean NF:             {:.4}", report.mean_nf());
    println!("low-G fraction:      {:.3}", report.mean_low_g_fraction());
    let rel_err: f32 = clean
        .as_slice()
        .iter()
        .zip(degraded.as_slice())
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / clean.as_slice().iter().map(|a| a.abs()).sum::<f32>();
    println!("relative logit error: {rel_err:.4}");
    Ok(())
}
