//! A pure circuit-level study (no training): how the non-ideality factor
//! grows with crossbar size and conductance level, and what the device
//! ON/OFF ratio buys — the physics behind every accuracy trend in the paper.
//!
//! Run with: `cargo run --release --example nf_study`

use xbar_repro::sim::conductance::ConductanceMatrix;
use xbar_repro::sim::params::CrossbarParams;
use xbar_repro::sim::solve::{NonIdealSolver, SolveMethod};

fn mean_nf(params: CrossbarParams, level: f64) -> f64 {
    let n = params.rows;
    let g_val = params.g_min() + level * (params.g_max() - params.g_min());
    let g = ConductanceMatrix::filled(n, n, g_val);
    let solver = NonIdealSolver::new(params, SolveMethod::LineRelaxation);
    let v = vec![params.v_read; n];
    let out = solver
        .effective_conductances(&g, &v)
        .expect("uniform crossbar solves");
    out.ideal_currents
        .iter()
        .zip(&out.col_currents)
        .map(|(i, a)| (i - a) / i)
        .sum::<f64>()
        / n as f64
}

fn main() {
    println!("NF vs crossbar size (uniform crossbar at 50% conductance):");
    for n in [8usize, 16, 32, 64, 128] {
        let mut p = CrossbarParams::with_size(n);
        p.sigma_variation = 0.0;
        println!("  {n:>3}x{n:<3}: NF = {:.4}", mean_nf(p, 0.5));
    }

    println!("\nNF vs programmed conductance level (32x32):");
    for level in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut p = CrossbarParams::with_size(32);
        p.sigma_variation = 0.0;
        println!("  level {level:.2}: NF = {:.4}", mean_nf(p, level));
    }

    println!("\nNF at Gmin vs device ON/OFF ratio (32x32):");
    for ratio in [10.0f64, 30.0, 100.0] {
        let mut p = CrossbarParams::with_size(32);
        p.sigma_variation = 0.0;
        p.r_max = p.r_min * ratio;
        println!("  ON/OFF {ratio:>5.0}: NF = {:.4}", mean_nf(p, 0.0));
    }
}
