//! Both mitigation strategies on one pruned model: crossbar-column
//! rearrangement (R) applied at mapping time, and Weight-Constrained
//! Training (WCT) applied before mapping with a fixed conductance scale.
//!
//! Run with: `cargo run --release --example mitigation_pipeline`

use xbar_repro::core::pipeline::{map_to_crossbars, MapConfig};
use xbar_repro::core::wct::{apply_wct, WctConfig};
use xbar_repro::core::ColumnOrder;
use xbar_repro::data::{CifarLikeConfig, Split};
use xbar_repro::nn::train::{evaluate, train, DataRef, TrainConfig, WeightConstraint};
use xbar_repro::nn::vgg::{VggConfig, VggVariant};
use xbar_repro::prune::cf::prune_cf;
use xbar_repro::prune::PruneMethod;
use xbar_repro::sim::params::CrossbarParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = CifarLikeConfig::cifar10_like()
        .train_size(600)
        .test_size(300)
        .generate(7);
    let train_ref = DataRef::new(data.images(Split::Train), data.labels(Split::Train))?;
    let test_ref = DataRef::new(data.images(Split::Test), data.labels(Split::Test))?;

    // Train a C/F-pruned VGG11 (pruning at initialisation, s = 0.8).
    let mut model = VggConfig::new(VggVariant::Vgg11, 10)
        .width_multiplier(0.25)
        .build(3);
    let masks = prune_cf(&model, 0.8);
    masks.apply_to(&mut model);
    let train_cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };
    train(&mut model, train_ref, &train_cfg, Some(&masks))?;
    println!(
        "software accuracy: {:.1}%",
        100.0 * evaluate(&mut model, test_ref, 64)?
    );

    let size = 64usize;
    let base = MapConfig {
        params: CrossbarParams::with_size(size),
        method: PruneMethod::ChannelFilter,
        ..Default::default()
    };

    // Baseline mapping, no mitigation.
    let (mut plain, report) = map_to_crossbars(&model, &base)?;
    println!(
        "{size}x{size} no mitigation: {:.1}% (low-G fraction {:.3})",
        100.0 * evaluate(&mut plain, test_ref, 64)?,
        report.mean_low_g_fraction()
    );

    // Mitigation 1: R transformation at mapping time (zero training cost).
    let mut with_r = base;
    with_r.rearrange = Some(ColumnOrder::CenterOut);
    let (mut r_model, report) = map_to_crossbars(&model, &with_r)?;
    println!(
        "{size}x{size} with R:        {:.1}% (low-G fraction {:.3})",
        100.0 * evaluate(&mut r_model, test_ref, 64)?,
        report.mean_low_g_fraction()
    );

    // Mitigation 2: WCT — clamp to W_cut, retrain 2 epochs under the clamp
    // and the pruning masks, then map with the fixed pre-clamp scale.
    let mut wct_model = model.clone();
    let outcome = apply_wct(
        &mut wct_model,
        train_ref,
        &WctConfig::default(),
        Some(&masks as &dyn WeightConstraint),
    )?;
    println!(
        "WCT: W_cut = {:.3}, software after retrain: {:.1}%",
        outcome.w_cut,
        100.0 * evaluate(&mut wct_model, test_ref, 64)?
    );
    let mut with_wct = base;
    with_wct.scale = outcome.mapping_scale();
    let (mut wct_mapped, report) = map_to_crossbars(&wct_model, &with_wct)?;
    println!(
        "{size}x{size} with WCT:      {:.1}% (low-G fraction {:.3})",
        100.0 * evaluate(&mut wct_mapped, test_ref, 64)?,
        report.mean_low_g_fraction()
    );
    Ok(())
}
